#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <set>
#include <utility>

#include "net/wire.h"
#include "serve/merge.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/timer.h"

namespace bivoc {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t ScatterThreads(std::size_t configured, std::size_t num_groups) {
  if (configured > 0) return configured;
  return std::clamp<std::size_t>(num_groups, 1, 16);
}

// Deterministic per-member salt for the retry jitter streams: member
// identity is its name, which survives ring changes (an index would
// not).
uint64_t NameSalt(std::string_view name) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h | 1;
}

// Waits for a fixed number of scatter tasks. The coordinator always
// waits before its stack frame dies, so tasks may safely reference it.
struct Latch {
  explicit Latch(std::size_t n) : remaining(n) {}
  void CountDown() {
    std::lock_guard<std::mutex> lock(mu);
    if (--remaining == 0) cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return remaining == 0; });
  }
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining;
};

// Shard RPC failures worth another attempt: the transient set plus
// kUnavailable — a shedding or rebooting shard is exactly the case a
// backed-off retry (or a hedge to nowhere better) is for. Stateless:
// the predicate is copied into detached attempt threads that can
// outlive the router's call frame.
bool ShardRetryable(const Status& status) {
  return DefaultRetryable(status) ||
         status.code() == StatusCode::kUnavailable;
}

// Decoded /v1/admin/checksum reply, for the anti-entropy comparison.
struct ChecksumReply {
  uint64_t docs = 0;
  std::string checksum;
};

Result<ChecksumReply> ParseChecksum(const JsonValue& v) {
  const JsonValue* docs = v.Find("docs");
  const JsonValue* checksum = v.Find("checksum");
  if (docs == nullptr || !docs->is_integer() || checksum == nullptr ||
      !checksum->is_string()) {
    return Status::Corruption("malformed checksum reply");
  }
  ChecksumReply reply;
  reply.docs = static_cast<uint64_t>(docs->GetInt64());
  reply.checksum = checksum->GetString();
  return reply;
}

}  // namespace

std::vector<ReplicaGroup> MakeReplicaGroups(
    std::vector<std::shared_ptr<ShardHandle>> handles,
    std::size_t replication) {
  if (replication == 0) replication = 1;
  std::vector<ReplicaGroup> groups;
  groups.reserve((handles.size() + replication - 1) / replication);
  for (std::size_t i = 0; i < handles.size(); i += replication) {
    ReplicaGroup group;
    for (std::size_t j = i; j < std::min(i + replication, handles.size());
         ++j) {
      group.members.push_back(std::move(handles[j]));
    }
    group.name = group.members.front()->name();
    groups.push_back(std::move(group));
  }
  return groups;
}

ShardRouter::ShardRouter(std::vector<std::shared_ptr<ShardHandle>> shards,
                         ShardRouterOptions options, MetricsRegistry* metrics)
    : ShardRouter(MakeReplicaGroups(std::move(shards), 1), options, metrics) {}

ShardRouter::ShardRouter(std::vector<ReplicaGroup> groups,
                         ShardRouterOptions options, MetricsRegistry* metrics)
    : opts_(options),
      owned_metrics_(metrics == nullptr ? new MetricsRegistry() : nullptr),
      metrics_(metrics == nullptr ? owned_metrics_.get() : metrics),
      pool_(ScatterThreads(options.scatter_threads, groups.size())),
      hedge_tokens_(options.hedge_budget) {
  Result<std::vector<std::shared_ptr<GroupState>>> built =
      BuildGroups(std::move(groups));
  BIVOC_CHECK(built.ok()) << built.status().ToString();
  auto table = std::make_shared<RoutingTable>();
  table->groups = built.MoveValue();
  table->ring = RingOf(table->groups, opts_.ring_replicas);
  table_ = std::move(table);

  hedges_ = metrics_->GetCounter("cluster_hedges_total");
  hedge_denied_ = metrics_->GetCounter("cluster_hedges_denied_total");
  failovers_ = metrics_->GetCounter("cluster_failovers_total");
  partial_responses_ =
      metrics_->GetCounter("cluster_partial_responses_total");
  unavailable_responses_ =
      metrics_->GetCounter("cluster_unavailable_responses_total");
  rebalances_ = metrics_->GetCounter("cluster_rebalances_total");
  rebalanced_docs_ = metrics_->GetCounter("cluster_rebalanced_docs_total");
  export_page_retries_ =
      metrics_->GetCounter("cluster_export_page_retries_total");
  audits_ = metrics_->GetCounter("cluster_audits_total");
  repairs_ = metrics_->GetCounter("cluster_repairs_total");
  repaired_members_ =
      metrics_->GetCounter("cluster_repaired_members_total");
  replica_divergence_ = metrics_->GetGauge("cluster_replica_divergence");
  scatter_latency_ = metrics_->GetHistogram("cluster_scatter_latency_ms");
  merge_latency_ = metrics_->GetHistogram("cluster_merge_latency_ms");
  rebalance_latency_ = metrics_->GetHistogram("cluster_rebalance_ms");

  if (opts_.anti_entropy_interval_ms > 0) {
    audit_thread_ = std::thread([this] { AuditLoop(); });
  }
}

ShardRouter::~ShardRouter() {
  {
    std::lock_guard<std::mutex> lock(audit_stop_mu_);
    audit_stop_ = true;
  }
  audit_stop_cv_.notify_all();
  if (audit_thread_.joinable()) audit_thread_.join();
}

Result<std::vector<std::shared_ptr<ShardRouter::GroupState>>>
ShardRouter::BuildGroups(std::vector<ReplicaGroup> groups) {
  if (groups.empty()) {
    return Status::InvalidArgument("ring needs at least one replica group");
  }
  std::set<std::string> group_names;
  std::set<std::string> member_names;
  std::vector<std::shared_ptr<GroupState>> out;
  out.reserve(groups.size());
  std::lock_guard<std::mutex> lock(members_mu_);
  for (ReplicaGroup& group : groups) {
    if (group.members.empty()) {
      return Status::InvalidArgument("replica group \"" + group.name +
                                     "\" has no members");
    }
    auto state = std::make_shared<GroupState>();
    state->name =
        group.name.empty() ? group.members.front()->name() : group.name;
    if (!group_names.insert(state->name).second) {
      return Status::InvalidArgument("duplicate replica group name \"" +
                                     state->name + "\"");
    }
    for (std::shared_ptr<ShardHandle>& handle : group.members) {
      const std::string member_name = handle->name();
      if (!member_names.insert(member_name).second) {
        return Status::InvalidArgument(
            "shard \"" + member_name + "\" appears twice in the ring");
      }
      // A member name this router has routed to before keeps its
      // breaker, counters and warn history across ring changes.
      auto it = members_.find(member_name);
      std::shared_ptr<MemberState> member;
      if (it != members_.end()) {
        member = it->second;
      } else {
        member = std::make_shared<MemberState>(std::move(handle),
                                               opts_.breaker);
        member->requests = metrics_->GetCounter(
            "cluster_shard_requests_total_" + member_name);
        member->failures = metrics_->GetCounter(
            "cluster_shard_failures_total_" + member_name);
        members_[member_name] = member;
      }
      state->members.push_back(std::move(member));
    }
    out.push_back(std::move(state));
  }
  return out;
}

std::shared_ptr<const HashRing> ShardRouter::RingOf(
    const std::vector<std::shared_ptr<GroupState>>& groups,
    std::size_t ring_replicas) {
  std::vector<RingNode> nodes;
  nodes.reserve(groups.size());
  for (const auto& group : groups) {
    RingNode node;
    node.name = group->name;
    node.members.reserve(group->members.size());
    for (const auto& member : group->members) {
      node.members.push_back(member->handle->name());
    }
    nodes.push_back(std::move(node));
  }
  return std::make_shared<HashRing>(std::move(nodes), ring_replicas);
}

std::shared_ptr<const ShardRouter::RoutingTable> ShardRouter::Table() const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  return table_;
}

uint64_t ShardRouter::ring_epoch() const { return Table()->epoch; }

std::size_t ShardRouter::num_shards() const { return Table()->groups.size(); }

std::string ShardRouter::shard_name(std::size_t shard) const {
  return Table()->groups[shard]->name;
}

CircuitBreaker* ShardRouter::breaker(std::size_t shard) {
  // Member states outlive every table they appear in (members_ keeps
  // them), so the pointer stays valid across ring changes.
  return &Table()->groups[shard]->members.front()->breaker;
}

std::size_t ShardRouter::ShardForItem(const IngestItem& item) const {
  const std::shared_ptr<const RoutingTable> table = Table();
  const RoutingTable& effective = table->next ? *table->next : *table;
  return effective.ring->ShardFor(RouteKey(item));
}

std::string ShardRouter::RouteKey(const IngestItem& item) {
  return ComposeRouteKey(item.tenant, !item.structured_keys.empty()
                                          ? item.structured_keys.front()
                                          : item.payload);
}

bool ShardRouter::AcquireHedge() {
  int64_t tokens = hedge_tokens_.load(std::memory_order_relaxed);
  while (tokens > 0) {
    if (hedge_tokens_.compare_exchange_weak(tokens, tokens - 1,
                                            std::memory_order_relaxed)) {
      hedges_->Increment();
      return true;
    }
  }
  hedge_denied_->Increment();
  return false;
}

void ShardRouter::ReleaseHedge() {
  hedge_tokens_.fetch_add(1, std::memory_order_relaxed);
}

void ShardRouter::WarnUnreachable(MemberState* member, const Status& status) {
  const int64_t now = SteadyNowMs();
  std::size_t suppressed = 0;
  {
    std::lock_guard<std::mutex> lock(member->warn_mu);
    if (member->ever_warned &&
        now - member->last_warn_ms < opts_.warn_interval_ms) {
      ++member->suppressed;
      return;
    }
    suppressed = member->suppressed;
    member->suppressed = 0;
    member->last_warn_ms = now;
    member->ever_warned = true;
  }
  auto line = BIVOC_LOG(Warning);
  line << "shard " << member->handle->name()
       << " unreachable: " << status.ToString();
  if (suppressed > 0) {
    line << " (" << suppressed << " similar warnings suppressed)";
  }
}

void ShardRouter::WarnDivergent(const std::string& group,
                                const std::string& detail) {
  const int64_t now = SteadyNowMs();
  {
    std::lock_guard<std::mutex> lock(divergence_warn_mu_);
    int64_t& last = divergence_last_warn_ms_[group];
    if (last != 0 && now - last < opts_.warn_interval_ms) return;
    last = now;
  }
  BIVOC_LOG(Warning) << "replica divergence in group " << group << ": "
                     << detail;
}

Result<ReportResult> ShardRouter::QueryMember(MemberState& member,
                                              const QueryRequest& request) {
  member.requests->Increment();
  if (!member.breaker.Allow()) {
    member.failures->Increment();
    // No WarnUnreachable here: the breaker opening already warned, and
    // short-circuits would re-trigger it every request.
    return Status::Unavailable("shard " + member.handle->name() +
                               ": circuit open");
  }

  // Everything a detached (written-off or hedged) attempt touches is
  // co-owned by the attempt itself: the handle keeps its engine or
  // connection pool alive, the slot keeps the result storage alive.
  struct Slot {
    std::mutex mu;
    std::optional<WireReport> report;
  };
  auto slot = std::make_shared<Slot>();
  std::shared_ptr<ShardHandle> handle = member.handle;
  const std::string named_point =
      std::string(kFaultShardSend) + ":" + handle->name();

  RetryPolicy policy;
  policy.max_attempts = opts_.max_attempts;
  policy.initial_backoff_ms = opts_.initial_backoff_ms;
  policy.deadline_ms = opts_.shard_deadline_ms;
  policy.attempt_timeout_ms = opts_.attempt_timeout_ms;
  policy.hedge_delay_ms = opts_.hedge_delay_ms;
  if (opts_.hedge_delay_ms > 0) {
    policy.hedge_acquire = [this] { return AcquireHedge(); };
    policy.hedge_release = [this] { ReleaseHedge(); };
  }
  policy.retryable = ShardRetryable;
  Retrier retrier(policy, opts_.seed ^ (0x9e3779b97f4a7c15ULL *
                                        NameSalt(handle->name())));
  const QueryRequest shard_request = request;
  Status status = retrier.Run([handle, slot, shard_request, named_point] {
    BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(kFaultShardSend));
    BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(named_point));
    Result<WireReport> report = handle->Query(shard_request);
    if (!report.ok()) return report.status();
    std::lock_guard<std::mutex> lock(slot->mu);
    // First winning attempt keeps its report; a slower duplicate
    // (hedge + original both succeeding) is discarded.
    if (!slot->report.has_value()) slot->report = report.MoveValue();
    return Status::OK();
  });

  if (status.ok()) {
    member.breaker.RecordSuccess();
    std::lock_guard<std::mutex> lock(slot->mu);
    return std::move(slot->report->report);
  }
  member.breaker.RecordFailure();
  member.failures->Increment();
  WarnUnreachable(&member, status);
  return status;
}

Result<ReportResult> ShardRouter::QueryGroup(const GroupState& group,
                                             const QueryRequest& request) {
  Status last = Status::Unavailable("group " + group.name + " has no members");
  for (std::size_t i = 0; i < group.members.size(); ++i) {
    Result<ReportResult> result = QueryMember(*group.members[i], request);
    if (result.ok()) {
      // Replicas hold identical content, so which member answered does
      // not change a single byte of the merged report — only the group
      // name goes into it.
      result.value().merge.shard_name = group.name;
      return result;
    }
    last = result.status();
    if (i + 1 < group.members.size()) failovers_->Increment();
  }
  return last;
}

Result<JsonValue> ShardRouter::ExecuteQuery(QueryRequest request) {
  // Window-scoped trends read a single engine's streaming index; a
  // scatter-merge over per-shard windows is not defined (shards tick
  // their windows independently). Reject upfront instead of letting
  // every shard fail validation on the fanned-out request.
  if (request.window) {
    return Status::FailedPrecondition(
        "window-scoped queries are not supported on a cluster router; "
        "ask a streaming engine directly");
  }
  // Shared for the whole call: barrier 2 of a ring change cannot run
  // while any query is mid-flight (and vice versa).
  std::shared_lock<std::shared_mutex> table_lock(table_mu_);
  const std::shared_ptr<const RoutingTable> table = table_;

  Timer scatter_timer;
  request.shard_mode = true;
  // Scatter set: the current groups, plus — mid-rebalance — the
  // incoming groups, which already hold every moved-key document
  // written since barrier 1. Old copies of moved documents still count
  // once (via their old group) and staged backfill is query-invisible,
  // so the union is exact.
  std::vector<const GroupState*> groups;
  groups.reserve(table->groups.size());
  for (const auto& group : table->groups) groups.push_back(group.get());
  if (table->next != nullptr) {
    std::set<std::string> current_names;
    for (const auto& group : table->groups) {
      current_names.insert(group->name);
    }
    for (const auto& group : table->next->groups) {
      if (current_names.count(group->name) == 0) {
        groups.push_back(group.get());
      }
    }
  }
  const std::size_t n = groups.size();

  std::vector<std::optional<Result<ReportResult>>> results(n);
  Latch latch(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool_.Submit([this, i, &groups, &request, &results, &latch] {
      results[i] = QueryGroup(*groups[i], request);
      latch.CountDown();
    });
  }
  latch.Wait();
  scatter_latency_->Observe(scatter_timer.ElapsedMillis());

  std::vector<ReportResult> partials;
  partials.reserve(n);
  JsonValue missing = JsonValue::MakeArray();
  std::size_t missing_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Result<ReportResult>& result = *results[i];
    if (result.ok()) {
      partials.push_back(result.MoveValue());
    } else {
      missing.Append(JsonValue(groups[i]->name));
      ++missing_count;
    }
  }
  if (partials.empty()) {
    unavailable_responses_->Increment();
    return Status::Unavailable("no shard reachable (0/" +
                               std::to_string(n) + " answered)");
  }

  BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(kFaultClusterMerge));
  Timer merge_timer;
  Result<ReportResult> merged = MergeShardReports(request, partials);
  if (!merged.ok()) return merged.status();
  merge_latency_->Observe(merge_timer.ElapsedMillis());

  const bool partial = missing_count > 0;
  if (partial) partial_responses_->Increment();
  // Honesty fields ride on every response, not only degraded ones, so
  // clients can assert completeness instead of inferring it.
  JsonValue body = ReportResultToJson(merged.value(), /*from_cache=*/false);
  body.Set("partial", JsonValue(partial));
  body.Set("missing_shards", std::move(missing));
  body.Set("shards_total", JsonValue(static_cast<uint64_t>(n)));
  body.Set("shards_ok",
           JsonValue(static_cast<uint64_t>(partials.size())));
  return body;
}

Status ShardRouter::IngestMember(MemberState& member,
                                 const std::vector<IngestItem>& items,
                                 JsonValue* health_out) {
  member.requests->Increment();
  if (!member.breaker.Allow()) {
    member.failures->Increment();
    return Status::Unavailable("shard " + member.handle->name() +
                               ": circuit open");
  }
  std::shared_ptr<ShardHandle> handle = member.handle;
  const std::string named_point =
      std::string(kFaultShardSend) + ":" + handle->name();

  // Sequential engine on purpose (no attempt timeout, no hedging):
  // overlapping two copies of a write is never acceptable.
  RetryPolicy policy;
  policy.max_attempts = opts_.ingest_max_attempts;
  policy.initial_backoff_ms = opts_.ingest_backoff_ms;
  policy.deadline_ms = opts_.shard_deadline_ms;
  policy.retryable = ShardRetryable;
  Retrier retrier(policy, opts_.seed ^ (0xc2b2ae3d27d4eb4fULL *
                                        NameSalt(handle->name())));
  Status status = retrier.Run([&]() -> Status {
    BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(kFaultShardSend));
    BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(named_point));
    Result<JsonValue> health = handle->Ingest(items);
    if (!health.ok()) return health.status();
    *health_out = health.MoveValue();
    return Status::OK();
  });

  if (status.ok()) {
    member.breaker.RecordSuccess();
    return status;
  }
  member.breaker.RecordFailure();
  member.failures->Increment();
  WarnUnreachable(&member, status);
  return status;
}

Result<JsonValue> ShardRouter::ExecuteIngest(std::vector<IngestItem> items) {
  // Shared for the whole call: a ring-change barrier never interleaves
  // with a half-routed batch.
  std::shared_lock<std::shared_mutex> table_lock(table_mu_);
  const std::shared_ptr<const RoutingTable> table = table_;
  // Mid-rebalance, writes route by the *next* ring only: moved keys go
  // straight to their new owners (already in the query scatter), so
  // nothing is lost and nothing double-counts.
  const RoutingTable& routing = table->next ? *table->next : *table;

  const std::size_t n = routing.groups.size();
  const std::size_t total_items = items.size();
  std::vector<std::vector<IngestItem>> batches(n);
  for (IngestItem& item : items) {
    batches[routing.ring->ShardFor(RouteKey(item))].push_back(
        std::move(item));
  }

  struct MemberOutcome {
    Status status;
    JsonValue health;
  };
  struct Outcome {
    bool attempted = false;
    std::vector<MemberOutcome> members;
    std::size_t ok_members = 0;
  };
  std::vector<Outcome> outcomes(n);
  std::size_t attempted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!batches[i].empty()) {
      outcomes[i].attempted = true;
      outcomes[i].members.resize(routing.groups[i]->members.size());
      ++attempted;
    }
  }
  Latch latch(attempted);
  for (std::size_t i = 0; i < n; ++i) {
    if (!outcomes[i].attempted) continue;
    pool_.Submit([this, i, &routing, &batches, &outcomes, &latch] {
      const GroupState& group = *routing.groups[i];
      // Every member gets the batch, sequentially: a replica that
      // misses a write diverges, and the anti-entropy audit would
      // report what a retry could have prevented.
      for (std::size_t m = 0; m < group.members.size(); ++m) {
        MemberOutcome& outcome = outcomes[i].members[m];
        outcome.status =
            IngestMember(*group.members[m], batches[i], &outcome.health);
        if (outcome.status.ok()) ++outcomes[i].ok_members;
      }
      latch.CountDown();
    });
  }
  latch.Wait();

  JsonValue shards = JsonValue::MakeArray();
  JsonValue missing = JsonValue::MakeArray();
  std::size_t failed_items = 0;
  std::size_t failed_groups = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!outcomes[i].attempted) continue;
    const GroupState& group = *routing.groups[i];
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", JsonValue(group.name));
    entry.Set("items",
              JsonValue(static_cast<uint64_t>(batches[i].size())));
    entry.Set("replicas_total",
              JsonValue(static_cast<uint64_t>(group.members.size())));
    entry.Set("replicas_ok",
              JsonValue(static_cast<uint64_t>(outcomes[i].ok_members)));
    if (outcomes[i].ok_members > 0) {
      // An item landed if *any* replica accepted it; member-level
      // failures are reported but do not fail the batch.
      for (std::size_t m = 0; m < outcomes[i].members.size(); ++m) {
        if (outcomes[i].members[m].status.ok()) {
          entry.Set("health", std::move(outcomes[i].members[m].health));
          break;
        }
      }
      if (outcomes[i].ok_members < group.members.size()) {
        JsonValue member_errors = JsonValue::MakeArray();
        for (std::size_t m = 0; m < outcomes[i].members.size(); ++m) {
          if (!outcomes[i].members[m].status.ok()) {
            member_errors.Append(JsonValue(
                group.members[m]->handle->name() + ": " +
                outcomes[i].members[m].status.ToString()));
          }
        }
        entry.Set("member_errors", std::move(member_errors));
      }
    } else {
      entry.Set("error",
                JsonValue(outcomes[i].members.front().status.ToString()));
      missing.Append(JsonValue(group.name));
      failed_items += batches[i].size();
      ++failed_groups;
    }
    shards.Append(std::move(entry));
  }
  if (attempted > 0 && failed_groups == attempted) {
    unavailable_responses_->Increment();
    return Status::Unavailable("ingest failed on every target shard (" +
                               std::to_string(failed_groups) + "/" +
                               std::to_string(attempted) + ")");
  }
  const bool partial = failed_groups > 0;
  if (partial) partial_responses_->Increment();
  JsonValue body = JsonValue::MakeObject();
  body.Set("partial", JsonValue(partial));
  body.Set("missing_shards", std::move(missing));
  body.Set("items_total", JsonValue(static_cast<uint64_t>(total_items)));
  body.Set("items_failed", JsonValue(static_cast<uint64_t>(failed_items)));
  body.Set("shards", std::move(shards));
  return body;
}

// --- live rebalancing (DESIGN.md §14) --------------------------------

Result<JsonValue> ShardRouter::ChangeRing(
    std::vector<ReplicaGroup> new_groups) {
  // One ring change at a time; queries/ingest keep flowing.
  std::lock_guard<std::mutex> change_lock(change_mu_);
  Timer timer;

  BIVOC_ASSIGN_OR_RETURN(std::vector<std::shared_ptr<GroupState>> built,
                         BuildGroups(std::move(new_groups)));
  auto next = std::make_shared<RoutingTable>();
  next->groups = std::move(built);
  next->ring = RingOf(next->groups, opts_.ring_replicas);
  std::map<std::string, const GroupState*> next_by_name;
  for (const auto& group : next->groups) {
    next_by_name[group->name] = group.get();
  }

  // ---- Barrier 1 (exclusive, brief): open the rebalance window.
  // From here, ingest routes by the next ring — the moved-document set
  // on the old owners is frozen — and queries scatter over the union.
  std::shared_ptr<const RoutingTable> current;
  {
    std::unique_lock<std::shared_mutex> lock(table_mu_);
    current = table_;
    next->epoch = current->epoch + 1;
    auto window = std::make_shared<RoutingTable>(*current);
    window->next = next;
    table_ = window;
  }
  const HashRing& next_ring = *next->ring;

  auto rollback = [&](std::vector<std::shared_ptr<MemberState>>& staged,
                      const Status& why) -> Status {
    for (const auto& member : staged) {
      Result<JsonValue> aborted =
          member->handle->Admin("abort", JsonValue::MakeObject());
      if (!aborted.ok()) {
        BIVOC_LOG(Warning) << "rebalance rollback: abort on "
                           << member->handle->name()
                           << " failed: " << aborted.status().ToString();
      }
    }
    std::unique_lock<std::shared_mutex> lock(table_mu_);
    table_ = current;  // close the window; epoch unchanged
    return why;
  };
  std::vector<std::shared_ptr<MemberState>> staged_members;

  // ---- Export the moved key ranges: one healthy member per losing
  // group, filtered down to the documents whose owner differs between
  // the rings. Exports stream in bounded pages (export_chunk_docs per
  // RPC) with per-page retry from the same cursor, so a connection
  // dropped mid-transfer resumes where it left off instead of
  // re-pulling the shard; switching to another replica restarts from
  // zero (DocId order is per-member). A group none of whose replicas
  // can export aborts the change — the alternative is silently
  // stranding its moved keys.
  auto export_from_member = [&](MemberState& member)
      -> Result<std::vector<ExportedDoc>> {
    if (opts_.export_chunk_docs == 0) {
      BIVOC_ASSIGN_OR_RETURN(
          JsonValue exported,
          member.handle->Admin("export", JsonValue::MakeObject()));
      return ExportedDocsFromJson(exported);
    }
    std::vector<ExportedDoc> docs;
    uint64_t cursor = 0;
    while (true) {
      JsonValue page = JsonValue::MakeObject();
      page.Set("cursor", JsonValue(cursor));
      page.Set("limit",
               JsonValue(static_cast<uint64_t>(opts_.export_chunk_docs)));
      Result<JsonValue> exported =
          Status::Internal("export page never attempted");
      const int attempts = std::max(1, opts_.export_chunk_attempts);
      for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) export_page_retries_->Increment();
        Status fault =
            FaultInjector::Global().MaybeFail(kFaultClusterExportPage);
        if (!fault.ok()) {
          exported = fault;
          continue;
        }
        exported = member.handle->Admin("export", page);
        if (exported.ok()) break;
      }
      if (!exported.ok()) return exported.status();
      BIVOC_ASSIGN_OR_RETURN(ExportChunkWire chunk,
                             ExportChunkFromJson(exported.value()));
      for (ExportedDoc& doc : chunk.docs) docs.push_back(std::move(doc));
      if (chunk.done) break;
      if (chunk.next <= cursor) {
        return Status::Corruption("export cursor did not advance");
      }
      cursor = chunk.next;
    }
    return docs;
  };

  std::map<std::string, std::vector<ExportedDoc>> inbound;   // new owner
  std::map<std::string, std::vector<std::string>> outbound;  // old owner
  std::size_t moved_total = 0;
  for (const auto& group : current->groups) {
    Result<std::vector<ExportedDoc>> docs =
        Status::Unavailable("group " + group->name + " has no members");
    for (const auto& member : group->members) {
      docs = export_from_member(*member);
      if (docs.ok()) break;
    }
    if (!docs.ok()) {
      return rollback(staged_members,
                      Status(docs.status().code(),
                             "rebalance aborted: cannot export from group " +
                                 group->name + ": " +
                                 docs.status().message()));
    }
    for (ExportedDoc& doc : docs.value()) {
      const std::string& dest =
          next_ring.name(next_ring.ShardFor(doc.route_key));
      if (dest == group->name) continue;  // key range stays put
      outbound[group->name].push_back(doc.route_key);
      inbound[dest].push_back(std::move(doc));
      ++moved_total;
    }
  }

  // ---- Stage the moved documents into every member of each gaining
  // group. Staged documents are query-invisible until barrier 2.
  for (auto& [dest, docs] : inbound) {
    const JsonValue body = ExportedDocsToJson(docs);
    const GroupState* target = next_by_name.at(dest);
    for (const auto& member : target->members) {
      Result<JsonValue> staged = member->handle->Admin("stage", body);
      if (!staged.ok()) {
        return rollback(
            staged_members,
            Status(staged.status().code(),
                   "rebalance aborted: cannot stage onto " +
                       member->handle->name() + ": " +
                       staged.status().message()));
      }
      staged_members.push_back(member);
    }
  }

  // ---- Barrier 2 (exclusive over queries AND ingest): staged
  // documents become visible on the gainers, the movers' old copies
  // are dropped by explicit route-key list, and the epoch flips — all
  // with no reader in flight, so no request ever sees a document twice
  // or not at all. Member failures here diverge that replica only; the
  // flip proceeds and the anti-entropy audit reports the damage.
  std::vector<std::string> errors;
  std::size_t dropped_total = 0;
  {
    std::unique_lock<std::shared_mutex> lock(table_mu_);
    for (auto& [dest, docs] : inbound) {
      (void)docs;
      const GroupState* target = next_by_name.at(dest);
      for (const auto& member : target->members) {
        Result<JsonValue> applied =
            member->handle->Admin("apply", JsonValue::MakeObject());
        if (!applied.ok()) {
          errors.push_back("apply on " + member->handle->name() + ": " +
                           applied.status().ToString());
        }
      }
    }
    for (const auto& group : current->groups) {
      auto moved = outbound.find(group->name);
      if (moved == outbound.end()) continue;
      JsonValue drop_body = JsonValue::MakeObject();
      JsonValue routes = JsonValue::MakeArray();
      for (const std::string& route : moved->second) {
        routes.Append(JsonValue(route));
      }
      drop_body.Set("routes", std::move(routes));
      for (const auto& member : group->members) {
        Result<JsonValue> dropped = member->handle->Admin("drop", drop_body);
        if (!dropped.ok()) {
          errors.push_back("drop on " + member->handle->name() + ": " +
                           dropped.status().ToString());
          continue;
        }
        const JsonValue* count = dropped.value().Find("dropped");
        if (count != nullptr && count->is_integer()) {
          dropped_total += static_cast<std::size_t>(count->GetInt64());
        }
      }
    }
    table_ = next;
  }

  rebalances_->Increment();
  rebalanced_docs_->Increment(moved_total);
  rebalance_latency_->Observe(timer.ElapsedMillis());
  for (const std::string& error : errors) {
    BIVOC_LOG(Warning) << "ring change (epoch " << next->epoch
                       << "): " << error;
  }

  JsonValue reply = JsonValue::MakeObject();
  reply.Set("epoch", JsonValue(next->epoch));
  reply.Set("moved_docs", JsonValue(static_cast<uint64_t>(moved_total)));
  reply.Set("dropped_docs",
            JsonValue(static_cast<uint64_t>(dropped_total)));
  JsonValue group_names = JsonValue::MakeArray();
  for (const auto& group : next->groups) {
    group_names.Append(JsonValue(group->name));
  }
  reply.Set("groups", std::move(group_names));
  JsonValue error_list = JsonValue::MakeArray();
  for (const std::string& error : errors) {
    error_list.Append(JsonValue(error));
  }
  reply.Set("errors", std::move(error_list));
  return reply;
}

// --- anti-entropy ----------------------------------------------------

Result<JsonValue> ShardRouter::AuditReplicas() {
  std::shared_ptr<const RoutingTable> table = Table();
  audits_->Increment();

  std::size_t divergent = 0;
  JsonValue groups_json = JsonValue::MakeArray();
  for (const auto& group : table->groups) {
    JsonValue members_json = JsonValue::MakeArray();
    std::vector<std::pair<std::string, ChecksumReply>> answers;
    for (const auto& member : group->members) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("name", JsonValue(member->handle->name()));
      Result<JsonValue> reply =
          member->handle->Admin("checksum", JsonValue::MakeObject());
      Result<ChecksumReply> parsed =
          reply.ok() ? ParseChecksum(reply.value())
                     : Result<ChecksumReply>(reply.status());
      if (parsed.ok()) {
        entry.Set("ok", JsonValue(true));
        entry.Set("docs", JsonValue(parsed.value().docs));
        entry.Set("checksum", JsonValue(parsed.value().checksum));
        answers.emplace_back(member->handle->name(), parsed.MoveValue());
      } else {
        // Unreachable is not divergent: the audit compares content, not
        // availability (the breaker and healthz own that).
        entry.Set("ok", JsonValue(false));
        entry.Set("error", JsonValue(parsed.status().ToString()));
      }
      members_json.Append(std::move(entry));
    }
    bool diverged = false;
    for (std::size_t i = 1; i < answers.size(); ++i) {
      if (answers[i].second.docs != answers[0].second.docs ||
          answers[i].second.checksum != answers[0].second.checksum) {
        diverged = true;
        WarnDivergent(group->name,
                      answers[0].first + " has " +
                          std::to_string(answers[0].second.docs) + " docs/" +
                          answers[0].second.checksum + " but " +
                          answers[i].first + " has " +
                          std::to_string(answers[i].second.docs) + " docs/" +
                          answers[i].second.checksum);
      }
    }
    if (diverged) ++divergent;
    JsonValue group_json = JsonValue::MakeObject();
    group_json.Set("name", JsonValue(group->name));
    group_json.Set("divergent", JsonValue(diverged));
    group_json.Set("members", std::move(members_json));
    groups_json.Append(std::move(group_json));
  }
  replica_divergence_->Set(static_cast<int64_t>(divergent));

  JsonValue body = JsonValue::MakeObject();
  body.Set("divergent", JsonValue(static_cast<uint64_t>(divergent)));
  body.Set("epoch", JsonValue(table->epoch));
  body.Set("groups", std::move(groups_json));
  return body;
}

// --- read repair -----------------------------------------------------

Result<JsonValue> ShardRouter::RepairReplicas() {
  // Serialized against ring changes, and exclusive over the table for
  // the whole verb: with no query or ingest in flight, "copy of the
  // reference" means exactly that — the reference cannot grow between
  // its export and the verifying checksum.
  std::lock_guard<std::mutex> change_lock(change_mu_);
  std::unique_lock<std::shared_mutex> table_lock(table_mu_);
  const std::shared_ptr<const RoutingTable> table = table_;
  repairs_->Increment();

  struct Answer {
    MemberState* member = nullptr;
    ChecksumReply reply;
  };

  std::size_t repaired_total = 0;
  std::size_t failed_total = 0;
  std::size_t divergent_groups = 0;
  std::size_t still_divergent = 0;
  JsonValue groups_json = JsonValue::MakeArray();
  for (const auto& group : table->groups) {
    JsonValue group_json = JsonValue::MakeObject();
    group_json.Set("name", JsonValue(group->name));
    JsonValue members_json = JsonValue::MakeArray();

    // The same comparison the audit makes; unreachable members are
    // recorded and left alone (repairing onto a dead replica is the
    // failover path's job once it returns, via this verb re-run).
    std::vector<Answer> answers;
    for (const auto& member : group->members) {
      Result<JsonValue> reply =
          member->handle->Admin("checksum", JsonValue::MakeObject());
      Result<ChecksumReply> parsed =
          reply.ok() ? ParseChecksum(reply.value())
                     : Result<ChecksumReply>(reply.status());
      if (parsed.ok()) {
        answers.push_back({member.get(), parsed.MoveValue()});
      } else {
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("name", JsonValue(member->handle->name()));
        entry.Set("repaired", JsonValue(false));
        entry.Set("error", JsonValue("checksum: " +
                                     parsed.status().ToString()));
        members_json.Append(std::move(entry));
      }
    }

    // Reference: the most-agreed-with (docs, checksum) verdict, doc
    // count breaking ties — an add-only replica that missed writes is
    // the smaller one.
    std::map<std::pair<uint64_t, std::string>, std::size_t> votes;
    for (const Answer& answer : answers) {
      ++votes[{answer.reply.docs, answer.reply.checksum}];
    }
    const Answer* reference = nullptr;
    std::size_t reference_votes = 0;
    for (const Answer& answer : answers) {
      const std::size_t v = votes[{answer.reply.docs, answer.reply.checksum}];
      if (reference == nullptr || v > reference_votes ||
          (v == reference_votes &&
           answer.reply.docs > reference->reply.docs)) {
        reference = &answer;
        reference_votes = v;
      }
    }

    std::vector<const Answer*> divergent;
    for (const Answer& answer : answers) {
      if (answer.reply.docs != reference->reply.docs ||
          answer.reply.checksum != reference->reply.checksum) {
        divergent.push_back(&answer);
      }
    }
    if (reference == nullptr || divergent.empty()) {
      group_json.Set("divergent", JsonValue(false));
      group_json.Set("members", std::move(members_json));
      groups_json.Append(std::move(group_json));
      continue;
    }
    ++divergent_groups;
    group_json.Set("divergent", JsonValue(true));
    group_json.Set("reference", JsonValue(reference->member->handle->name()));

    // One export serves every divergent member of the group.
    Result<JsonValue> exported = reference->member->handle->Admin(
        "export", JsonValue::MakeObject());
    Result<std::vector<ExportedDoc>> reference_docs =
        exported.ok() ? ExportedDocsFromJson(exported.value())
                      : Result<std::vector<ExportedDoc>>(exported.status());
    if (!reference_docs.ok()) {
      group_json.Set("error",
                     JsonValue("export from reference failed: " +
                               reference_docs.status().ToString()));
      group_json.Set("members", std::move(members_json));
      groups_json.Append(std::move(group_json));
      failed_total += divergent.size();
      ++still_divergent;
      continue;
    }
    std::set<std::string> reference_routes;
    for (const ExportedDoc& doc : reference_docs.value()) {
      reference_routes.insert(doc.route_key);
    }
    const JsonValue stage_body = ExportedDocsToJson(reference_docs.value());

    bool group_failed = false;
    for (const Answer* target : divergent) {
      MemberState& member = *target->member;
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("name", JsonValue(member.handle->name()));
      auto fail = [&](const std::string& detail) {
        entry.Set("repaired", JsonValue(false));
        entry.Set("error", JsonValue(detail));
        members_json.Append(std::move(entry));
        ++failed_total;
        group_failed = true;
        WarnDivergent(group->name, "repair of " + member.handle->name() +
                                       " failed: " + detail);
      };

      // Drop set: every route either side holds, so documents the
      // divergent member invented (or kept past a drop it missed) go
      // away along with the stale copies being replaced.
      Result<JsonValue> own = member.handle->Admin("export",
                                                   JsonValue::MakeObject());
      Result<std::vector<ExportedDoc>> own_docs =
          own.ok() ? ExportedDocsFromJson(own.value())
                   : Result<std::vector<ExportedDoc>>(own.status());
      if (!own_docs.ok()) {
        fail("export: " + own_docs.status().ToString());
        continue;
      }
      std::set<std::string> routes = reference_routes;
      for (const ExportedDoc& doc : own_docs.value()) {
        routes.insert(doc.route_key);
      }

      Result<JsonValue> staged = member.handle->Admin("stage", stage_body);
      if (!staged.ok()) {
        fail("stage: " + staged.status().ToString());
        continue;
      }
      JsonValue drop_body = JsonValue::MakeObject();
      JsonValue route_list = JsonValue::MakeArray();
      for (const std::string& route : routes) {
        route_list.Append(JsonValue(route));
      }
      drop_body.Set("routes", std::move(route_list));
      Result<JsonValue> dropped = member.handle->Admin("drop", drop_body);
      if (!dropped.ok()) {
        Result<JsonValue> aborted =
            member.handle->Admin("abort", JsonValue::MakeObject());
        if (!aborted.ok()) {
          BIVOC_LOG(Warning)
              << "repair rollback: abort on " << member.handle->name()
              << " failed: " << aborted.status().ToString();
        }
        fail("drop: " + dropped.status().ToString());
        continue;
      }
      Result<JsonValue> applied =
          member.handle->Admin("apply", JsonValue::MakeObject());
      if (!applied.ok()) {
        // The member is now emptier than before (drop landed, apply
        // did not); report loudly — the next repair run re-stages it.
        fail("apply: " + applied.status().ToString());
        continue;
      }

      // Closing verification against the (frozen) reference verdict.
      Result<JsonValue> check =
          member.handle->Admin("checksum", JsonValue::MakeObject());
      Result<ChecksumReply> verify =
          check.ok() ? ParseChecksum(check.value())
                     : Result<ChecksumReply>(check.status());
      if (!verify.ok()) {
        fail("verify checksum: " + verify.status().ToString());
        continue;
      }
      if (verify.value().docs != reference->reply.docs ||
          verify.value().checksum != reference->reply.checksum) {
        fail("verification mismatch: repaired member has " +
             std::to_string(verify.value().docs) + " docs/" +
             verify.value().checksum + ", reference has " +
             std::to_string(reference->reply.docs) + " docs/" +
             reference->reply.checksum);
        continue;
      }
      entry.Set("repaired", JsonValue(true));
      entry.Set("docs", JsonValue(verify.value().docs));
      members_json.Append(std::move(entry));
      ++repaired_total;
      repaired_members_->Increment();
    }
    if (group_failed) ++still_divergent;
    group_json.Set("members", std::move(members_json));
    groups_json.Append(std::move(group_json));
  }

  // Groups whose every divergent member verified are clean again; the
  // gauge reflects what is *still* divergent after the verb.
  replica_divergence_->Set(static_cast<int64_t>(still_divergent));

  JsonValue body = JsonValue::MakeObject();
  body.Set("repaired", JsonValue(static_cast<uint64_t>(repaired_total)));
  body.Set("failed", JsonValue(static_cast<uint64_t>(failed_total)));
  body.Set("divergent_groups",
           JsonValue(static_cast<uint64_t>(divergent_groups)));
  body.Set("epoch", JsonValue(table->epoch));
  body.Set("groups", std::move(groups_json));
  return body;
}

void ShardRouter::AuditLoop() {
  std::unique_lock<std::mutex> lock(audit_stop_mu_);
  while (!audit_stop_) {
    if (audit_stop_cv_.wait_for(
            lock, std::chrono::milliseconds(opts_.anti_entropy_interval_ms),
            [this] { return audit_stop_; })) {
      break;
    }
    lock.unlock();
    Result<JsonValue> audit = AuditReplicas();
    if (!audit.ok()) {
      BIVOC_LOG(Warning) << "anti-entropy audit failed: "
                         << audit.status().ToString();
    }
    lock.lock();
  }
}

// --- admin surface ---------------------------------------------------

namespace {

// {"groups":[{"name":"g0","members":[{"name":"s0","host":"127.0.0.1",
// "port":18081},...]},...]} — host/port optional for member names the
// router already knows (resolver below substitutes the live handle).
Result<std::vector<ReplicaGroup>> RingBodyToGroups(
    const JsonValue& body,
    const std::function<std::shared_ptr<ShardHandle>(const std::string&)>&
        known) {
  if (!body.is_object()) {
    return Status::InvalidArgument("ring body must be a JSON object");
  }
  const JsonValue* groups = body.Find("groups");
  if (groups == nullptr || !groups->is_array()) {
    return Status::InvalidArgument("ring body needs a \"groups\" array");
  }
  std::vector<ReplicaGroup> out;
  out.reserve(groups->GetArray().size());
  for (std::size_t g = 0; g < groups->GetArray().size(); ++g) {
    const JsonValue& group_json = groups->GetArray()[g];
    const std::string where = "groups[" + std::to_string(g) + "]";
    if (!group_json.is_object()) {
      return Status::InvalidArgument(where + ": expected an object");
    }
    ReplicaGroup group;
    const JsonValue* name = group_json.Find("name");
    if (name != nullptr) {
      if (!name->is_string()) {
        return Status::InvalidArgument(where + ".name: expected a string");
      }
      group.name = name->GetString();
    }
    const JsonValue* members = group_json.Find("members");
    if (members == nullptr || !members->is_array()) {
      return Status::InvalidArgument(where + ": needs a \"members\" array");
    }
    for (std::size_t m = 0; m < members->GetArray().size(); ++m) {
      const JsonValue& member_json = members->GetArray()[m];
      const std::string mwhere = where + ".members[" + std::to_string(m) + "]";
      if (!member_json.is_object()) {
        return Status::InvalidArgument(mwhere + ": expected an object");
      }
      const JsonValue* member_name = member_json.Find("name");
      if (member_name == nullptr || !member_name->is_string()) {
        return Status::InvalidArgument(mwhere +
                                       ": needs a \"name\" string");
      }
      std::shared_ptr<ShardHandle> handle = known(member_name->GetString());
      if (handle == nullptr) {
        const JsonValue* host = member_json.Find("host");
        const JsonValue* port = member_json.Find("port");
        if (host == nullptr || !host->is_string() || port == nullptr ||
            !port->is_integer() || port->GetInt64() <= 0 ||
            port->GetInt64() > 65535) {
          return Status::InvalidArgument(
              mwhere + ": unknown shard needs \"host\" and \"port\"");
        }
        handle = std::make_shared<HttpShardHandle>(
            member_name->GetString(), host->GetString(),
            static_cast<uint16_t>(port->GetInt64()));
      }
      group.members.push_back(std::move(handle));
    }
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace

Result<JsonValue> ShardRouter::ExecuteAdmin(const std::string& action,
                                            const JsonValue& body) {
  if (action == "ring") {
    auto known =
        [this](const std::string& name) -> std::shared_ptr<ShardHandle> {
      std::lock_guard<std::mutex> lock(members_mu_);
      auto it = members_.find(name);
      return it == members_.end() ? nullptr : it->second->handle;
    };
    BIVOC_ASSIGN_OR_RETURN(std::vector<ReplicaGroup> groups,
                           RingBodyToGroups(body, known));
    return ChangeRing(std::move(groups));
  }
  if (action == "audit") {
    return AuditReplicas();
  }
  if (action == "repair") {
    return RepairReplicas();
  }
  return GatewayBackend::ExecuteAdmin(action, body);
}

// --- health / metrics ------------------------------------------------

GatewayBackend::HealthSnapshot ShardRouter::Healthz() {
  const std::shared_ptr<const RoutingTable> table = Table();

  struct ProbeTarget {
    const GroupState* group;
    MemberState* member;
  };
  std::vector<ProbeTarget> targets;
  for (const auto& group : table->groups) {
    for (const auto& member : group->members) {
      targets.push_back({group.get(), member.get()});
    }
  }
  const std::size_t n = targets.size();
  struct Probe {
    Status status;
    JsonValue health;
  };
  std::vector<Probe> probes(n);
  Latch latch(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Deliberately bypasses the breaker: health is how operators (and
    // the chaos tests) *watch* a shard recover, so the probe must hit
    // the real shard even while queries are being short-circuited.
    pool_.Submit([i, &targets, &probes, &latch] {
      MemberState* member = targets[i].member;
      const std::string named_point =
          std::string(kFaultShardSend) + ":" + member->handle->name();
      Status fault = FaultInjector::Global().MaybeFail(named_point);
      Result<JsonValue> health =
          fault.ok() ? member->handle->Health() : Result<JsonValue>(fault);
      if (health.ok()) {
        probes[i].health = health.MoveValue();
        member->breaker.RecordSuccess();
      } else {
        probes[i].status = health.status();
      }
      latch.CountDown();
    });
  }
  latch.Wait();

  std::size_t ok_count = 0;
  std::set<std::string> ok_groups;
  JsonValue shard_list = JsonValue::MakeArray();
  for (std::size_t i = 0; i < n; ++i) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", JsonValue(targets[i].member->handle->name()));
    entry.Set("group", JsonValue(targets[i].group->name));
    entry.Set("ok", JsonValue(probes[i].status.ok()));
    entry.Set("breaker",
              JsonValue(CircuitBreakerStateName(
                  targets[i].member->breaker.state())));
    if (probes[i].status.ok()) {
      ++ok_count;
      ok_groups.insert(targets[i].group->name);
      entry.Set("health", std::move(probes[i].health));
    } else {
      entry.Set("error", JsonValue(probes[i].status.ToString()));
    }
    shard_list.Append(std::move(entry));
  }

  const char* verdict = ok_count == n          ? "ok"
                        : ok_count > 0         ? "degraded"
                                               : "unavailable";
  HealthSnapshot snapshot;
  snapshot.http_status = ok_count > 0 ? 200 : 503;
  JsonValue body = JsonValue::MakeObject();
  body.Set("verdict", JsonValue(verdict));
  body.Set("epoch", JsonValue(table->epoch));
  body.Set("rebalancing", JsonValue(table->next != nullptr));
  body.Set("shards_total", JsonValue(static_cast<uint64_t>(n)));
  body.Set("shards_ok", JsonValue(static_cast<uint64_t>(ok_count)));
  body.Set("groups_total",
           JsonValue(static_cast<uint64_t>(table->groups.size())));
  body.Set("groups_ok", JsonValue(static_cast<uint64_t>(ok_groups.size())));
  body.Set("shards", std::move(shard_list));
  snapshot.body = std::move(body);
  return snapshot;
}

std::string ShardRouter::MetricsText() { return metrics_->RenderText(); }

}  // namespace bivoc
