#ifndef BIVOC_CLUSTER_HASH_RING_H_
#define BIVOC_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bivoc {

// One position on the ring: a named *replica group* whose members all
// hold identical content (DESIGN.md §14). The classic one-shard-per-
// position ring is the degenerate case members == {name}.
struct RingNode {
  std::string name;
  std::vector<std::string> members;
};

// Consistent-hash ring over named replica groups (DESIGN.md §12, §14).
// Ingest routing hashes a document's central entity key onto the ring
// so (a) all documents of one entity land on one group — CountBothIds
// joins stay shard-local — and (b) adding or removing a group only
// remaps the ~1/N keys adjacent to its virtual nodes instead of
// reshuffling everything, which is what keeps rebalancing (and a
// rejoining shard's WAL replay) proportional to the diff.
//
// Deterministic: the ring depends only on (node names, replicas), so
// every router instance — and a restarted router — routes identically.
// Placement hashes the *node name* only; the member list never affects
// key ownership, so replacing a replica moves zero keys. Immutable
// after construction and therefore freely shared across threads.
class HashRing {
 public:
  // `replicas` virtual nodes per group smooth the key distribution;
  // 64 keeps the worst group within a few percent of the mean.
  explicit HashRing(std::vector<std::string> shard_names,
                    std::size_t replicas = 64);
  explicit HashRing(std::vector<RingNode> nodes, std::size_t replicas = 64);

  // Index (into the constructor's node order) of the group owning
  // `key`. Requires a non-empty ring.
  std::size_t ShardFor(std::string_view key) const;

  // The owning group's member shards — the R replicas every write of
  // `key` must reach. Requires a non-empty ring.
  const std::vector<std::string>& OwnersFor(std::string_view key) const {
    return nodes_[ShardFor(key)].members;
  }

  std::size_t num_shards() const { return nodes_.size(); }
  const std::string& name(std::size_t shard) const {
    return nodes_[shard].name;
  }
  const RingNode& node(std::size_t shard) const { return nodes_[shard]; }
  const std::vector<RingNode>& nodes() const { return nodes_; }

 private:
  std::vector<RingNode> nodes_;
  // (point hash, node index), sorted by hash: the ring itself.
  std::vector<std::pair<uint64_t, std::size_t>> points_;
};

}  // namespace bivoc

#endif  // BIVOC_CLUSTER_HASH_RING_H_
