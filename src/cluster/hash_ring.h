#ifndef BIVOC_CLUSTER_HASH_RING_H_
#define BIVOC_CLUSTER_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bivoc {

// Consistent-hash ring over named shards (DESIGN.md §12). Ingest
// routing hashes a document's central entity key onto the ring so (a)
// all documents of one entity land on one shard — CountBothIds joins
// stay shard-local — and (b) adding or removing a shard only remaps
// the ~1/N keys adjacent to its virtual nodes instead of reshuffling
// everything, which is what keeps a rejoining shard's WAL replay
// meaningful.
//
// Deterministic: the ring depends only on (shard names, replicas), so
// every router instance — and a restarted router — routes identically.
// Immutable after construction and therefore freely shared across
// threads.
class HashRing {
 public:
  // `replicas` virtual nodes per shard smooth the key distribution;
  // 64 keeps the worst shard within a few percent of the mean.
  explicit HashRing(std::vector<std::string> shard_names,
                    std::size_t replicas = 64);

  // Index (into the constructor's name order) of the shard owning
  // `key`. Requires a non-empty ring.
  std::size_t ShardFor(std::string_view key) const;

  std::size_t num_shards() const { return names_.size(); }
  const std::string& name(std::size_t shard) const { return names_[shard]; }

 private:
  std::vector<std::string> names_;
  // (point hash, shard index), sorted by hash: the ring itself.
  std::vector<std::pair<uint64_t, std::size_t>> points_;
};

}  // namespace bivoc

#endif  // BIVOC_CLUSTER_HASH_RING_H_
