#include "cluster/shard_handle.h"

#include <utility>

#include "core/ingest.h"
#include "net/gateway.h"

namespace bivoc {

// --- LocalShardHandle ------------------------------------------------

LocalShardHandle::LocalShardHandle(std::string name,
                                   std::shared_ptr<BivocEngine> engine)
    : name_(std::move(name)), engine_(std::move(engine)) {
  // Lazy subsystem construction is not thread-safe on first call; warm
  // both before the router's scatter threads exist.
  engine_->serve();
  engine_->ingest();
}

Result<WireReport> LocalShardHandle::Query(const QueryRequest& request) {
  Result<ReportServer::ReportResponse> response =
      engine_->serve()->Execute(request);
  if (!response.ok()) return response.status();
  WireReport report;
  report.report = *response.value().report;  // snapshot the shared report
  report.from_cache = response.value().from_cache;
  return report;
}

Result<JsonValue> LocalShardHandle::Ingest(
    const std::vector<IngestItem>& items) {
  return HealthReportToJson(engine_->IngestBatch(items));
}

Result<JsonValue> LocalShardHandle::Health() {
  return HealthReportToJson(engine_->Health());
}

Result<JsonValue> LocalShardHandle::Admin(const std::string& action,
                                          const JsonValue& body) {
  // Same dialect HttpShardHandle reaches over the wire, minus the wire.
  return EngineAdmin(engine_.get(), action, body);
}

// --- HttpShardHandle -------------------------------------------------

HttpShardHandle::HttpShardHandle(std::string name, std::string host,
                                 uint16_t port, HttpShardOptions options)
    : name_(std::move(name)),
      host_(std::move(host)),
      port_(port),
      opts_(options) {}

std::size_t HttpShardHandle::pooled_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_.size();
}

std::unique_ptr<HttpClient> HttpShardHandle::Checkout() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!pool_.empty()) {
      std::unique_ptr<HttpClient> client = std::move(pool_.back());
      pool_.pop_back();
      return client;
    }
  }
  HttpClientOptions client_opts;
  client_opts.timeout_ms = opts_.send_timeout_ms;
  client_opts.connect_timeout_ms = opts_.connect_timeout_ms;
  client_opts.read_timeout_ms = opts_.read_timeout_ms;
  return std::make_unique<HttpClient>(host_, port_, client_opts);
}

void HttpShardHandle::Return(std::unique_ptr<HttpClient> client) {
  std::lock_guard<std::mutex> lock(mu_);
  pool_.push_back(std::move(client));
}

Result<JsonValue> HttpShardHandle::RoundTrip(const std::string& method,
                                             const std::string& target,
                                             std::string body) {
  std::unique_ptr<HttpClient> client = Checkout();
  Result<HttpResponse> response =
      method == "GET" ? client->Get(target)
                      : client->Post(target, std::move(body));
  if (!response.ok()) {
    // Transport failure: the connection is in an unknown state, so it
    // is dropped with `client` — never pooled.
    return response.status();
  }
  Result<JsonValue> json = ParseJson(response.value().body);
  if (!json.ok()) {
    return Status::Corruption("shard " + name_ + " sent unparseable JSON: " +
                              json.status().message());
  }
  const int http_status = response.value().status;
  // The exchange framed correctly (whatever the status code), so the
  // kept-alive connection is safe to reuse.
  Return(std::move(client));
  if (http_status < 200 || http_status >= 300) {
    std::string message = "shard " + name_ + " answered HTTP " +
                          std::to_string(http_status);
    const JsonValue* detail = json.value().Find("message");
    if (detail != nullptr && detail->is_string()) {
      message += ": " + detail->GetString();
    }
    return Status(StatusCodeForHttp(http_status), std::move(message));
  }
  return json;
}

Result<WireReport> HttpShardHandle::Query(const QueryRequest& request) {
  Result<JsonValue> json =
      RoundTrip("POST", "/v1/query", DumpJson(QueryRequestToJson(request)));
  if (!json.ok()) return json.status();
  Result<WireReport> report = ReportResultFromJson(json.value());
  if (!report.ok()) {
    return Status::Corruption("shard " + name_ + " sent a malformed report: " +
                              report.status().message());
  }
  return report;
}

Result<JsonValue> HttpShardHandle::Ingest(
    const std::vector<IngestItem>& items) {
  return RoundTrip("POST", "/v1/ingest", DumpJson(IngestItemsToJson(items)));
}

Result<JsonValue> HttpShardHandle::Health() {
  return RoundTrip("GET", "/healthz", "");
}

Result<JsonValue> HttpShardHandle::Admin(const std::string& action,
                                         const JsonValue& body) {
  return RoundTrip("POST", "/v1/admin/" + action, DumpJson(body));
}

}  // namespace bivoc
