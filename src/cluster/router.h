#ifndef BIVOC_CLUSTER_ROUTER_H_
#define BIVOC_CLUSTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/shard_handle.h"
#include "core/ingest.h"
#include "net/gateway.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace bivoc {

struct ShardRouterOptions {
  // --- per-shard query RPC policy (fed into util/retry.h) -----------
  int max_attempts = 2;
  int64_t initial_backoff_ms = 10;
  // Overall budget for one shard's answer, all attempts included. A
  // shard that cannot answer inside this window is reported missing
  // and the response becomes partial — the deadline is the honesty
  // boundary, not a hang.
  int64_t shard_deadline_ms = 2000;
  // Write-off for a single attempt: a hung RPC stops blocking the
  // retry schedule after this long (the attempt itself keeps running
  // detached and may still win).
  int64_t attempt_timeout_ms = 500;
  // Launch a concurrent hedge attempt when the newest one has not
  // answered after this long. 0 disables hedging.
  int64_t hedge_delay_ms = 150;
  // Cluster-wide cap on concurrently outstanding hedge attempts, so a
  // brown-out cannot double the fleet's load.
  int64_t hedge_budget = 4;

  // --- ingest RPC policy --------------------------------------------
  // Ingest retries sequentially and never hedges: replaying a batch
  // that may have half-applied is acceptable (ingest is add-only and
  // the WAL dedups on recovery), racing two copies of it is not.
  int ingest_max_attempts = 3;
  int64_t ingest_backoff_ms = 20;

  // Per-shard circuit breaker (core/ingest.h semantics).
  CircuitBreaker::Options breaker;

  // Scatter worker threads; 0 = one per replica group (capped at 16).
  std::size_t scatter_threads = 0;

  // Virtual nodes per group on the ingest ring.
  std::size_t ring_replicas = 64;

  // "shard unreachable" warnings are rate-limited per shard to one
  // per this interval; suppressed repeats are counted and reported in
  // the next emitted line (same pattern as the DLQ overflow warning).
  // Replica-divergence warnings use the same interval.
  int64_t warn_interval_ms = 1000;

  // Retry-After hint attached to kUnavailable responses.
  int64_t retry_after_ms = 50;

  // Background anti-entropy audit interval; 0 (default) disables the
  // thread. AuditReplicas() can always be called synchronously.
  int64_t anti_entropy_interval_ms = 0;

  // Rebalance export page size (documents per "export" RPC). A ring
  // change streams each losing group's documents in pages this big,
  // retrying a dropped page from its cursor instead of re-pulling the
  // whole shard. 0 = legacy single-shot export.
  std::size_t export_chunk_docs = 512;
  // Attempts per export page before the ring change aborts.
  int export_chunk_attempts = 3;

  // Seed for the retry jitter schedule (reproducible tests).
  uint64_t seed = 0x5eedULL;
};

// One ring position's replica set: R shard handles holding identical
// content. An empty `name` defaults to the first member's name.
struct ReplicaGroup {
  std::string name;
  std::vector<std::shared_ptr<ShardHandle>> members;
};

// Chunks `handles` into consecutive groups of `replication` members
// (the last group keeps the remainder): the R=2 quickstart topology of
// examples/serve_cluster --replicas.
std::vector<ReplicaGroup> MakeReplicaGroups(
    std::vector<std::shared_ptr<ShardHandle>> handles,
    std::size_t replication = 2);

// Scatter-gather coordinator over N replica groups (DESIGN.md §12,
// §14) and the cluster-mode GatewayBackend: put a Gateway in front of
// a ShardRouter and the wire surface of a cluster is byte-compatible
// with a single engine's, plus the honesty fields below.
//
//  * /v1/query fans out one leg per group in shard mode
//    (serve/query.h) under per-shard deadlines, budgeted hedged
//    retries and per-shard circuit breakers, then merges exactly
//    (serve/merge.h). A leg whose member is open-breakered or
//    unreachable fails over to the next replica
//    (cluster_failovers_total), so a single shard death still yields
//    partial:false answers bit-for-bit identical to a healthy
//    cluster's. The response always carries "partial" and
//    "missing_shards" (group names with no answering member); degraded
//    answers are first-class 200s, and only zero reachable groups is a
//    503.
//  * /v1/ingest consistent-hashes each item (first structured key,
//    else the payload) onto the ring, then writes each group's batch
//    to every member sequentially — an item is failed only when *no*
//    member of its group accepted it.
//  * /v1/admin/ring swaps the ring live (ChangeRing below);
//    /v1/admin/audit runs the anti-entropy comparison;
//    /v1/admin/repair re-stages divergent replicas from a healthy
//    peer (RepairReplicas below).
//  * /healthz probes every member — bypassing breakers, so recovery is
//    observed rather than assumed — and reports a three-state verdict:
//    "ok" (all members), "degraded" (some), "unavailable" (none, 503).
//  * /metrics renders the router registry: per-shard request/failure
//    counters, failover and hedge counters, the
//    cluster_replica_divergence gauge, scatter/merge latency
//    histograms and the partial-response counter, plus the gateway's
//    route instruments.
//
// Live rebalancing (ChangeRing) is a two-barrier protocol — see
// DESIGN.md §14. Between the barriers ingest routes moved keys to
// their *new* owners only and queries scatter over the union of old
// and new groups, so a rebalance concurrent with ingest loses nothing
// and double-counts nothing.
//
// Fault points: every attempt of every shard RPC passes through
// "net.shard.send" and "net.shard.send:<shard-name>"; the merge step
// passes through "cluster.merge" (util/fault_injection.h).
//
// Thread-safe. The router owns its scatter pool and (optionally) its
// registry; shard handles are co-owned with any outstanding attempts.
class ShardRouter : public GatewayBackend {
 public:
  // `metrics` == nullptr gives the router a private registry. The
  // handle-list constructor wraps each handle in its own group
  // (replication 1) — the classic unreplicated topology.
  explicit ShardRouter(std::vector<std::shared_ptr<ShardHandle>> shards,
                       ShardRouterOptions options = {},
                       MetricsRegistry* metrics = nullptr);
  explicit ShardRouter(std::vector<ReplicaGroup> groups,
                       ShardRouterOptions options = {},
                       MetricsRegistry* metrics = nullptr);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // GatewayBackend:
  Result<JsonValue> ExecuteQuery(QueryRequest request) override;
  Result<JsonValue> ExecuteIngest(std::vector<IngestItem> items) override;
  // "ring": {"groups":[{"name":"g0","members":[{"name":"s0","host":
  // "127.0.0.1","port":18081},...]},...]} -> ChangeRing over
  // HttpShardHandles (members whose name the router already knows keep
  // their existing handle, so in-process topologies stay in-process).
  // "audit": {} -> AuditReplicas. "repair": {} -> RepairReplicas.
  Result<JsonValue> ExecuteAdmin(const std::string& action,
                                 const JsonValue& body) override;
  HealthSnapshot Healthz() override;
  std::string MetricsText() override;
  MetricsRegistry* metrics() override { return metrics_; }
  int64_t retry_after_hint_ms() override { return opts_.retry_after_ms; }

  // --- live rebalancing (DESIGN.md §14) ------------------------------
  // Atomically replaces the ring with `new_groups`, streaming only the
  // key ranges whose owner changed out of one healthy member per
  // losing group into every member of the gaining group. Serialized
  // against concurrent ChangeRing calls; concurrent ingest and queries
  // stay exact throughout. Returns a summary
  // {"epoch":E,"moved_docs":N,"dropped_docs":N,"groups":[names]}.
  Result<JsonValue> ChangeRing(std::vector<ReplicaGroup> new_groups);
  uint64_t ring_epoch() const;

  // --- anti-entropy --------------------------------------------------
  // Compares doc count + content checksum across every replica pair,
  // sets the cluster_replica_divergence gauge to the number of
  // divergent groups, and rate-limits a warning per divergent group.
  // Members that cannot be reached are skipped, not counted divergent.
  Result<JsonValue> AuditReplicas();

  // --- read repair ---------------------------------------------------
  // Acts on what AuditReplicas can only report: for every group whose
  // members disagree, rebuilds each minority member from a healthy
  // reference — the member holding the majority (docs, checksum)
  // verdict, doc count breaking ties (a replica that missed writes has
  // fewer). The reference exports its corpus; the divergent member
  // stages that copy, drops every route either side holds, applies the
  // staged documents, and a closing checksum must match the reference
  // before the member counts as repaired. The whole verb runs under
  // the exclusive table barrier (serialized against ChangeRing), so no
  // query or ingest interleaves with the swap and the verifying
  // checksums compare a genuinely frozen pair. Unreachable members are
  // skipped, never "repaired". Exposed as POST /v1/admin/repair.
  // Returns {"repaired":N,"failed":N,"divergent_groups":N,
  // "groups":[...]} with per-member detail.
  Result<JsonValue> RepairReplicas();

  // --- introspection (tests, examples) ------------------------------
  // Group-granular: with replication 1 these are the classic per-shard
  // accessors (group name == the sole member's name).
  std::size_t num_shards() const;
  std::string shard_name(std::size_t shard) const;
  // Member 0's breaker of group `shard` (tests).
  CircuitBreaker* breaker(std::size_t shard);
  // Ring position an ingest item routes to (the post-rebalance ring
  // while a change is in flight — where a write would go *now*).
  std::size_t ShardForItem(const IngestItem& item) const;
  // The routing key: the first structured key (the central entity —
  // paper §III's customer/center dimensions), else the payload —
  // prefixed with the owning tenant (ComposeRouteKey), so tenants
  // shard independently and a ring change moves them as units.
  static std::string RouteKey(const IngestItem& item);

 private:
  struct MemberState {
    MemberState(std::shared_ptr<ShardHandle> h,
                const CircuitBreaker::Options& breaker_options)
        : handle(std::move(h)), breaker(breaker_options) {}

    std::shared_ptr<ShardHandle> handle;
    CircuitBreaker breaker;
    Counter* requests = nullptr;
    Counter* failures = nullptr;
    // Rate-limited "unreachable" warning state.
    std::mutex warn_mu;
    int64_t last_warn_ms = 0;
    bool ever_warned = false;
    std::size_t suppressed = 0;
  };

  struct GroupState {
    std::string name;
    std::vector<std::shared_ptr<MemberState>> members;
  };

  // An immutable routing epoch. Readers snapshot the shared_ptr under
  // a shared lock and work off the snapshot; ring changes install a
  // fresh table under the exclusive lock (the barriers).
  struct RoutingTable {
    uint64_t epoch = 1;
    std::vector<std::shared_ptr<GroupState>> groups;
    std::shared_ptr<const HashRing> ring;
    // Non-null only inside a rebalance window (between barrier 1 and
    // barrier 2): the table ingest routes by, and whose groups join
    // the query scatter.
    std::shared_ptr<const RoutingTable> next;
  };

  // Builds group states from a topology, reusing the per-member state
  // (breaker, counters, warn history) of any member name this router
  // has seen before.
  Result<std::vector<std::shared_ptr<GroupState>>> BuildGroups(
      std::vector<ReplicaGroup> groups);
  static std::shared_ptr<const HashRing> RingOf(
      const std::vector<std::shared_ptr<GroupState>>& groups,
      std::size_t ring_replicas);

  std::shared_ptr<const RoutingTable> Table() const;

  // One member's full query RPC: breaker gate, fault points, hedged
  // retries. On success the breaker records recovery.
  Result<ReportResult> QueryMember(MemberState& member,
                                   const QueryRequest& request);
  // One scatter leg: members in order, failing over past open breakers
  // and unreachable replicas; stamps merge.shard_name with the group
  // name so kDrillDown merges into the stable global order.
  Result<ReportResult> QueryGroup(const GroupState& group,
                                  const QueryRequest& request);
  Status IngestMember(MemberState& member,
                      const std::vector<IngestItem>& items,
                      JsonValue* health_out);
  void WarnUnreachable(MemberState* member, const Status& status);
  void WarnDivergent(const std::string& group, const std::string& detail);
  bool AcquireHedge();
  void ReleaseHedge();
  void AuditLoop();

  ShardRouterOptions opts_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;

  // Every member this router has ever routed to, by shard name; the
  // identity that survives ring changes.
  std::mutex members_mu_;
  std::map<std::string, std::shared_ptr<MemberState>> members_;

  // Guards table_. Query/ingest/audit hold it shared for their whole
  // operation; the rebalance barriers take it exclusive — barrier 2 is
  // exactly "no query or ingest in flight".
  mutable std::shared_mutex table_mu_;
  std::shared_ptr<const RoutingTable> table_;
  // Serializes whole ChangeRing invocations against each other.
  std::mutex change_mu_;

  ThreadPool pool_;
  std::atomic<int64_t> hedge_tokens_;

  // Rate-limit state for divergence warnings, by group name.
  std::mutex divergence_warn_mu_;
  std::map<std::string, int64_t> divergence_last_warn_ms_;

  Counter* hedges_;
  Counter* hedge_denied_;
  Counter* failovers_;
  Counter* partial_responses_;
  Counter* unavailable_responses_;
  Counter* rebalances_;
  Counter* rebalanced_docs_;
  Counter* export_page_retries_;
  Counter* audits_;
  Counter* repairs_;
  Counter* repaired_members_;
  Gauge* replica_divergence_;
  Histogram* scatter_latency_;
  Histogram* merge_latency_;
  Histogram* rebalance_latency_;

  // Background anti-entropy thread (anti_entropy_interval_ms > 0).
  std::mutex audit_stop_mu_;
  std::condition_variable audit_stop_cv_;
  bool audit_stop_ = false;
  std::thread audit_thread_;
};

}  // namespace bivoc

#endif  // BIVOC_CLUSTER_ROUTER_H_
