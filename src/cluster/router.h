#ifndef BIVOC_CLUSTER_ROUTER_H_
#define BIVOC_CLUSTER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/shard_handle.h"
#include "core/ingest.h"
#include "net/gateway.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace bivoc {

struct ShardRouterOptions {
  // --- per-shard query RPC policy (fed into util/retry.h) -----------
  int max_attempts = 2;
  int64_t initial_backoff_ms = 10;
  // Overall budget for one shard's answer, all attempts included. A
  // shard that cannot answer inside this window is reported missing
  // and the response becomes partial — the deadline is the honesty
  // boundary, not a hang.
  int64_t shard_deadline_ms = 2000;
  // Write-off for a single attempt: a hung RPC stops blocking the
  // retry schedule after this long (the attempt itself keeps running
  // detached and may still win).
  int64_t attempt_timeout_ms = 500;
  // Launch a concurrent hedge attempt when the newest one has not
  // answered after this long. 0 disables hedging.
  int64_t hedge_delay_ms = 150;
  // Cluster-wide cap on concurrently outstanding hedge attempts, so a
  // brown-out cannot double the fleet's load.
  int64_t hedge_budget = 4;

  // --- ingest RPC policy --------------------------------------------
  // Ingest retries sequentially and never hedges: replaying a batch
  // that may have half-applied is acceptable (ingest is add-only and
  // the WAL dedups on recovery), racing two copies of it is not.
  int ingest_max_attempts = 3;
  int64_t ingest_backoff_ms = 20;

  // Per-shard circuit breaker (core/ingest.h semantics).
  CircuitBreaker::Options breaker;

  // Scatter worker threads; 0 = one per shard (capped at 16).
  std::size_t scatter_threads = 0;

  // Virtual nodes per shard on the ingest ring.
  std::size_t ring_replicas = 64;

  // "shard unreachable" warnings are rate-limited per shard to one
  // per this interval; suppressed repeats are counted and reported in
  // the next emitted line (same pattern as the DLQ overflow warning).
  int64_t warn_interval_ms = 1000;

  // Retry-After hint attached to kUnavailable responses.
  int64_t retry_after_ms = 50;

  // Seed for the retry jitter schedule (reproducible tests).
  uint64_t seed = 0x5eedULL;
};

// Scatter-gather coordinator over N shards (DESIGN.md §12) and the
// cluster-mode GatewayBackend: put a Gateway in front of a ShardRouter
// and the wire surface of a cluster is byte-compatible with a single
// engine's, plus the honesty fields below.
//
//  * /v1/query fans out in shard mode (serve/query.h) under per-shard
//    deadlines, budgeted hedged retries and per-shard circuit
//    breakers, then merges exactly (serve/merge.h). The response
//    always carries "partial" and "missing_shards"; degraded answers
//    are first-class 200s, and only zero reachable shards is a 503.
//  * /v1/ingest consistent-hashes each item (first structured key,
//    else the payload) onto the ring so an entity's documents land on
//    one shard, then scatters the per-shard batches.
//  * /healthz probes every shard — bypassing breakers, so recovery is
//    observed rather than assumed — and reports a three-state verdict:
//    "ok" (all shards), "degraded" (some), "unavailable" (none, 503).
//  * /metrics renders the router registry: per-shard request/failure
//    counters, hedge counter, scatter/merge latency histograms and
//    partial-response counter, plus the gateway's route instruments.
//
// Fault points: every attempt of every shard RPC passes through
// "net.shard.send" and "net.shard.send:<shard-name>"; the merge step
// passes through "cluster.merge" (util/fault_injection.h).
//
// Thread-safe. The router owns its scatter pool and (optionally) its
// registry; shard handles are co-owned with any outstanding attempts.
class ShardRouter : public GatewayBackend {
 public:
  // `metrics` == nullptr gives the router a private registry.
  explicit ShardRouter(std::vector<std::shared_ptr<ShardHandle>> shards,
                       ShardRouterOptions options = {},
                       MetricsRegistry* metrics = nullptr);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // GatewayBackend:
  Result<JsonValue> ExecuteQuery(QueryRequest request) override;
  Result<JsonValue> ExecuteIngest(std::vector<IngestItem> items) override;
  HealthSnapshot Healthz() override;
  std::string MetricsText() override;
  MetricsRegistry* metrics() override { return metrics_; }
  int64_t retry_after_hint_ms() override { return opts_.retry_after_ms; }

  // --- introspection (tests, examples) ------------------------------
  std::size_t num_shards() const { return shards_.size(); }
  const std::string& shard_name(std::size_t shard) const {
    return shards_[shard]->handle->name();
  }
  CircuitBreaker* breaker(std::size_t shard) {
    return &shards_[shard]->breaker;
  }
  // Ring position an ingest item routes to.
  std::size_t ShardForItem(const IngestItem& item) const {
    return ring_.ShardFor(RouteKey(item));
  }
  // The routing key: the first structured key (the central entity —
  // paper §III's customer/center dimensions), else the payload.
  static std::string_view RouteKey(const IngestItem& item);

 private:
  struct ShardState {
    ShardState(std::shared_ptr<ShardHandle> h,
               const CircuitBreaker::Options& breaker_options)
        : handle(std::move(h)), breaker(breaker_options) {}

    std::shared_ptr<ShardHandle> handle;
    CircuitBreaker breaker;
    Counter* requests = nullptr;
    Counter* failures = nullptr;
    // Rate-limited "unreachable" warning state.
    std::mutex warn_mu;
    int64_t last_warn_ms = 0;
    bool ever_warned = false;
    std::size_t suppressed = 0;
  };

  // One shard's full query RPC: breaker gate, fault points, hedged
  // retries. On success the breaker records recovery.
  Result<ReportResult> QueryShard(std::size_t shard,
                                  const QueryRequest& request);
  Status IngestShard(std::size_t shard, const std::vector<IngestItem>& items,
                     JsonValue* health_out);
  void WarnUnreachable(ShardState* state, const Status& status);
  bool AcquireHedge();
  void ReleaseHedge();

  ShardRouterOptions opts_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  HashRing ring_;
  ThreadPool pool_;
  std::atomic<int64_t> hedge_tokens_;

  Counter* hedges_;
  Counter* hedge_denied_;
  Counter* partial_responses_;
  Counter* unavailable_responses_;
  Histogram* scatter_latency_;
  Histogram* merge_latency_;
};

}  // namespace bivoc

#endif  // BIVOC_CLUSTER_ROUTER_H_
