#ifndef BIVOC_CLUSTER_SHARD_HANDLE_H_
#define BIVOC_CLUSTER_SHARD_HANDLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/bivoc.h"
#include "net/http_client.h"
#include "net/json.h"
#include "net/wire.h"
#include "serve/query.h"
#include "util/result.h"

namespace bivoc {

// One shard as the router sees it: three operations, all deadline-
// bounded and all safe to call from any thread — including the
// Retrier's detached hedge attempts, which may still be running after
// the router has given up on them. Implementations therefore own (or
// co-own) everything an abandoned call touches.
class ShardHandle {
 public:
  virtual ~ShardHandle() = default;

  virtual const std::string& name() const = 0;

  // Evaluates a query on the shard. The router sends shard_mode
  // requests; the shard's own serving stack (validation, admission
  // control, cache) applies as usual.
  virtual Result<WireReport> Query(const QueryRequest& request) = 0;

  // Ingests a batch routed to this shard; returns the shard's
  // HealthReport JSON for that batch.
  virtual Result<JsonValue> Ingest(const std::vector<IngestItem>& items) = 0;

  // Health probe; returns the shard's /healthz JSON.
  virtual Result<JsonValue> Health() = 0;

  // Cluster control plane (POST /v1/admin/<action> — the engine-side
  // verbs of EngineAdmin in net/gateway.h): rebalance data plane
  // (export/stage/apply/abort/drop) and the anti-entropy "checksum".
  // Handles that serve no admin verbs keep the default.
  virtual Result<JsonValue> Admin(const std::string& action,
                                  const JsonValue& body) {
    (void)body;
    return Status::Unimplemented("shard " + name() +
                                 ": no admin action \"" + action + "\"");
  }
};

// In-process shard: a BivocEngine co-owned with every outstanding
// call, so an abandoned hedge attempt can never touch a dead engine.
// Used by the merge property tests, the cluster bench and the
// single-binary demo mode of examples/serve_cluster.
class LocalShardHandle : public ShardHandle {
 public:
  LocalShardHandle(std::string name, std::shared_ptr<BivocEngine> engine);

  const std::string& name() const override { return name_; }
  Result<WireReport> Query(const QueryRequest& request) override;
  Result<JsonValue> Ingest(const std::vector<IngestItem>& items) override;
  Result<JsonValue> Health() override;
  Result<JsonValue> Admin(const std::string& action,
                          const JsonValue& body) override;

  BivocEngine* engine() { return engine_.get(); }

 private:
  std::string name_;
  std::shared_ptr<BivocEngine> engine_;
};

struct HttpShardOptions {
  // Per-call transport budgets, kept tight: the Retrier above this
  // handle owns the generous budgets.
  int64_t connect_timeout_ms = 250;
  int64_t read_timeout_ms = 1000;
  int64_t send_timeout_ms = 1000;
};

// A shard reached over its gateway's HTTP surface. Connections are
// pooled: a call checks one out (or dials), and returns it only after
// a fully successful round trip — a connection that saw any error is
// dropped, never reused, so one poisoned socket cannot fail a later
// call. Thread-safe; concurrent calls simply use separate connections.
class HttpShardHandle : public ShardHandle {
 public:
  HttpShardHandle(std::string name, std::string host, uint16_t port,
                  HttpShardOptions options = {});

  const std::string& name() const override { return name_; }
  Result<WireReport> Query(const QueryRequest& request) override;
  Result<JsonValue> Ingest(const std::vector<IngestItem>& items) override;
  Result<JsonValue> Health() override;
  Result<JsonValue> Admin(const std::string& action,
                          const JsonValue& body) override;

  // Pooled idle connections (tests).
  std::size_t pooled_connections() const;

 private:
  std::unique_ptr<HttpClient> Checkout();
  void Return(std::unique_ptr<HttpClient> client);
  // Runs one HTTP exchange on a pooled connection and decodes the
  // JSON body; non-2xx maps through StatusCodeForHttp.
  Result<JsonValue> RoundTrip(const std::string& method,
                              const std::string& target, std::string body);

  std::string name_;
  std::string host_;
  uint16_t port_;
  HttpShardOptions opts_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<HttpClient>> pool_;
};

}  // namespace bivoc

#endif  // BIVOC_CLUSTER_SHARD_HANDLE_H_
