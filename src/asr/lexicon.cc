#include "asr/lexicon.h"

#include <cctype>

#include "util/logging.h"
#include "util/string_util.h"

namespace bivoc {

namespace {

struct ExceptionEntry {
  const char* word;
  const char* pron;  // space-separated ARPAbet labels
};

// Frequent English + call-center domain words whose rule pronunciation
// would be wrong or awkward. Everything else is rule-derived.
constexpr ExceptionEntry kExceptions[] = {
    {"the", "DH AX"},        {"a", "AX"},          {"an", "AE N"},
    {"to", "T UW"},          {"of", "AH V"},       {"and", "AE N D"},
    {"you", "Y UW"},         {"your", "Y AO R"},   {"i", "AY"},
    {"is", "IH Z"},          {"was", "W AH Z"},    {"are", "AA R"},
    {"we", "W IY"},          {"he", "HH IY"},      {"she", "SH IY"},
    {"they", "DH EY"},       {"be", "B IY"},       {"me", "M IY"},
    {"my", "M AY"},          {"do", "D UW"},       {"does", "D AH Z"},
    {"have", "HH AE V"},     {"has", "HH AE Z"},   {"one", "W AH N"},
    {"two", "T UW"},         {"who", "HH UW"},     {"what", "W AH T"},
    {"would", "W UH D"},     {"could", "K UH D"},  {"should", "SH UH D"},
    {"there", "DH EH R"},    {"their", "DH EH R"}, {"please", "P L IY Z"},
    {"thank", "TH AE NG K"}, {"thanks", "TH AE NG K S"},
    {"sure", "SH UH R"},     {"know", "N OW"},     {"like", "L AY K"},
    {"rate", "R EY T"},      {"rates", "R EY T S"},
    {"price", "P R AY S"},   {"money", "M AH N IY"},
    {"car", "K AA R"},       {"cars", "K AA R Z"},
    {"suv", "EH S Y UW V IY"},
    {"size", "S AY Z"},      {"full", "F UH L"},
    {"make", "M EY K"},      {"made", "M EY D"},
    {"give", "G IH V"},      {"gave", "G EY V"},
    {"have", "HH AE V"},     {"said", "S EH D"},
    {"day", "D EY"},         {"days", "D EY Z"},
    {"week", "W IY K"},      {"good", "G UH D"},
    {"great", "G R EY T"},   {"here", "HH IY R"},
    {"our", "AW R"},         {"hour", "AW R"},
    {"ok", "OW K EY"},       {"okay", "OW K EY"},
    {"yes", "Y EH S"},       {"no", "N OW"},
    {"name", "N EY M"},      {"phone", "F OW N"},
    {"number", "N AH M B ER"},
    {"credit", "K R EH D IH T"},
    {"card", "K AA R D"},    {"account", "AX K AW N T"},
    {"help", "HH EH L P"},   {"today", "T AX D EY"},
    {"discount", "D IH S K AW N T"},
    {"reserve", "R IH Z ER V"},
    {"reservation", "R EH Z ER V EY SH AX N"},
    {"book", "B UH K"},      {"booking", "B UH K IH NG"},
    {"pick", "P IH K"},      {"birth", "B ER TH"},
    {"date", "D EY T"},      {"dollars", "D AA L ER Z"},
    {"rupees", "R UW P IY Z"},
    {"service", "S ER V IH S"},
    {"bill", "B IH L"},      {"billing", "B IH L IH NG"},
    {"new", "N UW"},         {"york", "Y AO R K"},
    {"seattle", "S IY AE DX AX L"},
    {"boston", "B AO S T AX N"},
    {"chicago", "SH IH K AA G OW"},
    {"angeles", "AE N JH AX L AX S"},
    {"los", "L AO S"},       {"vegas", "V EY G AX S"},
    {"las", "L AA S"},       {"luxury", "L AH G ZH ER IY"},
    {"vehicle", "V IY IH K AX L"},
    {"wonderful", "W AH N D ER F AX L"},
};

constexpr const char* kDigitProns[10] = {
    "Z IY R OW",    // 0
    "W AH N",       // 1
    "T UW",         // 2
    "TH R IY",      // 3
    "F AO R",       // 4
    "F AY V",       // 5
    "S IH K S",     // 6
    "S EH V AX N",  // 7
    "EY T",         // 8
    "N AY N",       // 9
};

bool IsVowelLetter(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

}  // namespace

Lexicon::Lexicon() : set_(PhonemeSet::Instance()) {
  auto parse = [this](const char* pron) {
    std::vector<Phoneme> out;
    for (const auto& label : SplitWhitespace(pron)) {
      Phoneme p = set_.Parse(label);
      BIVOC_CHECK(p != kInvalidPhoneme) << "bad label " << label;
      out.push_back(p);
    }
    return out;
  };
  for (const auto& e : kExceptions) {
    exceptions_[e.word] = parse(e.pron);
  }
  digit_prons_.reserve(10);
  for (const char* d : kDigitProns) digit_prons_.push_back(parse(d));
}

std::vector<Phoneme> Lexicon::PronounceDigits(
    const std::string& digits) const {
  std::vector<Phoneme> out;
  for (char c : digits) {
    if (c >= '0' && c <= '9') {
      const auto& pron = digit_prons_[static_cast<std::size_t>(c - '0')];
      out.insert(out.end(), pron.begin(), pron.end());
    }
  }
  return out;
}

std::vector<Phoneme> Lexicon::ApplyRules(const std::string& word) const {
  // Letter-to-sound rules over a lowercase alphabetic string. Coverage
  // targets intelligibility, not phonological correctness: the channel
  // and decoder share this lexicon, so internal consistency is what
  // matters for the experiments.
  auto p = [this](const char* label) {
    Phoneme ph = set_.Parse(label);
    BIVOC_CHECK(ph != kInvalidPhoneme);
    return ph;
  };
  std::vector<Phoneme> out;
  const std::size_t n = word.size();
  std::size_t i = 0;
  while (i < n) {
    char c = word[i];
    char next = i + 1 < n ? word[i + 1] : '\0';
    char next2 = i + 2 < n ? word[i + 2] : '\0';
    bool at_end = i + 1 >= n;

    // Collapse doubled consonants ("oo"/"ee" handled as digraphs below).
    if (c == next && !IsVowelLetter(c)) {
      ++i;
      continue;
    }

    // Two-letter patterns.
    if (next != '\0') {
      std::size_t advance = 2;
      bool matched = true;
      if (c == 'c' && next == 'h') {
        out.push_back(p("CH"));
      } else if (c == 's' && next == 'h') {
        out.push_back(p("SH"));
      } else if (c == 't' && next == 'h') {
        out.push_back(p("TH"));
      } else if (c == 'p' && next == 'h') {
        out.push_back(p("F"));
      } else if (c == 'w' && next == 'h') {
        out.push_back(p("WH"));
      } else if (c == 'c' && next == 'k') {
        out.push_back(p("K"));
      } else if (c == 'n' && next == 'g' && i + 2 >= n) {
        out.push_back(p("NG"));
      } else if (c == 'q' && next == 'u') {
        out.push_back(p("K"));
        out.push_back(p("W"));
      } else if (c == 'g' && next == 'h') {
        // silent ("right", "though")
      } else if (c == 'e' && next == 'e') {
        out.push_back(p("IY"));
      } else if (c == 'e' && next == 'a') {
        out.push_back(p("IY"));
      } else if (c == 'o' && next == 'o') {
        out.push_back(p("UW"));
      } else if (c == 'a' && (next == 'i' || next == 'y')) {
        out.push_back(p("EY"));
      } else if (c == 'o' && next == 'a') {
        out.push_back(p("OW"));
      } else if (c == 'o' && (next == 'i' || next == 'y')) {
        out.push_back(p("OY"));
      } else if (c == 'o' && next == 'u') {
        out.push_back(p("AW"));
      } else if (c == 'o' && next == 'w') {
        out.push_back(p(at_end || i + 2 >= n ? "OW" : "AW"));
      } else if (c == 'a' && (next == 'u' || next == 'w')) {
        out.push_back(p("AO"));
      } else if (c == 'a' && next == 'r') {
        out.push_back(p("AA"));
        out.push_back(p("R"));
      } else if ((c == 'e' || c == 'i' || c == 'u') && next == 'r' &&
                 (i + 2 >= n || !IsVowelLetter(next2))) {
        out.push_back(p("ER"));
      } else if (c == 'o' && next == 'r') {
        out.push_back(p("AO"));
        out.push_back(p("R"));
      } else {
        matched = false;
      }
      if (matched) {
        i += advance;
        continue;
      }
    }

    // Single letters.
    switch (c) {
      case 'a':
        out.push_back(p("AE"));
        break;
      case 'b':
        out.push_back(p("B"));
        break;
      case 'c':
        out.push_back(p(next == 'e' || next == 'i' || next == 'y' ? "S"
                                                                  : "K"));
        break;
      case 'd':
        out.push_back(p("D"));
        break;
      case 'e':
        // Final e silent after a consonant in words of length > 2.
        if (at_end && n > 2 && !IsVowelLetter(word[i - 1])) break;
        out.push_back(p("EH"));
        break;
      case 'f':
        out.push_back(p("F"));
        break;
      case 'g':
        out.push_back(p(next == 'e' || next == 'i' || next == 'y' ? "JH"
                                                                  : "G"));
        break;
      case 'h':
        out.push_back(p("HH"));
        break;
      case 'i':
        out.push_back(p("IH"));
        break;
      case 'j':
        out.push_back(p("JH"));
        break;
      case 'k':
        out.push_back(p("K"));
        break;
      case 'l':
        out.push_back(p("L"));
        break;
      case 'm':
        out.push_back(p("M"));
        break;
      case 'n':
        out.push_back(p("N"));
        break;
      case 'o':
        out.push_back(p("AA"));
        break;
      case 'p':
        out.push_back(p("P"));
        break;
      case 'q':
        // Bare q (not in the "qu" digraph, e.g. "iraq", noisy input).
        out.push_back(p("K"));
        break;
      case 'r':
        out.push_back(p("R"));
        break;
      case 's':
        // s between vowels voices to Z ("visa", "reason").
        if (i > 0 && IsVowelLetter(word[i - 1]) && IsVowelLetter(next)) {
          out.push_back(p("Z"));
        } else {
          out.push_back(p("S"));
        }
        break;
      case 't':
        out.push_back(p("T"));
        break;
      case 'u':
        out.push_back(p("AH"));
        break;
      case 'v':
        out.push_back(p("V"));
        break;
      case 'w':
        out.push_back(p("W"));
        break;
      case 'x':
        out.push_back(p("K"));
        out.push_back(p("S"));
        break;
      case 'y':
        out.push_back(p(at_end ? "IY" : (i == 0 ? "Y" : "IH")));
        break;
      case 'z':
        out.push_back(p("Z"));
        break;
      default:
        break;  // non-alphabetic characters contribute nothing
    }
    ++i;
  }
  return out;
}

std::vector<Phoneme> Lexicon::Pronounce(const std::string& word) const {
  std::string lower = ToLowerCopy(word);
  auto it = exceptions_.find(lower);
  if (it != exceptions_.end()) return it->second;

  bool has_digit = false;
  bool has_alpha = false;
  for (char c : lower) {
    if (std::isdigit(static_cast<unsigned char>(c))) has_digit = true;
    if (std::isalpha(static_cast<unsigned char>(c))) has_alpha = true;
  }
  if (has_digit && !has_alpha) return PronounceDigits(lower);
  if (has_digit && has_alpha) {
    // "10000sms": digits then letters, segment-wise.
    std::vector<Phoneme> out;
    std::string run;
    bool run_is_digit = false;
    auto flush = [&] {
      if (run.empty()) return;
      auto part = run_is_digit ? PronounceDigits(run) : ApplyRules(run);
      out.insert(out.end(), part.begin(), part.end());
      run.clear();
    };
    for (char c : lower) {
      bool d = std::isdigit(static_cast<unsigned char>(c)) != 0;
      if (!run.empty() && d != run_is_digit) flush();
      run_is_digit = d;
      run += c;
    }
    flush();
    return out;
  }
  return ApplyRules(lower);
}

std::vector<std::vector<Phoneme>> Lexicon::PronounceAll(
    const std::vector<std::string>& words) const {
  std::vector<std::vector<Phoneme>> out;
  out.reserve(words.size());
  for (const auto& w : words) out.push_back(Pronounce(w));
  return out;
}

}  // namespace bivoc
