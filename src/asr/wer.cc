#include "asr/wer.h"

#include <algorithm>

#include "util/logging.h"

namespace bivoc {

std::vector<AlignedPair> AlignWords(const std::vector<std::string>& ref,
                                    const std::vector<std::string>& hyp) {
  const std::size_t n = ref.size();
  const std::size_t m = hyp.size();
  // Full DP table with backtrace (utterances are short).
  std::vector<std::vector<std::size_t>> d(n + 1,
                                          std::vector<std::size_t>(m + 1));
  for (std::size_t i = 0; i <= n; ++i) d[i][0] = i;
  for (std::size_t j = 0; j <= m; ++j) d[0][j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      std::size_t sub = d[i - 1][j - 1] + (ref[i - 1] == hyp[j - 1] ? 0 : 1);
      d[i][j] = std::min({sub, d[i - 1][j] + 1, d[i][j - 1] + 1});
    }
  }
  std::vector<AlignedPair> ops;
  std::size_t i = n, j = m;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        d[i][j] == d[i - 1][j - 1] + (ref[i - 1] == hyp[j - 1] ? 0u : 1u)) {
      AlignedPair p;
      p.op = ref[i - 1] == hyp[j - 1] ? EditOp::kMatch : EditOp::kSubstitute;
      p.ref_index = i - 1;
      p.hyp_index = j - 1;
      ops.push_back(p);
      --i;
      --j;
    } else if (i > 0 && d[i][j] == d[i - 1][j] + 1) {
      AlignedPair p;
      p.op = EditOp::kDelete;
      p.ref_index = i - 1;
      ops.push_back(p);
      --i;
    } else {
      AlignedPair p;
      p.op = EditOp::kInsert;
      p.hyp_index = j - 1;
      ops.push_back(p);
      --j;
    }
  }
  std::reverse(ops.begin(), ops.end());
  return ops;
}

void WerStats::Merge(const WerStats& other) {
  substitutions += other.substitutions;
  deletions += other.deletions;
  insertions += other.insertions;
  matches += other.matches;
  ref_words += other.ref_words;
}

WerStats ComputeWer(const std::vector<std::string>& ref,
                    const std::vector<std::string>& hyp) {
  WerStats stats;
  stats.ref_words = ref.size();
  for (const auto& op : AlignWords(ref, hyp)) {
    switch (op.op) {
      case EditOp::kMatch:
        ++stats.matches;
        break;
      case EditOp::kSubstitute:
        ++stats.substitutions;
        break;
      case EditOp::kDelete:
        ++stats.deletions;
        break;
      case EditOp::kInsert:
        ++stats.insertions;
        break;
    }
  }
  return stats;
}

std::map<std::string, WerStats> ComputeClassWer(
    const std::vector<std::string>& ref, const std::vector<std::string>& hyp,
    const std::vector<std::string>& ref_classes) {
  BIVOC_CHECK(ref.size() == ref_classes.size())
      << "one class label per reference word";
  std::map<std::string, WerStats> per_class;
  for (const auto& cls : ref_classes) {
    ++per_class[cls].ref_words;
  }
  std::size_t last_ref = 0;  // most recent reference index seen
  for (const auto& op : AlignWords(ref, hyp)) {
    switch (op.op) {
      case EditOp::kMatch:
        ++per_class[ref_classes[op.ref_index]].matches;
        last_ref = op.ref_index;
        break;
      case EditOp::kSubstitute:
        ++per_class[ref_classes[op.ref_index]].substitutions;
        last_ref = op.ref_index;
        break;
      case EditOp::kDelete:
        ++per_class[ref_classes[op.ref_index]].deletions;
        last_ref = op.ref_index;
        break;
      case EditOp::kInsert:
        if (!ref_classes.empty()) {
          ++per_class[ref_classes[last_ref]].insertions;
        }
        break;
    }
  }
  return per_class;
}

}  // namespace bivoc
