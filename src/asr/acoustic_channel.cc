#include "asr/acoustic_channel.h"

#include <cmath>

#include "util/logging.h"

namespace bivoc {

AcousticChannel::AcousticChannel(const Lexicon* lexicon, ChannelConfig config)
    : lexicon_(lexicon), config_(config), set_(PhonemeSet::Instance()) {
  BIVOC_CHECK(lexicon_ != nullptr);
  const std::size_t n = set_.size();
  confusion_.resize(n);
  const Phoneme sil = set_.Parse("SIL");
  for (std::size_t i = 0; i < n; ++i) {
    confusion_[i].assign(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (static_cast<Phoneme>(j) == sil) continue;  // SIL only via pauses
      double d = set_.Distance(static_cast<Phoneme>(i),
                               static_cast<Phoneme>(j));
      confusion_[i][j] = std::exp(-d / config_.confusion_temperature);
    }
  }
}

std::vector<double> AcousticChannel::ConfusionWeights(Phoneme p) const {
  BIVOC_CHECK(p >= 0 && static_cast<std::size_t>(p) < confusion_.size());
  return confusion_[p];
}

Phoneme AcousticChannel::SampleSubstitute(Phoneme p, Rng* rng) const {
  return static_cast<Phoneme>(rng->WeightedIndex(confusion_[p]));
}

AcousticObservation AcousticChannel::Transmit(
    const std::vector<std::string>& words, Rng* rng) const {
  const double level = config_.noise_level;
  const double p_sub = config_.substitution_rate * level;
  const double p_del = config_.deletion_rate * level;
  const double p_ins = config_.insertion_rate * level;
  const Phoneme sil = set_.Parse("SIL");

  AcousticObservation obs;
  std::vector<Phoneme> clean;
  for (std::size_t w = 0; w < words.size(); ++w) {
    auto pron = lexicon_->Pronounce(words[w]);
    clean.insert(clean.end(), pron.begin(), pron.end());
    if (w + 1 < words.size() && rng->Bernoulli(config_.pause_prob * level)) {
      clean.push_back(sil);
    }
  }
  obs.clean_length = clean.size();

  // Per-phoneme independent corruption.
  for (Phoneme p : clean) {
    if (p != sil && rng->Bernoulli(p_del)) {
      ++obs.deletions;
      continue;
    }
    if (p != sil && rng->Bernoulli(p_sub)) {
      obs.phonemes.push_back(SampleSubstitute(p, rng));
      ++obs.substitutions;
    } else {
      obs.phonemes.push_back(p);
    }
    if (rng->Bernoulli(p_ins)) {
      // Insertions echo a confusable of the current phoneme (key
      // strokes / false starts produce acoustically similar junk).
      obs.phonemes.push_back(SampleSubstitute(p, rng));
      ++obs.insertions;
    }
  }

  // Burst corruption: one contiguous garbled run per affected utterance
  // (cross-talk, hold music).
  if (!obs.phonemes.empty() &&
      rng->Bernoulli(config_.burst_prob * level)) {
    std::size_t len = static_cast<std::size_t>(
        rng->Uniform(2, std::max(2, config_.burst_max_len)));
    std::size_t start = static_cast<std::size_t>(rng->Uniform(
        0, static_cast<int64_t>(obs.phonemes.size()) - 1));
    for (std::size_t i = start;
         i < std::min(obs.phonemes.size(), start + len); ++i) {
      Phoneme original = obs.phonemes[i];
      if (original == sil) continue;
      obs.phonemes[i] = SampleSubstitute(original, rng);
      ++obs.substitutions;
    }
  }
  return obs;
}

}  // namespace bivoc
