#ifndef BIVOC_ASR_TRANSCRIBER_H_
#define BIVOC_ASR_TRANSCRIBER_H_

#include <memory>
#include <string>
#include <vector>

#include "asr/acoustic_channel.h"
#include "asr/decoder.h"
#include "asr/lexicon.h"
#include "text/ngram_model.h"
#include "util/random.h"

namespace bivoc {

// End-to-end ASR facade: reference utterance -> acoustic channel ->
// first-pass decode, with an optional entity-constrained second pass.
// Owns the lexicon, the channel, the interpolated LM (general +
// in-domain, as the paper's LM is built) and the full vocabulary.
class Transcriber {
 public:
  struct Options {
    ChannelConfig channel;
    DecoderConfig decoder;
    double domain_lm_weight = 0.8;
  };

  explicit Transcriber(Options options);

  // Trains the two LM components. Call once before transcribing.
  void TrainLm(const std::vector<std::vector<std::string>>& general_corpus,
               const std::vector<std::vector<std::string>>& domain_corpus);

  // Vocabulary registration (deduplicated). Call before Freeze().
  void AddWords(const std::vector<std::string>& words, WordClass cls);

  // Builds retrieval structures; required before Transcribe.
  void Freeze();

  struct Transcript {
    AcousticObservation observation;
    DecodeResult first_pass;
  };

  // Runs channel + first-pass decode on one utterance.
  Transcript Transcribe(const std::vector<std::string>& reference,
                        Rng* rng) const;

  // Re-decodes an existing observation against a name vocabulary
  // restricted to `allowed_names` (paper §IV-A "Improvements": the
  // top-N identities retrieved from the structured database).
  DecodeResult SecondPass(const AcousticObservation& observation,
                          const std::vector<std::string>& allowed_names) const;

  const Lexicon& lexicon() const { return lexicon_; }
  const AcousticChannel& channel() const { return *channel_; }
  const DecoderVocabulary& vocabulary() const { return vocab_; }
  const InterpolatedLm& lm() const { return *lm_; }

 private:
  Decoder::LmScore MakeLmScore() const;

  Options options_;
  Lexicon lexicon_;
  std::unique_ptr<AcousticChannel> channel_;
  NgramModel general_lm_{2};
  NgramModel domain_lm_{2};
  std::unique_ptr<InterpolatedLm> lm_;
  DecoderVocabulary vocab_;
  std::unique_ptr<Decoder> decoder_;
};

}  // namespace bivoc

#endif  // BIVOC_ASR_TRANSCRIBER_H_
