#ifndef BIVOC_ASR_PHONEME_H_
#define BIVOC_ASR_PHONEME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bivoc {

// A phoneme id into the inventory below. kInvalidPhoneme means "no such
// phoneme" (lookup failure).
using Phoneme = int16_t;
constexpr Phoneme kInvalidPhoneme = -1;

enum class PhonemeClass : uint8_t {
  kVowel,
  kStop,
  kFricative,
  kAffricate,
  kNasal,
  kLiquid,
  kGlide,
};

enum class Place : uint8_t {
  kNone,  // vowels
  kBilabial,
  kLabiodental,
  kDental,
  kAlveolar,
  kPostalveolar,
  kPalatal,
  kVelar,
  kGlottal,
};

struct PhonemeInfo {
  const char* name;       // ARPAbet-style label
  PhonemeClass cls;
  Place place;
  bool voiced;
  // Vowel articulation on coarse 0..2 grids (unused for consonants).
  uint8_t height;    // 0 high, 1 mid, 2 low
  uint8_t backness;  // 0 front, 1 central, 2 back
  bool rounded;
  bool diphthong;
};

// The 54-phoneme US-English-like inventory used throughout the ASR
// substrate (the paper's system uses a US English set of size 54). Ids
// are stable indices into this table.
class PhonemeSet {
 public:
  // Global immutable instance.
  static const PhonemeSet& Instance();

  std::size_t size() const;

  const PhonemeInfo& info(Phoneme p) const;
  std::string_view name(Phoneme p) const;

  // Id for an ARPAbet label, or kInvalidPhoneme.
  Phoneme Parse(std::string_view name) const;

  // Articulatory distance in [0, 1]: 0 identical, 1 maximally distinct.
  // Drives both the channel's confusion sampling (near phonemes are
  // substituted for each other) and the decoder's substitution costs —
  // the decoder knows the physics of the channel but not its draws.
  double Distance(Phoneme a, Phoneme b) const;

  // Phonemes sorted by ascending distance from p (excluding p itself).
  std::vector<Phoneme> Neighbors(Phoneme p) const;

  bool IsVowel(Phoneme p) const {
    return info(p).cls == PhonemeClass::kVowel;
  }

  // Renders a pronunciation like "K AE T".
  std::string ToString(const std::vector<Phoneme>& pron) const;

 private:
  PhonemeSet();
  std::vector<double> distance_;  // size() * size() matrix
};

}  // namespace bivoc

#endif  // BIVOC_ASR_PHONEME_H_
