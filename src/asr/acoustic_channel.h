#ifndef BIVOC_ASR_ACOUSTIC_CHANNEL_H_
#define BIVOC_ASR_ACOUSTIC_CHANNEL_H_

#include <string>
#include <vector>

#include "asr/lexicon.h"
#include "asr/phoneme.h"
#include "util/random.h"

namespace bivoc {

// Configuration of the simulated acoustic/telephony channel. The knobs
// mirror the noise sources the paper enumerates for call-center speech:
// cross-talk, key strokes, breathing, long silences, hold music, channel
// differences (landline / mobile / VOIP), and speaker agitation. All of
// them reduce, in our model, to phoneme-level confusion, deletion and
// insertion events plus burst corruption.
struct ChannelConfig {
  // Base per-phoneme event probabilities at noise_level == 1.0.
  double substitution_rate = 0.18;
  double deletion_rate = 0.06;
  double insertion_rate = 0.05;
  // Global severity multiplier; 0 = clean channel.
  double noise_level = 1.0;
  // Probability per utterance of a cross-talk / hold-music burst that
  // garbles a short contiguous run of phonemes.
  double burst_prob = 0.15;
  int burst_max_len = 6;
  // Probability of injecting a SIL phoneme between words (long pauses).
  double pause_prob = 0.04;
  // Softmax temperature for choosing a substitute: low temperature
  // concentrates on articulatorily close phonemes.
  double confusion_temperature = 0.12;
};

// The observation the "front end" hands to the decoder: a flat noisy
// phoneme sequence with no word boundaries (boundaries are what the
// decoder has to recover), plus bookkeeping for diagnostics.
struct AcousticObservation {
  std::vector<Phoneme> phonemes;
  std::size_t clean_length = 0;   // phonemes before corruption
  std::size_t substitutions = 0;
  std::size_t deletions = 0;
  std::size_t insertions = 0;
};

// Generative noisy channel: reference words -> pronunciations ->
// corrupted phoneme stream. Deterministic given the Rng.
class AcousticChannel {
 public:
  AcousticChannel(const Lexicon* lexicon, ChannelConfig config);

  // Corrupts one utterance. `rng` is caller-owned so corpora are
  // reproducible and parallelizable (one Rng per utterance).
  AcousticObservation Transmit(const std::vector<std::string>& words,
                               Rng* rng) const;

  // The channel's phoneme confusion distribution: probability weights
  // over substitutes for `p` (excluding p). Exposed so the decoder's
  // acoustic model can share the channel physics (but not its draws).
  std::vector<double> ConfusionWeights(Phoneme p) const;

  const ChannelConfig& config() const { return config_; }

 private:
  Phoneme SampleSubstitute(Phoneme p, Rng* rng) const;

  const Lexicon* lexicon_;  // not owned
  ChannelConfig config_;
  const PhonemeSet& set_;
  // Precomputed per-phoneme substitute weights (size x size).
  std::vector<std::vector<double>> confusion_;
};

}  // namespace bivoc

#endif  // BIVOC_ASR_ACOUSTIC_CHANNEL_H_
