#ifndef BIVOC_ASR_LEXICON_H_
#define BIVOC_ASR_LEXICON_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "asr/phoneme.h"

namespace bivoc {

// Grapheme-to-phoneme lexicon. Frequent words come from an embedded
// exception dictionary; everything else (names, cities, domain words —
// the synthetic vocabulary is open) goes through rule-based letter-to-
// sound conversion, so every word the generators can produce has a
// pronunciation. Digit strings are pronounced digit-by-digit, which is
// how the channel corrupts phone numbers ("six" -> "fix" style errors
// are what partial number recognition looks like downstream).
class Lexicon {
 public:
  Lexicon();

  // Pronunciation of one lowercase word. Never empty for input that
  // contains at least one ASCII letter or digit.
  std::vector<Phoneme> Pronounce(const std::string& word) const;

  // Pronunciations for a tokenized sentence, one entry per word.
  std::vector<std::vector<Phoneme>> PronounceAll(
      const std::vector<std::string>& words) const;

  // True if the word is in the exception dictionary (vs rule-derived).
  bool IsException(const std::string& word) const {
    return exceptions_.count(word) > 0;
  }

  std::size_t num_exceptions() const { return exceptions_.size(); }

 private:
  std::vector<Phoneme> ApplyRules(const std::string& word) const;
  std::vector<Phoneme> PronounceDigits(const std::string& digits) const;

  const PhonemeSet& set_;
  std::unordered_map<std::string, std::vector<Phoneme>> exceptions_;
  std::vector<std::vector<Phoneme>> digit_prons_;  // "zero".."nine"
};

}  // namespace bivoc

#endif  // BIVOC_ASR_LEXICON_H_
