#ifndef BIVOC_ASR_KEYWORD_SPOTTER_H_
#define BIVOC_ASR_KEYWORD_SPOTTER_H_

#include <string>
#include <vector>

#include "asr/acoustic_channel.h"
#include "asr/lexicon.h"
#include "asr/phoneme.h"

namespace bivoc {

// Phonetic keyword spotting over noisy phoneme streams — the technology
// the paper attributes to contact-center tools like NICE/VERINT ("they
// also use word spotting technologies to index audio conversations").
// Instead of full LVCSR decoding, each registered keyword/phrase is
// slid across the observation and reported wherever its pronunciation
// aligns within a normalized edit-cost threshold.
//
// Spotting is much cheaper than decoding but blind to context; the
// linking-ablation bench quantifies that trade-off against the full
// decoder on the same corpus.
class KeywordSpotter {
 public:
  struct Options {
    // Maximum per-phoneme alignment cost for a hit (lower = stricter).
    double max_cost_per_phoneme = 0.55;
    // Substitution cost scale over articulatory distance; insertions/
    // deletions cost ins_del_cost each.
    double sub_cost_scale = 2.0;
    double ins_del_cost = 1.0;
  };

  // (Two constructors instead of a defaulted Options argument: nested
  // aggregates with member initializers cannot be brace-defaulted
  // inside their own enclosing class.)
  explicit KeywordSpotter(const Lexicon* lexicon);
  KeywordSpotter(const Lexicon* lexicon, Options options);

  // Registers a keyword or multi-word phrase under a label. Returns the
  // keyword id.
  std::size_t AddKeyword(const std::string& phrase,
                         const std::string& label);

  struct Hit {
    std::size_t keyword = 0;   // id from AddKeyword
    std::string label;
    std::string phrase;
    std::size_t begin = 0;     // phoneme span in the observation
    std::size_t end = 0;
    double cost_per_phoneme = 0.0;  // normalized alignment cost
  };

  // All non-overlapping hits (per keyword) in the observation, best
  // (lowest-cost) alignment first within each keyword.
  std::vector<Hit> Spot(const std::vector<Phoneme>& observation) const;

  std::vector<Hit> Spot(const AcousticObservation& observation) const {
    return Spot(observation.phonemes);
  }

  // True if any registered keyword with this label hits.
  bool Contains(const std::vector<Phoneme>& observation,
                const std::string& label) const;

  std::size_t num_keywords() const { return keywords_.size(); }

 private:
  struct Keyword {
    std::string phrase;
    std::string label;
    std::vector<Phoneme> pron;
  };

  const Lexicon* lexicon_;  // not owned
  Options options_;
  const PhonemeSet& set_;
  std::vector<Keyword> keywords_;
};

}  // namespace bivoc

#endif  // BIVOC_ASR_KEYWORD_SPOTTER_H_
