#include "asr/decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "text/edit_distance.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace bivoc {

std::string_view WordClassName(WordClass cls) {
  switch (cls) {
    case WordClass::kGeneral:
      return "general";
    case WordClass::kName:
      return "name";
    case WordClass::kNumber:
      return "number";
  }
  return "general";
}

namespace {
// First-phoneme compatibility threshold for candidate retrieval. Wide
// enough that a substituted initial phoneme still retrieves the word,
// narrow enough to keep buckets small.
constexpr double kFirstPhonemeRadius = 0.35;
}  // namespace

DecoderVocabulary::DecoderVocabulary(const Lexicon* lexicon)
    : lexicon_(lexicon) {
  BIVOC_CHECK(lexicon_ != nullptr);
}

void DecoderVocabulary::Add(const std::string& word, WordClass cls) {
  BIVOC_CHECK(!frozen_) << "Add after Freeze";
  std::string lower = ToLowerCopy(word);
  if (lower.empty() || index_.count(lower) > 0) return;
  VocabEntry entry;
  entry.word = lower;
  entry.cls = cls;
  entry.pron = lexicon_->Pronounce(lower);
  if (entry.pron.empty()) return;
  index_.emplace(lower, entries_.size());
  entries_.push_back(std::move(entry));
}

void DecoderVocabulary::AddAll(const std::vector<std::string>& words,
                               WordClass cls) {
  for (const auto& w : words) Add(w, cls);
}

void DecoderVocabulary::Freeze() {
  const PhonemeSet& set = PhonemeSet::Instance();
  buckets_.assign(set.size(), {});
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Phoneme first = entries_[i].pron.front();
    for (std::size_t q = 0; q < set.size(); ++q) {
      if (set.Distance(static_cast<Phoneme>(q), first) <=
          kFirstPhonemeRadius) {
        buckets_[q].push_back(i);
      }
    }
  }
  frozen_ = true;
}

DecoderVocabulary DecoderVocabulary::RestrictNames(
    const std::vector<std::string>& allowed_names) const {
  DecoderVocabulary out(lexicon_);
  for (const auto& e : entries_) {
    if (e.cls != WordClass::kName) out.Add(e.word, e.cls);
  }
  out.AddAll(allowed_names, WordClass::kName);
  out.Freeze();
  return out;
}

const std::vector<std::size_t>& DecoderVocabulary::CandidatesByFirstPhoneme(
    Phoneme observed) const {
  BIVOC_CHECK(frozen_) << "vocabulary not frozen";
  BIVOC_CHECK(observed >= 0 &&
              static_cast<std::size_t>(observed) < buckets_.size());
  return buckets_[observed];
}

std::vector<std::string> DecodeResult::Words() const {
  std::vector<std::string> out;
  out.reserve(words.size());
  for (const auto& w : words) out.push_back(w.word);
  return out;
}

std::string DecodeResult::Text() const { return Join(Words(), " "); }

Decoder::Decoder(const DecoderVocabulary* vocab, LmScore lm,
                 DecoderConfig config)
    : vocab_(vocab),
      lm_(std::move(lm)),
      config_(config),
      set_(PhonemeSet::Instance()) {
  BIVOC_CHECK(vocab_ != nullptr);
  BIVOC_CHECK(vocab_->frozen()) << "decoder requires a frozen vocabulary";
  BIVOC_CHECK(lm_ != nullptr);
}

std::vector<Decoder::Candidate> Decoder::CandidatesAt(
    const std::vector<Phoneme>& obs, std::size_t pos) const {
  std::vector<Candidate> out;
  const std::size_t remaining = obs.size() - pos;
  auto sub_cost = [this](Phoneme a, Phoneme b) {
    return config_.sub_cost_scale * set_.Distance(a, b);
  };

  const auto& bucket = vocab_->CandidatesByFirstPhoneme(obs[pos]);
  // Also retrieve by the next observed phoneme so an inserted junk
  // phoneme or deleted word-initial phoneme does not hide the word.
  const std::vector<std::size_t>* bucket2 = nullptr;
  if (pos + 1 < obs.size()) {
    bucket2 = &vocab_->CandidatesByFirstPhoneme(obs[pos + 1]);
  }

  auto consider = [&](std::size_t entry_idx) {
    const VocabEntry& e = vocab_->entries()[entry_idx];
    const std::size_t len = e.pron.size();
    int slack = config_.span_slack;
    std::size_t span_lo =
        len > static_cast<std::size_t>(slack) ? len - slack : 1;
    std::size_t span_hi =
        std::min(remaining, len + static_cast<std::size_t>(slack));
    if (span_lo > span_hi) return;
    // One DP aligns the pronunciation against the longest window and
    // yields costs for every candidate span end at once.
    std::vector<Phoneme> window(
        obs.begin() + static_cast<long>(pos),
        obs.begin() + static_cast<long>(pos + span_hi));
    std::vector<double> costs = WeightedEditDistanceAllPrefixes(
        e.pron, window, config_.ins_del_cost, config_.ins_del_cost,
        sub_cost, static_cast<std::size_t>(slack) + 1);
    for (std::size_t span = span_lo; span <= span_hi; ++span) {
      double cost = costs[span];
      if (!std::isfinite(cost)) continue;
      out.push_back(Candidate{entry_idx, pos + span, -cost});
    }
  };

  // Deduplicate entries across the two buckets.
  if (bucket2 == nullptr || bucket2 == &bucket) {
    for (std::size_t idx : bucket) consider(idx);
  } else {
    std::vector<std::size_t> merged;
    merged.reserve(bucket.size() + bucket2->size());
    merged.insert(merged.end(), bucket.begin(), bucket.end());
    merged.insert(merged.end(), bucket2->begin(), bucket2->end());
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    for (std::size_t idx : merged) consider(idx);
  }

  // Keep only the acoustically strongest (word, span) pairs.
  if (out.size() > config_.candidates_per_position) {
    std::partial_sort(out.begin(),
                      out.begin() + static_cast<long>(
                                        config_.candidates_per_position),
                      out.end(), [](const Candidate& a, const Candidate& b) {
                        return a.acoustic > b.acoustic;
                      });
    out.resize(config_.candidates_per_position);
  }
  return out;
}

DecodeResult Decoder::Decode(const AcousticObservation& observation) const {
  const std::vector<Phoneme>& obs = observation.phonemes;
  DecodeResult result;
  if (obs.empty()) return result;
  const std::size_t n = obs.size();
  const Phoneme sil = set_.Parse("SIL");

  // Hypothesis: best score of reaching position i with `last` as the
  // previous emitted word ("<s>" initially). Backpointers reconstruct
  // the word sequence.
  struct Hyp {
    double score = -std::numeric_limits<double>::infinity();
    std::string last = "<s>";
    // Back reference: position and hypothesis slot we came from, plus
    // the emitted word entry (SIZE_MAX for skips).
    std::size_t prev_pos = 0;
    std::size_t prev_slot = 0;
    std::size_t entry = SIZE_MAX;
    double acoustic = 0.0;
  };

  std::vector<std::vector<Hyp>> beams(n + 1);
  beams[0].push_back(Hyp{0.0, "<s>", 0, 0, SIZE_MAX, 0.0});

  auto push_hyp = [&](std::size_t pos, Hyp hyp) {
    auto& beam = beams[pos];
    // Replace an existing hypothesis with the same history word if
    // weaker; otherwise insert, keeping the beam bounded.
    for (auto& h : beam) {
      if (h.last == hyp.last) {
        if (hyp.score > h.score) h = std::move(hyp);
        return;
      }
    }
    beam.push_back(std::move(hyp));
    if (beam.size() > config_.hypotheses_per_position * 2) {
      std::sort(beam.begin(), beam.end(), [](const Hyp& a, const Hyp& b) {
        return a.score > b.score;
      });
      beam.resize(config_.hypotheses_per_position);
    }
  };

  for (std::size_t pos = 0; pos < n; ++pos) {
    auto& beam = beams[pos];
    if (beam.empty()) continue;
    std::sort(beam.begin(), beam.end(), [](const Hyp& a, const Hyp& b) {
      return a.score > b.score;
    });
    if (beam.size() > config_.hypotheses_per_position) {
      beam.resize(config_.hypotheses_per_position);
    }

    // Skip transition (junk phoneme / silence).
    double skip_cost =
        obs[pos] == sil ? config_.sil_skip_cost : config_.junk_skip_cost;
    for (std::size_t slot = 0; slot < beam.size(); ++slot) {
      const Hyp& h = beam[slot];
      Hyp next;
      next.score = h.score - skip_cost;
      next.last = h.last;
      next.prev_pos = pos;
      next.prev_slot = slot;
      next.entry = SIZE_MAX;
      push_hyp(pos + 1, std::move(next));
    }

    // Word emissions.
    auto candidates = CandidatesAt(obs, pos);
    for (const Candidate& cand : candidates) {
      const VocabEntry& entry = vocab_->entries()[cand.entry];
      for (std::size_t slot = 0; slot < beam.size(); ++slot) {
        const Hyp& h = beam[slot];
        double score = h.score +
                       config_.acoustic_weight * cand.acoustic +
                       config_.lm_weight * lm_(h.last, entry.word) -
                       config_.word_insertion_penalty;
        Hyp next;
        next.score = score;
        next.last = entry.word;
        next.prev_pos = pos;
        next.prev_slot = slot;
        next.entry = cand.entry;
        next.acoustic = cand.acoustic;
        push_hyp(cand.end, std::move(next));
      }
    }
  }

  // Pick the best terminal hypothesis (with sentence-end LM bonus).
  auto& final_beam = beams[n];
  if (final_beam.empty()) return result;
  std::size_t best_slot = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t slot = 0; slot < final_beam.size(); ++slot) {
    double s = final_beam[slot].score +
               config_.lm_weight * lm_(final_beam[slot].last, "</s>");
    if (s > best_score) {
      best_score = s;
      best_slot = slot;
    }
  }

  // Backtrace. Beams were possibly re-sorted after push; backpointers
  // refer to (position, slot) at push time — to keep them stable we
  // must not have reordered earlier beams after pushing from them.
  // Earlier beams are only sorted when first expanded (before pushes
  // out of them), and never touched again, so slots remain valid.
  std::vector<DecodedWord> reversed;
  std::size_t pos = n;
  std::size_t slot = best_slot;
  while (pos > 0) {
    const Hyp& h = beams[pos][slot];
    if (h.entry != SIZE_MAX) {
      const VocabEntry& e = vocab_->entries()[h.entry];
      DecodedWord w;
      w.word = e.word;
      w.cls = e.cls;
      w.acoustic_score = h.acoustic;
      reversed.push_back(std::move(w));
    }
    std::size_t ppos = h.prev_pos;
    std::size_t pslot = h.prev_slot;
    pos = ppos;
    slot = pslot;
  }
  result.words.assign(reversed.rbegin(), reversed.rend());
  result.total_score = best_score;
  return result;
}

}  // namespace bivoc
