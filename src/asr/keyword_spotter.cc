#include "asr/keyword_spotter.h"

#include <algorithm>
#include <cmath>

#include "text/edit_distance.h"
#include "text/tokenizer.h"
#include "util/logging.h"

namespace bivoc {

KeywordSpotter::KeywordSpotter(const Lexicon* lexicon)
    : KeywordSpotter(lexicon, Options()) {}

KeywordSpotter::KeywordSpotter(const Lexicon* lexicon, Options options)
    : lexicon_(lexicon), options_(options), set_(PhonemeSet::Instance()) {
  BIVOC_CHECK(lexicon_ != nullptr);
}

std::size_t KeywordSpotter::AddKeyword(const std::string& phrase,
                                       const std::string& label) {
  Keyword kw;
  kw.phrase = phrase;
  kw.label = label;
  for (const auto& word : TokenizeWords(phrase)) {
    auto pron = lexicon_->Pronounce(word);
    kw.pron.insert(kw.pron.end(), pron.begin(), pron.end());
  }
  BIVOC_CHECK(!kw.pron.empty()) << "unpronounceable keyword: " << phrase;
  keywords_.push_back(std::move(kw));
  return keywords_.size() - 1;
}

std::vector<KeywordSpotter::Hit> KeywordSpotter::Spot(
    const std::vector<Phoneme>& observation) const {
  std::vector<Hit> hits;
  auto sub_cost = [this](Phoneme a, Phoneme b) {
    return options_.sub_cost_scale * set_.Distance(a, b);
  };

  for (std::size_t k = 0; k < keywords_.size(); ++k) {
    const Keyword& kw = keywords_[k];
    const std::size_t len = kw.pron.size();
    if (observation.size() + 2 < len) continue;
    const std::size_t slack = std::max<std::size_t>(2, len / 3);
    const double budget =
        options_.max_cost_per_phoneme * static_cast<double>(len);

    // Candidate hits at every start; later pruned to non-overlapping.
    std::vector<Hit> raw;
    for (std::size_t start = 0; start < observation.size(); ++start) {
      std::size_t window_len =
          std::min(observation.size() - start, len + slack);
      if (window_len + slack < len) break;
      std::vector<Phoneme> window(
          observation.begin() + static_cast<long>(start),
          observation.begin() + static_cast<long>(start + window_len));
      auto costs = WeightedEditDistanceAllPrefixes(
          kw.pron, window, options_.ins_del_cost, options_.ins_del_cost,
          sub_cost, slack + 1);
      // Best span end for this start.
      double best = budget + 1.0;
      std::size_t best_end = start;
      std::size_t lo = len > slack ? len - slack : 1;
      for (std::size_t span = lo; span <= window_len; ++span) {
        if (std::isfinite(costs[span]) && costs[span] < best) {
          best = costs[span];
          best_end = start + span;
        }
      }
      if (best <= budget) {
        Hit h;
        h.keyword = k;
        h.label = kw.label;
        h.phrase = kw.phrase;
        h.begin = start;
        h.end = best_end;
        h.cost_per_phoneme = best / static_cast<double>(len);
        raw.push_back(std::move(h));
      }
    }
    // Greedy non-overlap selection, best cost first.
    std::sort(raw.begin(), raw.end(), [](const Hit& a, const Hit& b) {
      return a.cost_per_phoneme < b.cost_per_phoneme;
    });
    std::vector<std::pair<std::size_t, std::size_t>> taken;
    for (auto& h : raw) {
      bool overlaps = false;
      for (const auto& [b, e] : taken) {
        if (h.begin < e && b < h.end) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) continue;
      taken.emplace_back(h.begin, h.end);
      hits.push_back(std::move(h));
    }
  }
  return hits;
}

bool KeywordSpotter::Contains(const std::vector<Phoneme>& observation,
                              const std::string& label) const {
  for (const auto& hit : Spot(observation)) {
    if (hit.label == label) return true;
  }
  return false;
}

}  // namespace bivoc
