#ifndef BIVOC_ASR_WER_H_
#define BIVOC_ASR_WER_H_

#include <map>
#include <string>
#include <vector>

namespace bivoc {

// Word-level alignment operations between a reference and a hypothesis.
enum class EditOp { kMatch, kSubstitute, kDelete, kInsert };

struct AlignedPair {
  EditOp op;
  // Index into the reference (valid unless op == kInsert) and the
  // hypothesis (valid unless op == kDelete).
  std::size_t ref_index = 0;
  std::size_t hyp_index = 0;
};

// Minimum-edit alignment of hypothesis words against reference words.
std::vector<AlignedPair> AlignWords(const std::vector<std::string>& ref,
                                    const std::vector<std::string>& hyp);

// WER bookkeeping, Eqn 1 of the paper: (S + D + I) / N.
struct WerStats {
  std::size_t substitutions = 0;
  std::size_t deletions = 0;
  std::size_t insertions = 0;
  std::size_t matches = 0;
  std::size_t ref_words = 0;

  double Wer() const {
    if (ref_words == 0) return 0.0;
    return static_cast<double>(substitutions + deletions + insertions) /
           static_cast<double>(ref_words);
  }

  void Merge(const WerStats& other);
};

WerStats ComputeWer(const std::vector<std::string>& ref,
                    const std::vector<std::string>& hyp);

// Per-class WER (Table I rows "Names" and "Numbers"): `ref_classes[i]`
// labels reference word i; errors are charged to the class of the
// reference word (insertions to the class of the preceding reference
// word, sentence-initial insertions to the first word's class).
std::map<std::string, WerStats> ComputeClassWer(
    const std::vector<std::string>& ref, const std::vector<std::string>& hyp,
    const std::vector<std::string>& ref_classes);

}  // namespace bivoc

#endif  // BIVOC_ASR_WER_H_
