#include "asr/phoneme.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace bivoc {

namespace {

// 54-entry inventory: 20 vowels (incl. reduced/schwa variants), 8 stops,
// 3 affricates, 10 fricatives, 6 nasals, 3 liquids, 3 glides, 1 silence.
// Silence is a first-class symbol because the channel injects it for
// holds/long pauses and the decoder must be able to skip it.
constexpr PhonemeInfo kInventory[] = {
    // name, class, place, voiced, height, backness, rounded, diphthong
    {"AA", PhonemeClass::kVowel, Place::kNone, true, 2, 2, false, false},
    {"AE", PhonemeClass::kVowel, Place::kNone, true, 2, 0, false, false},
    {"AH", PhonemeClass::kVowel, Place::kNone, true, 1, 1, false, false},
    {"AO", PhonemeClass::kVowel, Place::kNone, true, 2, 2, true, false},
    {"AW", PhonemeClass::kVowel, Place::kNone, true, 2, 1, true, true},
    {"AY", PhonemeClass::kVowel, Place::kNone, true, 2, 1, false, true},
    {"EH", PhonemeClass::kVowel, Place::kNone, true, 1, 0, false, false},
    {"ER", PhonemeClass::kVowel, Place::kNone, true, 1, 1, false, false},
    {"EY", PhonemeClass::kVowel, Place::kNone, true, 1, 0, false, true},
    {"IH", PhonemeClass::kVowel, Place::kNone, true, 0, 0, false, false},
    {"IY", PhonemeClass::kVowel, Place::kNone, true, 0, 0, false, false},
    {"OW", PhonemeClass::kVowel, Place::kNone, true, 1, 2, true, true},
    {"OY", PhonemeClass::kVowel, Place::kNone, true, 1, 2, true, true},
    {"UH", PhonemeClass::kVowel, Place::kNone, true, 0, 2, true, false},
    {"UW", PhonemeClass::kVowel, Place::kNone, true, 0, 2, true, false},
    {"AX", PhonemeClass::kVowel, Place::kNone, true, 1, 1, false, false},
    {"AXH", PhonemeClass::kVowel, Place::kNone, false, 1, 1, false, false},
    {"AXR", PhonemeClass::kVowel, Place::kNone, true, 1, 1, false, false},
    {"IX", PhonemeClass::kVowel, Place::kNone, true, 0, 1, false, false},
    {"UX", PhonemeClass::kVowel, Place::kNone, true, 0, 1, true, false},
    // Stops.
    {"B", PhonemeClass::kStop, Place::kBilabial, true, 0, 0, false, false},
    {"D", PhonemeClass::kStop, Place::kAlveolar, true, 0, 0, false, false},
    {"G", PhonemeClass::kStop, Place::kVelar, true, 0, 0, false, false},
    {"K", PhonemeClass::kStop, Place::kVelar, false, 0, 0, false, false},
    {"P", PhonemeClass::kStop, Place::kBilabial, false, 0, 0, false, false},
    {"T", PhonemeClass::kStop, Place::kAlveolar, false, 0, 0, false, false},
    {"DX", PhonemeClass::kStop, Place::kAlveolar, true, 0, 0, false, false},
    {"Q", PhonemeClass::kStop, Place::kGlottal, false, 0, 0, false, false},
    // Affricates.
    {"CH", PhonemeClass::kAffricate, Place::kPostalveolar, false, 0, 0, false,
     false},
    {"JH", PhonemeClass::kAffricate, Place::kPostalveolar, true, 0, 0, false,
     false},
    {"TS", PhonemeClass::kAffricate, Place::kAlveolar, false, 0, 0, false,
     false},
    // Fricatives.
    {"DH", PhonemeClass::kFricative, Place::kDental, true, 0, 0, false, false},
    {"F", PhonemeClass::kFricative, Place::kLabiodental, false, 0, 0, false,
     false},
    {"HH", PhonemeClass::kFricative, Place::kGlottal, false, 0, 0, false,
     false},
    {"HV", PhonemeClass::kFricative, Place::kGlottal, true, 0, 0, false,
     false},
    {"S", PhonemeClass::kFricative, Place::kAlveolar, false, 0, 0, false,
     false},
    {"SH", PhonemeClass::kFricative, Place::kPostalveolar, false, 0, 0, false,
     false},
    {"TH", PhonemeClass::kFricative, Place::kDental, false, 0, 0, false,
     false},
    {"V", PhonemeClass::kFricative, Place::kLabiodental, true, 0, 0, false,
     false},
    {"Z", PhonemeClass::kFricative, Place::kAlveolar, true, 0, 0, false,
     false},
    {"ZH", PhonemeClass::kFricative, Place::kPostalveolar, true, 0, 0, false,
     false},
    // Nasals.
    {"M", PhonemeClass::kNasal, Place::kBilabial, true, 0, 0, false, false},
    {"N", PhonemeClass::kNasal, Place::kAlveolar, true, 0, 0, false, false},
    {"NG", PhonemeClass::kNasal, Place::kVelar, true, 0, 0, false, false},
    {"NX", PhonemeClass::kNasal, Place::kAlveolar, true, 0, 0, false, false},
    {"EM", PhonemeClass::kNasal, Place::kBilabial, true, 0, 0, false, false},
    {"EN", PhonemeClass::kNasal, Place::kAlveolar, true, 0, 0, false, false},
    // Liquids.
    {"L", PhonemeClass::kLiquid, Place::kAlveolar, true, 0, 0, false, false},
    {"R", PhonemeClass::kLiquid, Place::kAlveolar, true, 0, 0, false, false},
    {"EL", PhonemeClass::kLiquid, Place::kAlveolar, true, 0, 0, false, false},
    // Glides.
    {"W", PhonemeClass::kGlide, Place::kVelar, true, 0, 2, true, false},
    {"WH", PhonemeClass::kGlide, Place::kVelar, false, 0, 2, true, false},
    {"Y", PhonemeClass::kGlide, Place::kPalatal, true, 0, 0, false, false},
    // Silence / pause.
    {"SIL", PhonemeClass::kGlide, Place::kNone, false, 0, 0, false, false},
};

constexpr std::size_t kNumPhonemes = sizeof(kInventory) / sizeof(kInventory[0]);
static_assert(kNumPhonemes == 54, "the paper's inventory has 54 phonemes");

const Phoneme kSilenceId = static_cast<Phoneme>(kNumPhonemes - 1);

double ConsonantClassAffinity(PhonemeClass a, PhonemeClass b) {
  if (a == b) return 0.0;
  auto is_obstruent_pair = [](PhonemeClass x, PhonemeClass y) {
    auto obstruent = [](PhonemeClass c) {
      return c == PhonemeClass::kStop || c == PhonemeClass::kFricative ||
             c == PhonemeClass::kAffricate;
    };
    return obstruent(x) && obstruent(y);
  };
  if (is_obstruent_pair(a, b)) return 0.45;
  auto sonorant = [](PhonemeClass c) {
    return c == PhonemeClass::kNasal || c == PhonemeClass::kLiquid ||
           c == PhonemeClass::kGlide;
  };
  if (sonorant(a) && sonorant(b)) return 0.5;
  return 0.9;
}

double PairDistance(const PhonemeInfo& a, const PhonemeInfo& b,
                    bool a_is_sil, bool b_is_sil) {
  if (a_is_sil || b_is_sil) return a_is_sil == b_is_sil ? 0.0 : 1.0;
  bool a_vowel = a.cls == PhonemeClass::kVowel;
  bool b_vowel = b.cls == PhonemeClass::kVowel;
  if (a_vowel && b_vowel) {
    double d = 0.0;
    d += 0.30 * std::abs(static_cast<int>(a.height) -
                         static_cast<int>(b.height)) / 2.0;
    d += 0.30 * std::abs(static_cast<int>(a.backness) -
                         static_cast<int>(b.backness)) / 2.0;
    d += (a.rounded != b.rounded) ? 0.12 : 0.0;
    d += (a.diphthong != b.diphthong) ? 0.18 : 0.0;
    d += (a.voiced != b.voiced) ? 0.10 : 0.0;
    return std::min(1.0, d);
  }
  if (a_vowel != b_vowel) {
    // Glides are close to their corresponding high vowels (W~UW, Y~IY).
    const PhonemeInfo& c = a_vowel ? b : a;
    const PhonemeInfo& v = a_vowel ? a : b;
    if (c.cls == PhonemeClass::kGlide && v.height == 0) return 0.55;
    return 0.95;
  }
  // Consonant pair.
  double d = ConsonantClassAffinity(a.cls, b.cls);
  d += 0.35 * std::abs(static_cast<int>(a.place) -
                       static_cast<int>(b.place)) / 7.0;
  d += (a.voiced != b.voiced) ? 0.20 : 0.0;
  return std::min(1.0, d);
}

}  // namespace

PhonemeSet::PhonemeSet() {
  distance_.resize(kNumPhonemes * kNumPhonemes);
  for (std::size_t i = 0; i < kNumPhonemes; ++i) {
    for (std::size_t j = 0; j < kNumPhonemes; ++j) {
      distance_[i * kNumPhonemes + j] =
          PairDistance(kInventory[i], kInventory[j],
                       static_cast<Phoneme>(i) == kSilenceId,
                       static_cast<Phoneme>(j) == kSilenceId);
    }
  }
}

const PhonemeSet& PhonemeSet::Instance() {
  static const PhonemeSet* set = new PhonemeSet();
  return *set;
}

std::size_t PhonemeSet::size() const { return kNumPhonemes; }

const PhonemeInfo& PhonemeSet::info(Phoneme p) const {
  BIVOC_CHECK(p >= 0 && static_cast<std::size_t>(p) < kNumPhonemes)
      << "bad phoneme id " << p;
  return kInventory[p];
}

std::string_view PhonemeSet::name(Phoneme p) const { return info(p).name; }

Phoneme PhonemeSet::Parse(std::string_view name) const {
  for (std::size_t i = 0; i < kNumPhonemes; ++i) {
    if (name == kInventory[i].name) return static_cast<Phoneme>(i);
  }
  return kInvalidPhoneme;
}

double PhonemeSet::Distance(Phoneme a, Phoneme b) const {
  BIVOC_CHECK(a >= 0 && static_cast<std::size_t>(a) < kNumPhonemes);
  BIVOC_CHECK(b >= 0 && static_cast<std::size_t>(b) < kNumPhonemes);
  return distance_[static_cast<std::size_t>(a) * kNumPhonemes +
                   static_cast<std::size_t>(b)];
}

std::vector<Phoneme> PhonemeSet::Neighbors(Phoneme p) const {
  std::vector<Phoneme> out;
  out.reserve(kNumPhonemes - 1);
  for (std::size_t i = 0; i < kNumPhonemes; ++i) {
    if (static_cast<Phoneme>(i) != p) out.push_back(static_cast<Phoneme>(i));
  }
  std::sort(out.begin(), out.end(), [&](Phoneme a, Phoneme b) {
    double da = Distance(p, a);
    double db = Distance(p, b);
    if (da != db) return da < db;
    return a < b;
  });
  return out;
}

std::string PhonemeSet::ToString(const std::vector<Phoneme>& pron) const {
  std::string out;
  for (std::size_t i = 0; i < pron.size(); ++i) {
    if (i > 0) out += ' ';
    out += name(pron[i]);
  }
  return out;
}

}  // namespace bivoc
