#ifndef BIVOC_ASR_DECODER_H_
#define BIVOC_ASR_DECODER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "asr/acoustic_channel.h"
#include "asr/lexicon.h"
#include "asr/phoneme.h"

namespace bivoc {

// Token class of a vocabulary entry. Names and numbers are tracked
// separately because the paper evaluates them separately (Table I) and
// the second decoding pass swaps the name sub-vocabulary.
enum class WordClass { kGeneral, kName, kNumber };

std::string_view WordClassName(WordClass cls);

struct VocabEntry {
  std::string word;
  WordClass cls = WordClass::kGeneral;
  std::vector<Phoneme> pron;
};

// The decoder's active vocabulary with a first-phoneme retrieval index.
// Building a restricted copy (general words + top-N candidate names) is
// exactly the paper's second-pass trick.
class DecoderVocabulary {
 public:
  explicit DecoderVocabulary(const Lexicon* lexicon);

  // Adds a word (deduplicated); pronunciation from the lexicon.
  void Add(const std::string& word, WordClass cls);

  void AddAll(const std::vector<std::string>& words, WordClass cls);

  // New vocabulary with all non-name words of *this plus exactly the
  // given names — the entity-constrained LM vocabulary of §IV-A.
  DecoderVocabulary RestrictNames(
      const std::vector<std::string>& allowed_names) const;

  const std::vector<VocabEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool Contains(const std::string& word) const {
    return index_.count(word) > 0;
  }
  const Lexicon* lexicon() const { return lexicon_; }

  // Entry indices whose first pronunciation phoneme is articulatorily
  // compatible with `observed` (distance below an internal threshold).
  // This is the decoder's candidate retrieval structure.
  const std::vector<std::size_t>& CandidatesByFirstPhoneme(
      Phoneme observed) const;

  // Must be called once after the last Add and before decoding; builds
  // the retrieval buckets. (Kept explicit so the vocabulary is immutable
  // and thread-safe while decoding.)
  void Freeze();
  bool frozen() const { return frozen_; }

 private:
  const Lexicon* lexicon_;  // not owned
  std::vector<VocabEntry> entries_;
  std::unordered_map<std::string, std::size_t> index_;
  // buckets_[q] = entry indices whose first phoneme is close to q.
  std::vector<std::vector<std::size_t>> buckets_;
  bool frozen_ = false;
};

struct DecoderConfig {
  double acoustic_weight = 1.0;
  double lm_weight = 1.2;
  // Per-word penalty discourages over-segmentation into short words.
  double word_insertion_penalty = 0.8;
  // Edit costs for aligning a pronunciation to the observation; the
  // substitution cost is scaled by articulatory distance.
  double sub_cost_scale = 2.4;
  double ins_del_cost = 1.5;
  // Cost of skipping one observed phoneme without emitting a word
  // (burst junk); skipping SIL is nearly free.
  double junk_skip_cost = 3.2;
  double sil_skip_cost = 0.15;
  // Beam widths.
  std::size_t hypotheses_per_position = 6;
  std::size_t candidates_per_position = 48;
  // Span slack: a word of pronunciation length L may align to observed
  // spans of length L +/- span_slack (>= 1 phoneme).
  int span_slack = 2;
};

struct DecodedWord {
  std::string word;
  WordClass cls = WordClass::kGeneral;
  double acoustic_score = 0.0;  // negative edit cost
};

struct DecodeResult {
  std::vector<DecodedWord> words;
  double total_score = 0.0;

  std::vector<std::string> Words() const;
  std::string Text() const;  // space-joined
};

// Beam-search Viterbi decoder over a noisy phoneme stream:
//
//   score(word sequence) = sum_i [ acoustic(word_i, span_i)
//                                  + lm_weight * ln P(word_i | word_{i-1})
//                                  - word_insertion_penalty ]
//
// which is the standard AM+LM log-linear decode of an HMM LVCSR system,
// with the GMM state likelihoods replaced by articulatory edit costs
// against the channel's confusion geometry.
class Decoder {
 public:
  // `lm` scores ln P(word | prev); prev is "<s>" at sentence start.
  // Wrap an NgramModel or InterpolatedLm as needed.
  using LmScore =
      std::function<double(const std::string& prev, const std::string& word)>;

  Decoder(const DecoderVocabulary* vocab, LmScore lm, DecoderConfig config);

  DecodeResult Decode(const AcousticObservation& observation) const;

 private:
  struct Candidate {
    std::size_t entry;     // vocab index
    std::size_t end;       // observation position after the word
    double acoustic;       // negative cost
  };

  std::vector<Candidate> CandidatesAt(const std::vector<Phoneme>& obs,
                                      std::size_t pos) const;

  const DecoderVocabulary* vocab_;  // not owned
  LmScore lm_;
  DecoderConfig config_;
  const PhonemeSet& set_;
};

}  // namespace bivoc

#endif  // BIVOC_ASR_DECODER_H_
