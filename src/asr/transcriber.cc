#include "asr/transcriber.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace bivoc {

Transcriber::Transcriber(Options options)
    : options_(options), vocab_(&lexicon_) {
  channel_ = std::make_unique<AcousticChannel>(&lexicon_, options_.channel);
}

void Transcriber::TrainLm(
    const std::vector<std::vector<std::string>>& general_corpus,
    const std::vector<std::vector<std::string>>& domain_corpus) {
  general_lm_.Train(general_corpus);
  domain_lm_.Train(domain_corpus);
  lm_ = std::make_unique<InterpolatedLm>(&general_lm_, &domain_lm_,
                                         options_.domain_lm_weight);
}

void Transcriber::AddWords(const std::vector<std::string>& words,
                           WordClass cls) {
  vocab_.AddAll(words, cls);
}

Decoder::LmScore Transcriber::MakeLmScore() const {
  BIVOC_CHECK(lm_ != nullptr) << "TrainLm before Freeze/Transcribe";
  const InterpolatedLm* lm = lm_.get();
  return [lm](const std::string& prev, const std::string& word) {
    return lm->BigramLogProb(prev, word);
  };
}

void Transcriber::Freeze() {
  vocab_.Freeze();
  decoder_ = std::make_unique<Decoder>(&vocab_, MakeLmScore(),
                                       options_.decoder);
}

Transcriber::Transcript Transcriber::Transcribe(
    const std::vector<std::string>& reference, Rng* rng) const {
  BIVOC_CHECK(decoder_ != nullptr) << "Freeze before Transcribe";
  Transcript t;
  t.observation = channel_->Transmit(reference, rng);
  t.first_pass = decoder_->Decode(t.observation);
  return t;
}

DecodeResult Transcriber::SecondPass(
    const AcousticObservation& observation,
    const std::vector<std::string>& allowed_names) const {
  DecoderVocabulary restricted = vocab_.RestrictNames(allowed_names);

  // The paper's trick is an LM-side restriction: "limit the number of
  // possibilities for a named entity to N values in the LM". Shrinking
  // the name class from its full size to N redistributes the class's
  // probability mass, so each surviving name gets a log-bonus of
  // ln(full/N) (capped for tiny N).
  std::size_t full_names = 0;
  for (const auto& e : vocab_.entries()) {
    if (e.cls == WordClass::kName) ++full_names;
  }
  std::unordered_set<std::string> allowed_set;
  for (const auto& n : allowed_names) allowed_set.insert(ToLowerCopy(n));
  double bonus = 0.0;
  if (!allowed_set.empty() && full_names > allowed_set.size()) {
    bonus = std::min(5.0, std::log(static_cast<double>(full_names) /
                                   static_cast<double>(allowed_set.size())));
  }
  Decoder::LmScore base = MakeLmScore();
  Decoder::LmScore boosted = [base, allowed = std::move(allowed_set),
                              bonus](const std::string& prev,
                                     const std::string& word) {
    double s = base(prev, word);
    if (bonus > 0.0 && allowed.count(word) > 0) s += bonus;
    return s;
  };
  Decoder second(&restricted, std::move(boosted), options_.decoder);
  return second.Decode(observation);
}

}  // namespace bivoc
