#ifndef BIVOC_UTIL_CRC32_H_
#define BIVOC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bivoc {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// guarding every WAL record and checkpoint blob against torn writes
// and bit rot. Table-driven, byte at a time; fast enough that the
// ingest WAL is fsync-bound, not checksum-bound.

// Incremental form: feed chunks through repeatedly, starting from 0.
uint32_t Crc32Update(uint32_t crc, const void* data, std::size_t len);

// One-shot convenience.
inline uint32_t Crc32(const void* data, std::size_t len) {
  return Crc32Update(0, data, len);
}
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32Update(0, bytes.data(), bytes.size());
}

}  // namespace bivoc

#endif  // BIVOC_UTIL_CRC32_H_
