#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace bivoc {

namespace {
bool NeedsQuoting(const std::string& field, char delim) {
  return field.find(delim) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos ||
         field.find('\r') != std::string::npos;
}
}  // namespace

std::string CsvEncodeRow(const std::vector<std::string>& fields, char delim) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += delim;
    const std::string& f = fields[i];
    if (NeedsQuoting(f, delim)) {
      out += '"';
      for (char c : f) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += f;
    }
  }
  return out;
}

Result<std::vector<std::string>> CsvDecodeRow(const std::string& line,
                                              char delim) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else {
      if (c == '"') {
        if (!cur.empty()) {
          return Status::Corruption("quote in unquoted CSV field");
        }
        in_quotes = true;
      } else if (c == delim) {
        fields.push_back(std::move(cur));
        cur.clear();
      } else {
        cur += c;
      }
    }
    ++i;
  }
  if (in_quotes) return Status::Corruption("unterminated quoted CSV field");
  fields.push_back(std::move(cur));
  return fields;
}

Status CsvWriteFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delim) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (const auto& row : rows) {
    out << CsvEncodeRow(row, delim) << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> CsvReadFile(
    const std::string& path, char delim) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    BIVOC_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                           CsvDecodeRow(line, delim));
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace bivoc
