#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace bivoc {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  have_cached_normal_ = false;
  zipf_n_ = -1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  BIVOC_CHECK(lo <= hi) << "Uniform(" << lo << "," << hi << ")";
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

int64_t Rng::Zipf(int64_t n, double s) {
  BIVOC_CHECK(n > 0) << "Zipf over empty domain";
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(static_cast<std::size_t>(n));
    double total = 0.0;
    for (int64_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[static_cast<std::size_t>(k)] = total;
    }
    for (auto& v : zipf_cdf_) v /= total;
  }
  double u = NextDouble();
  // Binary search the CDF.
  std::size_t lo = 0, hi = zipf_cdf_.size() - 1;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<int64_t>(lo);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  BIVOC_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    return static_cast<std::size_t>(
        Uniform(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double u = NextDouble() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      acc += weights[i];
      if (u < acc) return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t tag) {
  uint64_t mix = state_[0] ^ Rotl(state_[2], 13) ^ (tag * 0x9e3779b97f4a7c15ULL);
  return Rng(mix);
}

}  // namespace bivoc
