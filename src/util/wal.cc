#include "util/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/checkpoint_io.h"
#include "util/crc32.h"
#include "util/fault_injection.h"

namespace bivoc {
namespace {

using internal::ErrnoMessage;
using internal::SyncParentDir;
using internal::WriteAllToFd;

constexpr char kWalMagic[8] = {'B', 'V', 'W', 'A', 'L', '0', '0', '1'};
constexpr uint32_t kRecordMarker = 0x57A1C0DEu;
constexpr std::size_t kHeaderSize = 16;     // magic + u64 user_token
constexpr std::size_t kRecordHeader = 12;   // marker + length + crc
constexpr uint32_t kMaxRecordLen = 1u << 30;

uint32_t DecodeU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t DecodeU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::string EncodeHeader(uint64_t token) {
  std::string header(kWalMagic, sizeof(kWalMagic));
  BinaryWriter w;
  w.PutU64(token);
  header += w.data();
  return header;
}

std::string EncodeRecord(std::string_view payload) {
  BinaryWriter w;
  w.PutU32(kRecordMarker);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  std::string record = w.Release();
  record.append(payload.data(), payload.size());
  return record;
}

// First offset >= `from` holding the record marker, or npos.
std::size_t FindMarker(std::string_view bytes, std::size_t from) {
  for (std::size_t pos = from; pos + 4 <= bytes.size(); ++pos) {
    if (DecodeU32(bytes.data() + pos) == kRecordMarker) return pos;
  }
  return std::string_view::npos;
}

// First offset >= `from` where a COMPLETE valid record starts (marker,
// sane length, fully in bounds, CRC passes), or npos. This is how the
// reader distinguishes "corruption in the middle" (a valid record
// exists further on — resync to it) from "torn tail" (nothing
// trustworthy follows — the bytes die here).
std::size_t NextValidRecordStart(std::string_view bytes, std::size_t from) {
  std::size_t pos = FindMarker(bytes, from);
  while (pos != std::string_view::npos) {
    if (bytes.size() - pos >= kRecordHeader) {
      const uint32_t len = DecodeU32(bytes.data() + pos + 4);
      if (len <= kMaxRecordLen && pos + kRecordHeader + len <= bytes.size() &&
          Crc32(bytes.substr(pos + kRecordHeader, len)) ==
              DecodeU32(bytes.data() + pos + 8)) {
        return pos;
      }
    }
    pos = FindMarker(bytes, pos + 1);
  }
  return std::string_view::npos;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError(ErrnoMessage("open", path));
  }
  std::string bytes;
  char chunk[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(ErrnoMessage("read", path));
    }
    if (n == 0) break;
    bytes.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return bytes;
}

}  // namespace

Result<WalReadResult> ReadWal(const std::string& path) {
  Result<std::string> bytes_or = ReadWholeFile(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = bytes_or.value();

  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption("bad WAL header: " + path);
  }
  WalReadResult result;
  result.user_token = DecodeU64(bytes.data() + sizeof(kWalMagic));

  std::string_view view(bytes);
  std::size_t pos = kHeaderSize;
  while (pos < view.size()) {
    // Classify the bytes at pos. A fully valid record is consumed; any
    // damage (lost marker, garbage length, payload past EOF, CRC
    // mismatch) triggers the same policy: if a complete valid record
    // exists further on, the damage was local corruption — count it
    // once and resync there; if nothing trustworthy follows, this is
    // the torn tail of a crashed append — count the bytes and stop.
    bool valid = false;
    if (view.size() - pos >= kRecordHeader &&
        DecodeU32(view.data() + pos) == kRecordMarker) {
      const uint32_t len = DecodeU32(view.data() + pos + 4);
      if (len <= kMaxRecordLen && pos + kRecordHeader + len <= view.size()) {
        std::string_view payload = view.substr(pos + kRecordHeader, len);
        if (Crc32(payload) == DecodeU32(view.data() + pos + 8)) {
          result.records.emplace_back(payload);
          pos += kRecordHeader + len;
          valid = true;
        }
      }
    }
    if (valid) continue;
    std::size_t next = NextValidRecordStart(view, pos + 1);
    if (next == std::string_view::npos) {
      result.truncated_bytes += view.size() - pos;
      break;
    }
    ++result.corrupt_records;
    pos = next;
  }
  return result;
}

WalWriter::~WalWriter() { Close(); }

uint64_t WalWriter::HeaderSize() { return kHeaderSize; }

Status WalWriter::Open(const std::string& path, uint64_t token_if_new) {
  Close();
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(ErrnoMessage("fstat", path));
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  uint64_t token = token_if_new;
  if (size == 0) {
    Status write_st = WriteAllToFd(fd, EncodeHeader(token), path);
    if (!write_st.ok()) {
      ::close(fd);
      return write_st;
    }
    size = kHeaderSize;
  } else {
    // Existing log: the header must parse (reading the body is the
    // recovery path's job; an appender only needs the token).
    Result<std::string> head_or = ReadWholeFile(path);
    if (!head_or.ok()) {
      ::close(fd);
      return head_or.status();
    }
    const std::string& head = head_or.value();
    if (head.size() < kHeaderSize ||
        std::memcmp(head.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
      ::close(fd);
      return Status::Corruption("bad WAL header: " + path);
    }
    token = DecodeU64(head.data() + sizeof(kWalMagic));
  }
  fd_ = fd;
  path_ = path;
  size_ = size;
  user_token_ = token;
  return Status::OK();
}

Status WalWriter::Rewrite(const std::string& path, uint64_t token,
                          const std::vector<std::string>& records) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));

  Status st = FaultInjector::Global().MaybeFail(kFaultIoWrite);
  if (st.ok()) st = WriteAllToFd(fd, EncodeHeader(token), tmp);
  for (std::size_t i = 0; st.ok() && i < records.size(); ++i) {
    st = WriteAllToFd(fd, EncodeRecord(records[i]), tmp);
  }
  if (st.ok()) st = FaultInjector::Global().MaybeFail(kFaultIoFsync);
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IoError(ErrnoMessage("fsync", tmp));
  }
  ::close(fd);
  if (st.ok()) st = FaultInjector::Global().MaybeFail(kFaultIoRename);
  if (st.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::IoError(ErrnoMessage("rename", tmp));
  }
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  SyncParentDir(path);
  return Status::OK();
}

Status WalWriter::Append(std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer not open");
  BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(kFaultIoWrite));
  const std::string record = EncodeRecord(payload);
  BIVOC_RETURN_NOT_OK(WriteAllToFd(fd_, record, path_));
  size_ += record.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer not open");
  BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(kFaultIoFsync));
  if (::fsync(fd_) != 0) {
    return Status::IoError(ErrnoMessage("fsync", path_));
  }
  return Status::OK();
}

Status WalWriter::TruncateTo(uint64_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer not open");
  if (size < kHeaderSize) {
    return Status::InvalidArgument("cannot truncate into the WAL header");
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IoError(ErrnoMessage("ftruncate", path_));
  }
  size_ = size;
  return Status::OK();
}

Status WalWriter::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return Status::IoError(ErrnoMessage("close", path_));
  }
  return Status::OK();
}

}  // namespace bivoc
