#ifndef BIVOC_UTIL_LOGGING_H_
#define BIVOC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace bivoc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Accumulates one log line and flushes it (with level prefix) on
// destruction. Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
  LogLevel level_;
  bool enabled_;
  bool fatal_;
};

}  // namespace internal

#define BIVOC_LOG(level)                                            \
  ::bivoc::internal::LogMessage(::bivoc::LogLevel::k##level,        \
                                __FILE__, __LINE__)

// Invariant check that is always on (used for programming errors, not
// data errors; data errors travel via Status).
#define BIVOC_CHECK(cond)                                               \
  if (!(cond))                                                          \
  ::bivoc::internal::LogMessage(::bivoc::LogLevel::kError, __FILE__,    \
                                __LINE__, /*fatal=*/true)               \
      << "Check failed: " #cond " "

#define BIVOC_CHECK_OK(expr)                                \
  do {                                                      \
    ::bivoc::Status _st = (expr);                           \
    BIVOC_CHECK(_st.ok()) << _st.ToString();                \
  } while (false)

}  // namespace bivoc

#endif  // BIVOC_UTIL_LOGGING_H_
