#include "util/checkpoint_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"
#include "util/fault_injection.h"

namespace bivoc {

namespace {

constexpr char kBlobMagic[8] = {'B', 'V', 'C', 'K', 'P', 'T', '0', '1'};

}  // namespace

namespace internal {

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

Status WriteAllToFd(int fd, std::string_view data, const std::string& path) {
  const char* p = data.data();
  std::size_t len = data.size();
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write", path));
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

void SyncParentDir(const std::string& path) {
  std::string dir = ".";
  std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace internal

namespace {

using internal::ErrnoMessage;
using internal::SyncParentDir;

Status WriteAll(int fd, const char* data, std::size_t len,
                const std::string& path) {
  return internal::WriteAllToFd(fd, std::string_view(data, len), path);
}

}  // namespace

// --- BinaryWriter ----------------------------------------------------

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

// --- BinaryReader ----------------------------------------------------

Status BinaryReader::Take(std::size_t n, const char** out) {
  if (buf_.size() - pos_ < n) {
    return Status::Corruption("binary decode past end of buffer");
  }
  *out = buf_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadU8(uint8_t* v) {
  const char* p;
  BIVOC_RETURN_NOT_OK(Take(1, &p));
  *v = static_cast<uint8_t>(*p);
  return Status::OK();
}

Status BinaryReader::ReadU32(uint32_t* v) {
  const char* p;
  BIVOC_RETURN_NOT_OK(Take(4, &p));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = out;
  return Status::OK();
}

Status BinaryReader::ReadU64(uint64_t* v) {
  const char* p;
  BIVOC_RETURN_NOT_OK(Take(8, &p));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  *v = out;
  return Status::OK();
}

Status BinaryReader::ReadI64(int64_t* v) {
  uint64_t bits;
  BIVOC_RETURN_NOT_OK(ReadU64(&bits));
  *v = static_cast<int64_t>(bits);
  return Status::OK();
}

Status BinaryReader::ReadDouble(double* v) {
  uint64_t bits;
  BIVOC_RETURN_NOT_OK(ReadU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* s) {
  uint32_t len;
  BIVOC_RETURN_NOT_OK(ReadU32(&len));
  if (buf_.size() - pos_ < len) {
    return Status::Corruption("string length exceeds buffer");
  }
  s->assign(buf_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

// --- checksummed whole-file blobs ------------------------------------

Status WriteChecksummedFileAtomic(const std::string& path,
                                  std::string_view payload) {
  BinaryWriter header;
  header.PutU32(Crc32(payload));
  header.PutU64(payload.size());

  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));

  Status st = FaultInjector::Global().MaybeFail(kFaultIoWrite);
  if (st.ok()) st = WriteAll(fd, kBlobMagic, sizeof(kBlobMagic), tmp);
  if (st.ok()) {
    st = WriteAll(fd, header.data().data(), header.data().size(), tmp);
  }
  if (st.ok()) st = WriteAll(fd, payload.data(), payload.size(), tmp);
  if (st.ok()) st = FaultInjector::Global().MaybeFail(kFaultIoFsync);
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IoError(ErrnoMessage("fsync", tmp));
  }
  ::close(fd);
  if (st.ok()) st = FaultInjector::Global().MaybeFail(kFaultIoRename);
  if (st.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::IoError(ErrnoMessage("rename", tmp));
  }
  if (!st.ok()) {
    ::unlink(tmp.c_str());  // never leave a half-written temp behind
    return st;
  }
  SyncParentDir(path);
  return Status::OK();
}

Result<std::string> ReadChecksummedFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError(ErrnoMessage("open", path));
  }
  std::string bytes;
  char chunk[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(ErrnoMessage("read", path));
    }
    if (n == 0) break;
    bytes.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  if (bytes.size() < sizeof(kBlobMagic) + 12 ||
      std::memcmp(bytes.data(), kBlobMagic, sizeof(kBlobMagic)) != 0) {
    return Status::Corruption("bad blob header: " + path);
  }
  BinaryReader reader(
      std::string_view(bytes).substr(sizeof(kBlobMagic)));
  uint32_t crc;
  uint64_t len;
  BIVOC_RETURN_NOT_OK(reader.ReadU32(&crc));
  BIVOC_RETURN_NOT_OK(reader.ReadU64(&len));
  if (len != reader.remaining()) {
    return Status::Corruption("blob length mismatch: " + path);
  }
  std::string payload =
      bytes.substr(sizeof(kBlobMagic) + 12, static_cast<std::size_t>(len));
  if (Crc32(payload) != crc) {
    return Status::Corruption("blob checksum mismatch: " + path);
  }
  return payload;
}

// --- plain file helpers ----------------------------------------------

Result<uint64_t> FileSizeOf(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError(ErrnoMessage("stat", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

// --- corruption injection --------------------------------------------

Status TruncateFileTo(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IoError(ErrnoMessage("truncate", path));
  }
  return Status::OK();
}

Status FlipBitInFile(const std::string& path, uint64_t offset, int bit) {
  if (bit < 0 || bit > 7) {
    return Status::InvalidArgument("bit must be in [0,7]");
  }
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
  unsigned char byte;
  ssize_t n = ::pread(fd, &byte, 1, static_cast<off_t>(offset));
  if (n != 1) {
    ::close(fd);
    return Status::OutOfRange("offset past end of file: " + path);
  }
  byte = static_cast<unsigned char>(byte ^ (1u << bit));
  n = ::pwrite(fd, &byte, 1, static_cast<off_t>(offset));
  ::close(fd);
  if (n != 1) return Status::IoError(ErrnoMessage("pwrite", path));
  return Status::OK();
}

}  // namespace bivoc
