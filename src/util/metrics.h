#ifndef BIVOC_UTIL_METRICS_H_
#define BIVOC_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bivoc {

// Minimal observability substrate shared across subsystems: counters,
// gauges and fixed-bucket histograms, collected in a named registry
// that renders a Prometheus-flavored text dump (the "scrape endpoint"
// of a system that has no HTTP server). Instruments are cheap enough
// for hot paths — a counter bump is one relaxed fetch_add — and the
// pointers handed out by the registry stay valid for its lifetime, so
// callers resolve a name once and keep the pointer.

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level that moves both ways (queue depth, cache size).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram with quantile extraction. Buckets are set at
// construction (ascending upper bounds; an implicit +Inf bucket catches
// the overflow), so Observe is lock-free: one bucket fetch_add plus the
// count/sum updates. Quantiles are estimated by linear interpolation
// inside the bucket holding the target rank — exact enough for latency
// monitoring, and the error is bounded by the bucket width.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  // Default bounds for millisecond latencies: 50us to 5s, roughly
  // logarithmic.
  static std::vector<double> LatencyBucketsMs();

  void Observe(double value);

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  // Estimated value at quantile q in [0, 1]; 0 when empty. Values in
  // the overflow bucket clamp to the largest finite bound.
  double Quantile(double q) const;

  struct Summary {
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Summary GetSummary() const;

  const std::vector<double>& bounds() const { return bounds_; }
  // Count in bucket i (i == bounds().size() is the +Inf bucket).
  uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Thread-safe name -> instrument registry. Get* creates on first use
// and returns the same pointer afterwards; names are independent per
// kind but should be globally unique for a readable dump. Instruments
// are never removed, so returned pointers remain valid as long as the
// registry lives.
//
// Labeled series: a name may carry an inline Prometheus label set,
// e.g. GetCounter("tenant_requests_total{tenant=\"acme\"}"). Rendering
// splits the base name from the labels, so series of one metric share
// a single "# TYPE" line and histogram suffixes compose correctly
// (base_bucket{tenant="acme",le="..."}). Unlabeled names render
// byte-identically to the historical flat format.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `upper_bounds` applies only on first creation (empty ->
  // LatencyBucketsMs()); later calls return the existing histogram.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = {});

  // Prometheus-style exposition: "# TYPE" lines, cumulative
  // _bucket{le=...} series, _sum/_count, and quantile series for
  // histograms, sorted by name.
  std::string RenderText() const;

  // Same exposition with `extra_label` (e.g. `tenant="acme"`, no
  // braces) injected into every sample — how a multi-tenant host
  // renders one tenant's private registry into a shared scrape without
  // the tenant's instruments knowing their own namespace.
  std::string RenderText(const std::string& extra_label) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace bivoc

#endif  // BIVOC_UTIL_METRICS_H_
