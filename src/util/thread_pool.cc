#include "util/thread_pool.h"

#include <atomic>

#include "util/logging.h"

namespace bivoc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    BIVOC_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk to limit queue churn for large n.
  std::size_t chunks = std::min(n, workers_.size() * 4);
  std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t begin = c * per;
    std::size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock,
                    [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A throwing task must not escape the worker thread (that would
    // std::terminate the whole process) and must still decrement
    // in_flight_, or Wait() deadlocks.
    try {
      task();
    } catch (const std::exception& e) {
      exceptions_caught_.fetch_add(1, std::memory_order_relaxed);
      BIVOC_LOG(Error) << "ThreadPool task threw: " << e.what();
    } catch (...) {
      exceptions_caught_.fetch_add(1, std::memory_order_relaxed);
      BIVOC_LOG(Error) << "ThreadPool task threw a non-std exception";
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace bivoc
