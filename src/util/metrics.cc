#include "util/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace bivoc {
namespace {

// fetch_add on atomic<double> is C++20; keep a CAS loop so the file
// builds identically on toolchains where the lowering is unavailable.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

// buckets_ is sized before deduplication: the atomics vector cannot
// resize, and dead tail buckets are harmless (Observe never indexes
// past bounds_.size()).
Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
}

std::vector<double> Histogram::LatencyBucketsMs() {
  return {0.05, 0.1, 0.2, 0.5, 1.0,  2.0,   5.0,   10.0,
          20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0};
}

void Histogram::Observe(double value) {
  std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
}

double Histogram::Quantile(double q) const {
  const uint64_t total = TotalCount();
  if (total == 0 || bounds_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const uint64_t in_bucket = BucketCount(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + std::clamp(fraction, 0.0, 1.0) * (bounds_[i] - lower);
    }
    cumulative += in_bucket;
  }
  // Rank lands in the +Inf overflow bucket: clamp to the largest
  // finite bound (interpolating toward infinity is meaningless).
  return bounds_.back();
}

Histogram::Summary Histogram::GetSummary() const {
  Summary s;
  s.count = TotalCount();
  s.sum = Sum();
  s.p50 = Quantile(0.50);
  s.p95 = Quantile(0.95);
  s.p99 = Quantile(0.99);
  return s;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (upper_bounds.empty()) upper_bounds = Histogram::LatencyBucketsMs();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

namespace {

// Splits "name{a="1",b="2"}" into base "name" and inner labels
// `a="1",b="2"`; a flat name comes back unchanged with empty labels.
void SplitMetricName(const std::string& name, std::string* base,
                     std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

// `{inner,extra,trailing}` from the non-empty parts; "" when all are.
std::string LabelSet(const std::string& inner, const std::string& extra,
                     const std::string& trailing = "") {
  std::string joined;
  for (const std::string* part : {&inner, &extra, &trailing}) {
    if (part->empty()) continue;
    if (!joined.empty()) joined += ',';
    joined += *part;
  }
  if (joined.empty()) return "";
  return "{" + joined + "}";
}

}  // namespace

std::string MetricsRegistry::RenderText() const { return RenderText(""); }

std::string MetricsRegistry::RenderText(const std::string& extra_label) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  std::string base, labels, last_typed;
  for (const auto& [name, counter] : counters_) {
    SplitMetricName(name, &base, &labels);
    if (base != last_typed) os << "# TYPE " << base << " counter\n";
    last_typed = base;
    os << base << LabelSet(labels, extra_label) << " " << counter->Value()
       << "\n";
  }
  last_typed.clear();
  for (const auto& [name, gauge] : gauges_) {
    SplitMetricName(name, &base, &labels);
    if (base != last_typed) os << "# TYPE " << base << " gauge\n";
    last_typed = base;
    os << base << LabelSet(labels, extra_label) << " " << gauge->Value()
       << "\n";
  }
  last_typed.clear();
  for (const auto& [name, hist] : histograms_) {
    SplitMetricName(name, &base, &labels);
    if (base != last_typed) os << "# TYPE " << base << " histogram\n";
    last_typed = base;
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist->bounds().size(); ++i) {
      cumulative += hist->BucketCount(i);
      os << base << "_bucket"
         << LabelSet(labels, extra_label,
                     "le=\"" + FormatDouble(hist->bounds()[i]) + "\"")
         << " " << cumulative << "\n";
    }
    cumulative += hist->BucketCount(hist->bounds().size());
    os << base << "_bucket" << LabelSet(labels, extra_label, "le=\"+Inf\"")
       << " " << cumulative << "\n";
    os << base << "_sum" << LabelSet(labels, extra_label) << " "
       << FormatDouble(hist->Sum()) << "\n";
    os << base << "_count" << LabelSet(labels, extra_label) << " "
       << hist->TotalCount() << "\n";
    const Histogram::Summary s = hist->GetSummary();
    os << base << LabelSet(labels, extra_label, "quantile=\"0.5\"") << " "
       << FormatDouble(s.p50) << "\n";
    os << base << LabelSet(labels, extra_label, "quantile=\"0.95\"") << " "
       << FormatDouble(s.p95) << "\n";
    os << base << LabelSet(labels, extra_label, "quantile=\"0.99\"") << " "
       << FormatDouble(s.p99) << "\n";
  }
  return os.str();
}

}  // namespace bivoc
