#ifndef BIVOC_UTIL_RESULT_H_
#define BIVOC_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "util/status.h"

namespace bivoc {

// Result<T> holds either a value of type T or a non-OK Status, in the
// style of arrow::Result. Accessing the value of an errored Result
// aborts; callers must check ok() (or use ValueOr).
template <typename T>
class Result {
 public:
  // Implicit construction from a value or from an error Status keeps
  // call sites terse: `return 42;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      // A Result constructed from a Status must carry an error.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& MoveValue() {
    CheckOk();
    return std::move(*value_);
  }

  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Fatal: accessed value of errored Result: "
                << status_.ToString() << std::endl;
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

// Propagates the error of a Result expression, otherwise assigns its
// value to `lhs` (which must be a declaration or assignable lvalue).
#define BIVOC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = tmp.MoveValue();

#define BIVOC_ASSIGN_OR_RETURN(lhs, expr) \
  BIVOC_ASSIGN_OR_RETURN_IMPL(            \
      BIVOC_CONCAT_NAME(_result_, __LINE__), lhs, expr)

#define BIVOC_CONCAT_NAME_INNER(x, y) x##y
#define BIVOC_CONCAT_NAME(x, y) BIVOC_CONCAT_NAME_INNER(x, y)

}  // namespace bivoc

#endif  // BIVOC_UTIL_RESULT_H_
