#ifndef BIVOC_UTIL_THREAD_POOL_H_
#define BIVOC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bivoc {

// Fixed-size worker pool used by the pipeline to process document
// batches in parallel (the paper's scale challenge: 150 GB of audio a
// day forces parallel transcription/annotation).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks should report failures via Status rather
  // than throwing, but a throwing task is contained: the exception is
  // caught in the worker, counted in exceptions_caught(), and the pool
  // keeps running (it never std::terminates the process).
  void Submit(std::function<void()> task);

  // Blocks until all submitted tasks have finished.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

  // Number of tasks whose exceptions were swallowed by the pool.
  std::size_t exceptions_caught() const {
    return exceptions_caught_.load(std::memory_order_relaxed);
  }

  // Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::atomic<std::size_t> exceptions_caught_{0};
};

}  // namespace bivoc

#endif  // BIVOC_UTIL_THREAD_POOL_H_
