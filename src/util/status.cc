#include "util/status.h"

namespace bivoc {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

namespace {

struct HttpMapping {
  StatusCode code;
  int http_status;
};

// One row per StatusCode; the exhaustive unit test in test_gateway.cpp
// fails compilation-of-intent (a missing row) by iterating the enum.
constexpr HttpMapping kHttpTable[] = {
    {StatusCode::kOk, 200},
    {StatusCode::kInvalidArgument, 400},
    {StatusCode::kNotFound, 404},
    {StatusCode::kAlreadyExists, 409},
    {StatusCode::kOutOfRange, 400},
    {StatusCode::kFailedPrecondition, 412},
    {StatusCode::kUnimplemented, 501},
    {StatusCode::kIoError, 500},
    {StatusCode::kCorruption, 500},
    {StatusCode::kInternal, 500},
    {StatusCode::kUnavailable, 503},
    {StatusCode::kDeadlineExceeded, 504},
};

}  // namespace

int HttpStatusForCode(StatusCode code) {
  for (const HttpMapping& row : kHttpTable) {
    if (row.code == code) return row.http_status;
  }
  return 500;  // unknown codes are server-side bugs
}

StatusCode StatusCodeForHttp(int http_status) {
  if (http_status >= 200 && http_status < 300) return StatusCode::kOk;
  switch (http_status) {
    case 404: return StatusCode::kNotFound;
    case 409: return StatusCode::kAlreadyExists;
    case 412: return StatusCode::kFailedPrecondition;
    case 501: return StatusCode::kUnimplemented;
    case 503: return StatusCode::kUnavailable;
    case 504: return StatusCode::kDeadlineExceeded;
    default:
      return http_status >= 500 ? StatusCode::kInternal
                                : StatusCode::kInvalidArgument;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace bivoc
