#ifndef BIVOC_UTIL_CSV_H_
#define BIVOC_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace bivoc {

// Minimal RFC-4180-ish CSV support used for exporting bench results and
// for loading small embedded datasets. Handles quoting of fields that
// contain the delimiter, quotes or newlines.

// Escapes and joins one record.
std::string CsvEncodeRow(const std::vector<std::string>& fields,
                         char delim = ',');

// Parses one line (no embedded newlines) into fields.
Result<std::vector<std::string>> CsvDecodeRow(const std::string& line,
                                              char delim = ',');

// Writes rows (first row conventionally a header) to a file.
Status CsvWriteFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows,
                    char delim = ',');

// Reads an entire CSV file into rows.
Result<std::vector<std::vector<std::string>>> CsvReadFile(
    const std::string& path, char delim = ',');

}  // namespace bivoc

#endif  // BIVOC_UTIL_CSV_H_
