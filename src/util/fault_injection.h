#ifndef BIVOC_UTIL_FAULT_INJECTION_H_
#define BIVOC_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace bivoc {

// Well-known fault points instrumented across the libraries. Points
// follow a "<subsystem>.<operation>" naming convention; arming a name
// that no site checks is legal (it simply never fires).
inline constexpr const char kFaultDbLookup[] = "db.lookup";
inline constexpr const char kFaultLinkerLink[] = "linker.link";
inline constexpr const char kFaultCleanEmail[] = "clean.email";
inline constexpr const char kFaultCleanSms[] = "clean.sms";
inline constexpr const char kFaultCleanTranscript[] = "clean.transcript";
inline constexpr const char kFaultIndexAdd[] = "index.add";
// Durability layer (wal.cc / checkpoint_io.cc): the three commit steps
// of the write-ahead log and atomic checkpoint protocol.
inline constexpr const char kFaultIoWrite[] = "io.write";
inline constexpr const char kFaultIoFsync[] = "io.fsync";
inline constexpr const char kFaultIoRename[] = "io.rename";
// Query serving layer (serve/report_server.cc): admission (a firing
// point sheds the request as kUnavailable, simulating overload) and
// query evaluation on a worker.
inline constexpr const char kFaultServeAdmit[] = "serve.admit";
inline constexpr const char kFaultServeQuery[] = "serve.query";
// Network gateway (net/http_server.cc): the accept path and the
// per-connection read/write syscall sites, so wire-level failures are
// reproducible without real network trouble.
inline constexpr const char kFaultNetAccept[] = "net.accept";
inline constexpr const char kFaultNetRead[] = "net.read";
inline constexpr const char kFaultNetWrite[] = "net.write";
// Cluster layer (cluster/router.cc): the per-shard RPC send inside the
// scatter path and the cross-shard merge step. The router additionally
// checks "net.shard.send:<shard-name>" so chaos tests can take down
// one specific shard while the others stay healthy.
inline constexpr const char kFaultShardSend[] = "net.shard.send";
inline constexpr const char kFaultClusterMerge[] = "cluster.merge";
// One page of a chunked rebalance export (cluster/router.cc). A firing
// point drops the transfer mid-chunk; the router retries the same
// cursor, which is what the resume tests exercise.
inline constexpr const char kFaultClusterExportPage[] = "cluster.export.page";

// How an armed fault point misbehaves. Each hit draws an independent
// Bernoulli(probability) from a per-point seeded Rng, so a given seed
// produces the same number of failures regardless of wall-clock.
struct FaultSpec {
  double probability = 1.0;  // chance that a hit fails
  StatusCode code = StatusCode::kIoError;
  std::string message = "injected fault";
  // Latency added to *failing* hits (simulates a slow, then failing,
  // dependency). Keep 0 in unit tests for speed.
  int64_t latency_ms = 0;
  uint64_t seed = 0x5eedULL;
};

// Process-wide registry of named fault points. Production code calls
// MaybeFail(point) at instrumented sites; tests and benches arm points
// with a seeded probability to deterministically inject Status errors
// (and optional latency). All operations are thread-safe, and the
// disarmed fast path is a single relaxed atomic load.
class FaultInjector {
 public:
  static FaultInjector& Global();

  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);
  void DisarmAll();
  bool IsArmed(const std::string& point) const;

  // The instrumented-site hook: returns OK when `point` is not armed or
  // the Bernoulli draw passes; otherwise applies the spec's latency and
  // returns Status(spec.code, spec.message + " at <point>").
  Status MaybeFail(const std::string& point);

  // Times the point was reached / times it actually failed. Counters
  // survive Disarm (so a test can disarm and then audit) but are wiped
  // by ResetCounters.
  std::size_t HitCount(const std::string& point) const;
  std::size_t TripCount(const std::string& point) const;
  void ResetCounters();

  std::vector<std::string> ArmedPoints() const;

 private:
  FaultInjector() = default;

  struct PointState {
    FaultSpec spec;
    Rng rng{0};
    bool armed = false;
    std::size_t hits = 0;
    std::size_t trips = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, PointState> points_;
  std::atomic<int> armed_count_{0};
};

// RAII arming for tests: arms in the constructor, disarms in the
// destructor, so a failing ASSERT cannot leak an armed point into the
// next test.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultSpec spec) : point_(std::move(point)) {
    FaultInjector::Global().Arm(point_, std::move(spec));
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

}  // namespace bivoc

#endif  // BIVOC_UTIL_FAULT_INJECTION_H_
