#ifndef BIVOC_UTIL_STATUS_H_
#define BIVOC_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace bivoc {

// Error categories used across the BIVoC libraries. Modeled after the
// Arrow/RocksDB convention: fallible operations return a Status (or a
// Result<T>, see result.h) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kIoError,
  kCorruption,
  kInternal,
  // Transient overload: the operation was refused to protect the
  // service (load shedding); retrying after a backoff is expected.
  kUnavailable,
  // The operation's time budget ran out before it finished: a per-
  // attempt timeout, an RPC deadline, or a retry budget. Retryable by
  // default (the next attempt may land on a healthier replica).
  kDeadlineExceeded,
};

// Returns a stable human-readable name ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

// HTTP status for a StatusCode (table-driven; see status.cc). Every
// enum value maps: kOk -> 200, client errors -> 4xx, server faults ->
// 5xx, and kUnavailable -> 503 so load shedding reaches the wire as
// "retry later" (the gateway adds the Retry-After header).
int HttpStatusForCode(StatusCode code);

// Inverse-ish helper for wire decoding: the StatusCode a client should
// report for an HTTP status (404 -> kNotFound, 503 -> kUnavailable,
// other 4xx -> kInvalidArgument, 5xx -> kInternal).
StatusCode StatusCodeForHttp(int http_status);

// A cheap value type carrying success or an (error code, message) pair.
//
//   Status s = table.Append(row);
//   if (!s.ok()) return s;
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Propagates a non-OK Status from the current function.
#define BIVOC_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::bivoc::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace bivoc

#endif  // BIVOC_UTIL_STATUS_H_
