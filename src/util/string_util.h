#ifndef BIVOC_UTIL_STRING_UTIL_H_
#define BIVOC_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bivoc {

// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char delim);

// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

std::string TrimCopy(std::string_view s);

std::string ToLowerCopy(std::string_view s);
std::string ToUpperCopy(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

// True if every character is an ASCII digit (and s non-empty).
bool IsDigits(std::string_view s);

// True if s is ASCII-alphabetic only (and non-empty).
bool IsAlpha(std::string_view s);

// Replaces all occurrences of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

// Non-throwing numeric parses over the whole string (optional sign,
// no leading/trailing junk). Return false — leaving *out untouched —
// on malformed or out-of-range input; they never throw, unlike
// std::stoi/std::stod, which matters for noisy VoC annotation text.
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

// Formats with fixed decimals, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double v, int decimals);

// Renders n with thousands separators: 1234567 -> "1,234,567".
std::string WithThousands(int64_t n);

// Equality whose running time depends only on the lengths, never on
// where the strings first differ — for API-key comparison, where a
// timing side channel would let a caller binary-search a secret one
// byte at a time. Unequal lengths still compare every byte of `a`.
bool ConstantTimeEquals(std::string_view a, std::string_view b);

}  // namespace bivoc

#endif  // BIVOC_UTIL_STRING_UTIL_H_
