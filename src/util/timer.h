#ifndef BIVOC_UTIL_TIMER_H_
#define BIVOC_UTIL_TIMER_H_

#include <chrono>

namespace bivoc {

// Simple monotonic stopwatch for coarse pipeline timing.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bivoc

#endif  // BIVOC_UTIL_TIMER_H_
