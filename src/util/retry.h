#ifndef BIVOC_UTIL_RETRY_H_
#define BIVOC_UTIL_RETRY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace bivoc {

// Which error codes are worth another attempt by default: transient
// infrastructure failures. Data errors (InvalidArgument, Corruption,
// NotFound, ...) will fail the same way every time and are not retried.
bool DefaultRetryable(const Status& status);

// Declarative retry configuration: bounded attempts, exponential
// backoff with jitter, an overall deadline budget and a predicate
// selecting which Status codes are retryable. Used by the linking path,
// the batch ingestion front-end and the cluster router's per-shard RPC.
struct RetryPolicy {
  int max_attempts = 3;             // total attempts, including the first
  int64_t initial_backoff_ms = 0;   // 0 = no sleeping between attempts
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ms = 1000;
  double jitter = 0.5;              // backoff scaled by U[1-j, 1+j]
  int64_t deadline_ms = 0;          // total budget; 0 = unbounded

  // --- overlapped execution (cluster scatter path) -------------------
  // Either knob being non-zero switches Run to the overlapped engine:
  // each attempt runs on its own (detached) thread, so `op` MUST be
  // safe to invoke from several threads at once and must eventually
  // return even when abandoned (put its own deadline on any I/O).
  //
  // A hung attempt older than attempt_timeout_ms is written off: the
  // next attempt starts after the usual backoff, exactly as if the
  // attempt had failed at the timeout instant — so one hung RPC can
  // never consume the whole retry budget. A written-off attempt that
  // later succeeds still wins if Run is still waiting.
  int64_t attempt_timeout_ms = 0;   // 0 = attempts may run unbounded
  // Hedging: when the newest attempt has neither finished nor timed
  // out hedge_delay_ms after launch, the next attempt is launched
  // early, concurrently, with no backoff. First success wins.
  int64_t hedge_delay_ms = 0;       // 0 = no hedging
  // Budget gate for hedged launches (regular retries are never gated).
  // Each granted acquire is paired with one hedge_release call before
  // Run returns. Null = hedging always allowed.
  std::function<bool()> hedge_acquire;
  std::function<void()> hedge_release;

  std::function<bool(const Status&)> retryable;  // default: DefaultRetryable
  // Injectable sleeper for tests (default: std::this_thread::sleep_for).
  // Only honored by the sequential engine; the overlapped engine waits
  // on a condition variable so a winning attempt wakes it instantly.
  std::function<void(int64_t)> sleeper;
};

// Executes a fallible operation under a RetryPolicy. Jitter draws from
// a bivoc::Rng so retry schedules are reproducible from a seed.
//
//   Retrier retrier(policy, /*seed=*/42);
//   Status st = retrier.Run([&] { return linker.Link(doc); });
//   // retrier.last_attempts() attempts were made.
class Retrier {
 public:
  explicit Retrier(RetryPolicy policy, uint64_t seed = 0x5eedULL);

  // Runs `op` until it returns OK, a non-retryable error, the attempt
  // budget is exhausted, or the deadline would be exceeded by the next
  // backoff. Returns the last Status observed. With attempt_timeout_ms
  // or hedge_delay_ms set, attempts overlap (see RetryPolicy) and a
  // deadline/timeout expiry returns the last real failure, or
  // kDeadlineExceeded when every outstanding attempt is simply hung.
  Status Run(const std::function<Status()>& op);

  // Result<T>-returning flavor with the same semantics. Not usable with
  // the overlapped engine (attempts would race on the value slot).
  template <typename T>
  Result<T> Run(const std::function<Result<T>()>& op) {
    std::optional<T> value;
    Status st = Run([&]() -> Status {
      Result<T> r = op();
      if (!r.ok()) return r.status();
      value.emplace(r.MoveValue());
      return Status::OK();
    });
    if (!st.ok()) return st;
    return std::move(*value);
  }

  // Attempts made by the most recent Run (>= 1 once Run was called).
  int last_attempts() const { return last_attempts_; }

  // Backoff (ms, jittered) that Run would sleep before attempt
  // `attempt` (1-based; attempt 1 has no backoff). Exposed for tests.
  int64_t BackoffForAttempt(int attempt);

 private:
  Status RunSequential(const std::function<Status()>& op);
  Status RunOverlapped(const std::function<Status()>& op);

  RetryPolicy policy_;
  Rng rng_;
  int last_attempts_ = 0;
};

}  // namespace bivoc

#endif  // BIVOC_UTIL_RETRY_H_
