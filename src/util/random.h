#ifndef BIVOC_UTIL_RANDOM_H_
#define BIVOC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace bivoc {

// Deterministic, seedable PRNG (xoshiro256** seeded via splitmix64).
// Every stochastic component in BIVoC draws from an Rng so that corpora,
// noise channels and experiments are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Zipf-distributed rank in [0, n) with exponent s (s > 0). Heavier
  // head for larger s. Used for name/word popularity.
  int64_t Zipf(int64_t n, double s);

  // Samples an index in [0, weights.size()) proportional to weights.
  // Non-positive total weight falls back to uniform.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Uniformly chooses an element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(
        Uniform(0, static_cast<int64_t>(items.size()) - 1))];
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (std::size_t i = items->size() - 1; i > 0; --i) {
      std::size_t j =
          static_cast<std::size_t>(Uniform(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  // Forks an independent stream (hash of current state + tag); handy for
  // giving each synthetic entity its own deterministic sub-stream.
  Rng Fork(uint64_t tag);

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
  // Memoized Zipf normalization for (n, s); regeneration is cheap but
  // the generators call Zipf in tight loops with fixed parameters.
  int64_t zipf_n_ = -1;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace bivoc

#endif  // BIVOC_UTIL_RANDOM_H_
