#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace bivoc {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string TrimCopy(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLowerCopy(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpperCopy(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool IsAlpha(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalpha(c) != 0;
  });
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out += s.substr(start);
      break;
    }
    out += s.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  if (*begin == '+') {
    ++begin;  // from_chars accepts '-' but not '+'
    if (begin == end || *begin == '-') return false;
  }
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return false;
  *out = value;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  if (*begin == '+') {
    ++begin;
    if (begin == end || *begin == '-') return false;
  }
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return false;
  *out = value;
  return true;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string WithThousands(int64_t n) {
  bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  std::reverse(out.begin(), out.end());
  return out;
}

bool ConstantTimeEquals(std::string_view a, std::string_view b) {
  // Fold the length difference into the accumulator instead of
  // returning early, and always walk all of `a` (the attacker-supplied
  // side), indexing `b` modulo its size so no byte position ever
  // shortens the loop.
  unsigned char acc = a.size() == b.size() ? 0 : 1;
  if (b.empty()) return a.empty();
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<unsigned char>(
        acc | (static_cast<unsigned char>(a[i]) ^
               static_cast<unsigned char>(b[i % b.size()])));
  }
  return acc == 0;
}

}  // namespace bivoc
