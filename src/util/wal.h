#ifndef BIVOC_UTIL_WAL_H_
#define BIVOC_UTIL_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace bivoc {

// Append-only, CRC32-checksummed, length-prefixed record log — the
// substrate of the ingest write-ahead journal (core/persist.h).
//
// File layout:
//
//   header:  "BVWAL001" (8 bytes) | u64 user_token
//   record:  u32 marker (0x57A1C0DE) | u32 length | u32 crc32(payload)
//            | payload bytes
//
// The `user_token` is an opaque value the owner stamps when the log is
// created or rewritten (the ingest journal stores the base sequence
// number there so document sequence ids survive log truncation).
//
// The per-record marker makes corruption *local*: a reader hitting a
// bad CRC or an impossible length counts the record as corrupt and
// scans forward for the next marker instead of abandoning the rest of
// the log. A record that runs past end-of-file is a torn tail — the
// bytes are counted and dropped, which is exactly the crash-mid-append
// case the WAL exists to make safe.
//
// Writers append whole records with a single write() call and expose
// an explicit Sync() (fsync) so callers choose their durability
// points; TruncateTo() rolls back a partially journaled batch. The
// write path checks the "io.write" / "io.fsync" fault points.

struct WalReadResult {
  uint64_t user_token = 0;
  std::vector<std::string> records;
  std::size_t corrupt_records = 0;  // bad marker/length/CRC, skipped
  std::size_t truncated_bytes = 0;  // torn tail dropped at EOF
};

// Reads every intact record. Missing file -> kNotFound; a missing or
// mangled header -> kCorruption (nothing in the file can be trusted
// without it); record-level damage is *not* an error — it is reported
// in the result so recovery can count what it skipped.
Result<WalReadResult> ReadWal(const std::string& path);

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens for appending, creating the file (with `token_if_new`) when
  // absent. An existing file must carry a valid header.
  Status Open(const std::string& path, uint64_t token_if_new = 0);

  // Atomically replaces the log with a fresh one holding `records` and
  // the given token, via temp-file + fsync + rename ("io.rename"
  // checked). Used to truncate the journal behind a checkpoint. The
  // writer must be re-Open()ed afterwards.
  static Status Rewrite(const std::string& path, uint64_t token,
                        const std::vector<std::string>& records);

  Status Append(std::string_view payload);
  Status Sync();

  // Rolls the file back to `size` bytes (a pre-batch offset captured
  // from size()); the in-memory position follows.
  Status TruncateTo(uint64_t size);

  Status Close();

  bool is_open() const { return fd_ >= 0; }
  // Current file size in bytes (header included).
  uint64_t size() const { return size_; }
  uint64_t user_token() const { return user_token_; }
  const std::string& path() const { return path_; }

  static uint64_t HeaderSize();

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t size_ = 0;
  uint64_t user_token_ = 0;
};

}  // namespace bivoc

#endif  // BIVOC_UTIL_WAL_H_
