#ifndef BIVOC_UTIL_CHECKPOINT_IO_H_
#define BIVOC_UTIL_CHECKPOINT_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace bivoc {

// Durable-blob I/O used by checkpoints and the WAL machinery:
//
//  * BinaryWriter / BinaryReader — a tiny length-checked binary codec
//    (fixed-width little-endian integers, length-prefixed strings).
//    The reader never walks past its buffer: every decode error
//    surfaces as StatusCode::kCorruption instead of UB, which is what
//    lets recovery treat a flipped bit as "skip + count", not a crash.
//
//  * WriteChecksummedFileAtomic / ReadChecksummedFile — a whole-file
//    blob wrapped in magic + length + CRC32, committed by write-to-
//    temp, fsync, atomic rename. A reader either sees the complete
//    previous file or the complete new one, never a torn mixture.
//
//  * TruncateFileTo / FlipBitInFile — corruption injection for tests:
//    simulate torn writes and bit rot against real files.
//
// The write path checks the FaultInjector points "io.write",
// "io.fsync" and "io.rename" so tests can kill the process's
// durability at any of the three commit steps.

// --- binary codec ----------------------------------------------------

class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  // u32 length prefix + raw bytes.
  void PutString(std::string_view s);

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  std::string buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view buf) : buf_(buf) {}

  Status ReadU8(uint8_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadI64(int64_t* v);
  Status ReadDouble(double* v);
  Status ReadString(std::string* s);

  bool AtEnd() const { return pos_ >= buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  Status Take(std::size_t n, const char** out);

  std::string_view buf_;
  std::size_t pos_ = 0;
};

// --- checksummed whole-file blobs ------------------------------------

// File layout: "BVCKPT01" (8 bytes) | u32 crc32(payload) | u64 length |
// payload. Committed atomically (temp + fsync + rename); the
// destination directory is fsynced too so the rename itself is
// durable.
Status WriteChecksummedFileAtomic(const std::string& path,
                                  std::string_view payload);

// Returns the payload, or kNotFound (no file) / kCorruption (bad
// magic, length mismatch, CRC mismatch) / kIoError.
Result<std::string> ReadChecksummedFile(const std::string& path);

// --- plain file helpers ----------------------------------------------

Result<uint64_t> FileSizeOf(const std::string& path);

// --- corruption injection (tests / recovery drills) ------------------

// Truncates the file to `size` bytes — a torn write at that offset.
Status TruncateFileTo(const std::string& path, uint64_t size);

// Flips bit `bit` (0-7) of the byte at `offset` — simulated bit rot.
Status FlipBitInFile(const std::string& path, uint64_t offset, int bit);

namespace internal {

// Shared low-level write plumbing (also used by the WAL writer).
Status WriteAllToFd(int fd, std::string_view data, const std::string& path);
// fsync the directory containing `path` so a completed rename survives
// a crash; best-effort (some filesystems reject directory fsync).
void SyncParentDir(const std::string& path);
std::string ErrnoMessage(const char* op, const std::string& path);

}  // namespace internal

}  // namespace bivoc

#endif  // BIVOC_UTIL_CHECKPOINT_IO_H_
