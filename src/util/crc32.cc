#include "util/crc32.h"

#include <array>

namespace bivoc {
namespace {

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kCrcTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace bivoc
