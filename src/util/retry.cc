#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace bivoc {

bool DefaultRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kInternal:
    case StatusCode::kFailedPrecondition:
      return true;
    default:
      return false;
  }
}

Retrier::Retrier(RetryPolicy policy, uint64_t seed)
    : policy_(std::move(policy)), rng_(seed) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  if (!policy_.retryable) policy_.retryable = DefaultRetryable;
}

int64_t Retrier::BackoffForAttempt(int attempt) {
  if (attempt <= 1 || policy_.initial_backoff_ms <= 0) return 0;
  double backoff = static_cast<double>(policy_.initial_backoff_ms);
  for (int i = 2; i < attempt; ++i) backoff *= policy_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(policy_.max_backoff_ms));
  if (policy_.jitter > 0.0) {
    double lo = std::max(0.0, 1.0 - policy_.jitter);
    double hi = 1.0 + policy_.jitter;
    backoff *= lo + (hi - lo) * rng_.NextDouble();
  }
  return static_cast<int64_t>(backoff);
}

Status Retrier::Run(const std::function<Status()>& op) {
  const auto start = std::chrono::steady_clock::now();
  Status last = Status::OK();
  last_attempts_ = 0;
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) {
      int64_t backoff_ms = BackoffForAttempt(attempt);
      if (policy_.deadline_ms > 0) {
        auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        // Do not start an attempt whose backoff alone would blow the
        // budget; report the last real failure instead.
        if (elapsed + backoff_ms > policy_.deadline_ms) break;
      }
      if (backoff_ms > 0) {
        if (policy_.sleeper) {
          policy_.sleeper(backoff_ms);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        }
      }
    }
    ++last_attempts_;
    last = op();
    if (last.ok() || !policy_.retryable(last)) return last;
  }
  return last;
}

}  // namespace bivoc
