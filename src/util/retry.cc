#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace bivoc {

bool DefaultRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kInternal:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

Retrier::Retrier(RetryPolicy policy, uint64_t seed)
    : policy_(std::move(policy)), rng_(seed) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  if (!policy_.retryable) policy_.retryable = DefaultRetryable;
}

int64_t Retrier::BackoffForAttempt(int attempt) {
  if (attempt <= 1 || policy_.initial_backoff_ms <= 0) return 0;
  double backoff = static_cast<double>(policy_.initial_backoff_ms);
  for (int i = 2; i < attempt; ++i) backoff *= policy_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(policy_.max_backoff_ms));
  if (policy_.jitter > 0.0) {
    double lo = std::max(0.0, 1.0 - policy_.jitter);
    double hi = 1.0 + policy_.jitter;
    backoff *= lo + (hi - lo) * rng_.NextDouble();
  }
  return static_cast<int64_t>(backoff);
}

Status Retrier::Run(const std::function<Status()>& op) {
  if (policy_.attempt_timeout_ms > 0 || policy_.hedge_delay_ms > 0) {
    return RunOverlapped(op);
  }
  return RunSequential(op);
}

Status Retrier::RunSequential(const std::function<Status()>& op) {
  const auto start = std::chrono::steady_clock::now();
  Status last = Status::OK();
  last_attempts_ = 0;
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (attempt > 1) {
      int64_t backoff_ms = BackoffForAttempt(attempt);
      if (policy_.deadline_ms > 0) {
        auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        // Do not start an attempt whose backoff alone would blow the
        // budget; report the last real failure instead.
        if (elapsed + backoff_ms > policy_.deadline_ms) break;
      }
      if (backoff_ms > 0) {
        if (policy_.sleeper) {
          policy_.sleeper(backoff_ms);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        }
      }
    }
    ++last_attempts_;
    last = op();
    if (last.ok() || !policy_.retryable(last)) return last;
  }
  return last;
}

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int64_t kFarFuture = INT64_MAX / 2;

// State shared between Run and its detached attempt threads. The
// threads outlive Run when an attempt hangs past its write-off, so the
// board is refcounted and owns everything a late attempt touches.
struct AttemptBoard {
  std::mutex mu;
  std::condition_variable cv;
  bool settled = false;   // final result chosen (success or non-retryable)
  Status final_result;
  int finished = 0;       // attempts that returned (any outcome)
  bool have_failure = false;
  Status last_failure;
  int64_t last_failure_at_ms = 0;
  std::function<bool(const Status&)> retryable;
};

}  // namespace

Status Retrier::RunOverlapped(const std::function<Status()>& op) {
  auto board = std::make_shared<AttemptBoard>();
  board->retryable = policy_.retryable;

  const int64_t start_ms = SteadyNowMs();
  const int64_t overall_deadline =
      policy_.deadline_ms > 0 ? start_ms + policy_.deadline_ms : kFarFuture;
  const int64_t attempt_timeout =
      policy_.attempt_timeout_ms > 0 ? policy_.attempt_timeout_ms
                                     : kFarFuture;
  const int64_t hedge_delay =
      policy_.hedge_delay_ms > 0 ? policy_.hedge_delay_ms : kFarFuture;

  int started = 0;
  int hedges_held = 0;
  bool hedge_denied_for_current = false;
  int64_t youngest_launch_ms = 0;
  // Jittered backoff for attempt (started + 1), drawn at most once per
  // attempt index so write-off checks do not re-roll the dice.
  std::optional<int64_t> pending_backoff;

  std::unique_lock<std::mutex> lock(board->mu);

  auto launch = [&] {
    ++started;
    youngest_launch_ms = SteadyNowMs();
    pending_backoff.reset();
    hedge_denied_for_current = false;
    std::thread([op, board] {
      Status s = op();
      std::lock_guard<std::mutex> lk(board->mu);
      ++board->finished;
      if (!board->settled && (s.ok() || !board->retryable(s))) {
        board->settled = true;
        board->final_result = s;
      } else if (!s.ok()) {
        board->have_failure = true;
        board->last_failure = s;
        board->last_failure_at_ms = SteadyNowMs();
      }
      board->cv.notify_all();
    }).detach();
  };

  auto finish = [&](Status result) {
    last_attempts_ = started;
    lock.unlock();
    if (policy_.hedge_release) {
      for (int i = 0; i < hedges_held; ++i) policy_.hedge_release();
    }
    return result;
  };

  launch();
  for (;;) {
    if (board->settled) return finish(board->final_result);

    const int64_t now = SteadyNowMs();
    if (now >= overall_deadline) {
      return finish(board->have_failure
                        ? board->last_failure
                        : Status::DeadlineExceeded(
                              "retry deadline exceeded with attempt(s) "
                              "still outstanding"));
    }

    const int outstanding = started - board->finished;
    const int64_t write_off_at = youngest_launch_ms + attempt_timeout;

    int64_t next_event = overall_deadline;
    if (started < policy_.max_attempts) {
      if (!pending_backoff.has_value() &&
          (outstanding == 0 || now >= write_off_at)) {
        // The newest attempt failed (or was just written off): fix the
        // jittered backoff for the follow-up attempt now.
        pending_backoff = BackoffForAttempt(started + 1);
      }
      int64_t launch_at = kFarFuture;
      if (pending_backoff.has_value()) {
        const int64_t failed_at = outstanding == 0
                                      ? board->last_failure_at_ms
                                      : std::min(write_off_at, now);
        launch_at = failed_at + *pending_backoff;
      }
      if (outstanding > 0 && !hedge_denied_for_current) {
        const int64_t hedge_at = youngest_launch_ms + hedge_delay;
        if (hedge_at <= launch_at) {
          if (now >= hedge_at) {
            if (!policy_.hedge_acquire || policy_.hedge_acquire()) {
              if (policy_.hedge_acquire) ++hedges_held;
              launch();
              continue;
            }
            // Budget exhausted: no hedge for this attempt; the regular
            // failure/write-off path still applies.
            hedge_denied_for_current = true;
          } else {
            launch_at = std::min(launch_at, hedge_at);
          }
        }
      }
      if (now >= launch_at) {
        launch();
        continue;
      }
      next_event = std::min(next_event, launch_at);
    } else {
      // Attempt budget exhausted. All failed -> report; all hung past
      // their write-off -> stop waiting for them.
      if (outstanding == 0) return finish(board->last_failure);
      if (now >= write_off_at) {
        return finish(board->have_failure
                          ? board->last_failure
                          : Status::DeadlineExceeded(
                                "all attempts timed out (attempt timeout " +
                                std::to_string(policy_.attempt_timeout_ms) +
                                " ms)"));
      }
      next_event = std::min(next_event, write_off_at);
    }
    if (outstanding > 0) next_event = std::min(next_event, write_off_at);

    // +1 ms absorbs the truncation in SteadyNowMs so a wake-up never
    // lands a hair *before* the event it was scheduled for (which
    // would re-wait on the same instant in a busy loop).
    board->cv.wait_until(
        lock, std::chrono::steady_clock::time_point(
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::milliseconds(next_event + 1))));
  }
}

}  // namespace bivoc
