#include "util/fault_injection.h"

#include <chrono>
#include <thread>

namespace bivoc {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.rng.Seed(spec.seed);
  state.spec = std::move(spec);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : points_) {
    if (state.armed) {
      state.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool FaultInjector::IsArmed(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it != points_.end() && it->second.armed;
}

Status FaultInjector::MaybeFail(const std::string& point) {
  // Fast path: nothing armed anywhere — no lock, no map lookup. This
  // keeps production ingestion at full speed when injection is off.
  if (armed_count_.load(std::memory_order_relaxed) == 0) return Status::OK();

  int64_t latency_ms = 0;
  Status failure = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return Status::OK();
    PointState& state = it->second;
    ++state.hits;
    if (!state.rng.Bernoulli(state.spec.probability)) return Status::OK();
    ++state.trips;
    latency_ms = state.spec.latency_ms;
    failure = Status(state.spec.code,
                     state.spec.message + " at " + point);
  }
  // Sleep outside the lock so a slow fault cannot serialize other
  // points (or other threads hitting this one).
  if (latency_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(latency_ms));
  }
  return failure;
}

std::size_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::size_t FaultInjector::TripCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.trips;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : points_) {
    state.hits = 0;
    state.trips = 0;
  }
}

std::vector<std::string> FaultInjector::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, state] : points_) {
    if (state.armed) out.push_back(name);
  }
  return out;
}

}  // namespace bivoc
