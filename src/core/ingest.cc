#include "core/ingest.h"

#include <chrono>
#include <sstream>

#include "core/persist.h"
#include "util/logging.h"

namespace bivoc {

std::string ComposeRouteKey(std::string_view tenant, std::string_view base) {
  if (tenant.empty()) return std::string(base);
  std::string key;
  key.reserve(tenant.size() + 1 + base.size());
  key.append(tenant);
  key.push_back('\x1f');
  key.append(base);
  return key;
}

// ---------------------------------------------------------------------------
// CircuitBreaker

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options()) {}

CircuitBreaker::CircuitBreaker(Options options) : opts_(std::move(options)) {
  if (opts_.failure_threshold < 1) opts_.failure_threshold = 1;
  if (opts_.half_open_successes < 1) opts_.half_open_successes = 1;
}

int64_t CircuitBreaker::NowMs() const {
  if (opts_.clock_ms) return opts_.clock_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      if (NowMs() - opened_at_ms_ >= opts_.cool_off_ms) {
        state_ = State::kHalfOpen;
        probe_successes_ = 0;
        return true;
      }
      ++short_circuited_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (++probe_successes_ >= opts_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case State::kOpen:
      // Late result from a call admitted before the trip; ignore.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= opts_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_ms_ = NowMs();
        ++times_opened_;
      }
      break;
    case State::kHalfOpen:
      // A failed probe re-opens immediately and restarts the cool-off.
      state_ = State::kOpen;
      opened_at_ms_ = NowMs();
      ++times_opened_;
      break;
    case State::kOpen:
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::size_t CircuitBreaker::times_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return times_opened_;
}

std::size_t CircuitBreaker::short_circuited() const {
  std::lock_guard<std::mutex> lock(mu_);
  return short_circuited_;
}

const char* CircuitBreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// DeadLetterQueue

DeadLetterQueue::DeadLetterQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool DeadLetterQueue::Push(DeadLetter letter) {
  std::lock_guard<std::mutex> lock(mu_);
  if (letters_.size() >= capacity_) {
    ++overflowed_;
    ++overflow_since_warn_;
    // Rate-limited so a sustained outage logs one line per interval,
    // not one per dropped document.
    constexpr int64_t kWarnIntervalMs = 1000;
    const int64_t now_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (last_overflow_warn_ms_ == 0 ||
        now_ms - last_overflow_warn_ms_ >= kWarnIntervalMs) {
      BIVOC_LOG(Warning) << "dead-letter queue full (capacity " << capacity_
                         << "); dropped " << overflow_since_warn_
                         << " letter(s) since last warning, "
                         << overflowed_ << " total";
      last_overflow_warn_ms_ = now_ms;
      overflow_since_warn_ = 0;
    }
    return false;
  }
  letters_.push_back(std::move(letter));
  return true;
}

std::vector<DeadLetter> DeadLetterQueue::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DeadLetter> out(std::make_move_iterator(letters_.begin()),
                              std::make_move_iterator(letters_.end()));
  letters_.clear();
  return out;
}

std::vector<DeadLetter> DeadLetterQueue::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) return {};  // one drain at a time
  draining_ = true;
  in_flight_.assign(std::make_move_iterator(letters_.begin()),
                    std::make_move_iterator(letters_.end()));
  letters_.clear();
  acked_.assign(in_flight_.size(), 0);
  return in_flight_;
}

void DeadLetterQueue::Ack(std::size_t drain_index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_ && drain_index < acked_.size()) acked_[drain_index] = 1;
}

std::size_t DeadLetterQueue::EndDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!draining_) return 0;
  std::size_t restored = 0;
  for (std::size_t i = 0; i < in_flight_.size(); ++i) {
    if (!acked_[i]) {
      // Restore past capacity if need be: the letter was admitted once
      // and must not be lost to a failed drain.
      letters_.push_back(std::move(in_flight_[i]));
      ++restored;
    }
  }
  in_flight_.clear();
  acked_.clear();
  draining_ = false;
  return restored;
}

std::vector<DeadLetter> DeadLetterQueue::Peek() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {letters_.begin(), letters_.end()};
}

std::size_t DeadLetterQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return letters_.size();
}

std::size_t DeadLetterQueue::overflowed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overflowed_;
}

// ---------------------------------------------------------------------------
// HealthReport

JsonValue HealthReportToJson(const HealthReport& report) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("submitted", JsonValue(report.submitted));
  obj.Set("processed", JsonValue(report.processed));
  obj.Set("dropped", JsonValue(report.dropped));
  obj.Set("degraded", JsonValue(report.degraded));
  obj.Set("retried", JsonValue(report.retried));
  obj.Set("dead_lettered", JsonValue(report.dead_lettered));
  obj.Set("dead_letter_overflow", JsonValue(report.dead_letter_overflow));
  obj.Set("short_circuited", JsonValue(report.short_circuited));
  obj.Set("replayed", JsonValue(report.replayed));

  JsonValue breaker = JsonValue::MakeObject();
  breaker.Set("state",
              JsonValue(CircuitBreakerStateName(report.breaker_state)));
  breaker.Set("opened", JsonValue(report.breaker_opened));
  obj.Set("breaker", std::move(breaker));

  JsonValue pipe = JsonValue::MakeObject();
  pipe.Set("processed", JsonValue(report.pipeline.processed));
  pipe.Set("dropped_spam", JsonValue(report.pipeline.dropped_spam));
  pipe.Set("dropped_non_english",
           JsonValue(report.pipeline.dropped_non_english));
  pipe.Set("linked", JsonValue(report.pipeline.linked));
  pipe.Set("unlinked", JsonValue(report.pipeline.unlinked));
  obj.Set("pipeline", std::move(pipe));

  JsonValue durability = JsonValue::MakeObject();
  durability.Set("enabled", JsonValue(report.durability.enabled));
  if (report.durability.enabled) {
    durability.Set("wal_records_appended",
                   JsonValue(report.durability.wal_records_appended));
    durability.Set("wal_append_failures",
                   JsonValue(report.durability.wal_append_failures));
    durability.Set("wal_batches_rolled_back",
                   JsonValue(report.durability.wal_batches_rolled_back));
    durability.Set("wal_records_replayed",
                   JsonValue(report.durability.wal_records_replayed));
    durability.Set("wal_corrupt_records",
                   JsonValue(report.durability.wal_corrupt_records));
    durability.Set("checkpoint_generation",
                   JsonValue(report.durability.checkpoint_generation));
    durability.Set("checkpoint_fallbacks",
                   JsonValue(report.durability.checkpoint_fallbacks));
    durability.Set("docs_from_checkpoint",
                   JsonValue(report.durability.docs_from_checkpoint));
  }
  obj.Set("durability", std::move(durability));

  obj.Set("serving", report.serving.ToJson());
  return obj;
}

std::string HealthReport::ToString() const {
  return DumpJson(HealthReportToJson(*this));
}

// ---------------------------------------------------------------------------
// IngestService

IngestService::IngestService(VocPipeline* pipeline, IngestOptions options)
    : pipeline_(pipeline),
      opts_(std::move(options)),
      pool_(opts_.num_threads),
      breaker_(opts_.breaker),
      dead_letters_(opts_.dead_letter_capacity) {}

bool IngestService::ProcessOne(const IngestItem& item, int prior_attempts,
                               Counters* counters) {
  const uint64_t seed =
      opts_.seed ^ (0x9e3779b97f4a7c15ULL *
                    (seed_counter_.fetch_add(1, std::memory_order_relaxed) + 1));

  // Stage 1: clean + filter + annotate + extract (fault point
  // "clean.<channel>"). A document that cannot be cleaned after
  // retries is dead-lettered; the rest of the batch is untouched.
  Retrier clean_retrier(opts_.clean_retry, seed);
  Result<Document> doc_or = clean_retrier.Run<Document>(
      [&] { return pipeline_->TryProcess(item.channel, item.payload,
                                         item.time_bucket); });
  counters->retried.fetch_add(
      static_cast<std::size_t>(clean_retrier.last_attempts() - 1));
  int attempts = prior_attempts + clean_retrier.last_attempts();
  if (!doc_or.ok()) {
    counters->dead_lettered.fetch_add(1);
    dead_letters_.Push(DeadLetter{item, doc_or.status(), attempts});
    return false;
  }
  Document doc = doc_or.MoveValue();
  if (doc.dropped) {
    // Spam / non-English: a deliberate filter verdict, not a fault.
    counters->dropped.fetch_add(1);
    return true;
  }

  // Stage 2: link behind the circuit breaker (fault point
  // "linker.link"). Failure here never kills the document — it
  // degrades to unlinked-but-indexed so mining still sees its text.
  if (pipeline_->has_linker()) {
    if (breaker_.Allow()) {
      Retrier link_retrier(opts_.link_retry, seed + 1);
      Status st =
          link_retrier.Run([&] { return pipeline_->LinkDocument(&doc); });
      counters->retried.fetch_add(
          static_cast<std::size_t>(link_retrier.last_attempts() - 1));
      if (st.ok()) {
        breaker_.RecordSuccess();
      } else {
        breaker_.RecordFailure();
        counters->degraded.fetch_add(1);
      }
    } else {
      counters->short_circuited.fetch_add(1);
      counters->degraded.fetch_add(1);
    }
  }

  // Stage 3: index (fault point "index.add"). The concept index
  // stripes its delta buffers by ConceptId, so workers index
  // concurrently — no batch-wide lock here.
  Retrier index_retrier(opts_.index_retry, seed + 2);
  Result<DocId> id_or = index_retrier.Run<DocId>(
      [&] {
        return pipeline_->TryIndexDocument(doc, item.structured_keys,
                                           item.tenant);
      });
  counters->retried.fetch_add(
      static_cast<std::size_t>(index_retrier.last_attempts() - 1));
  attempts += index_retrier.last_attempts();
  if (!id_or.ok()) {
    counters->dead_lettered.fetch_add(1);
    dead_letters_.Push(DeadLetter{item, id_or.status(), attempts});
    return false;
  }
  counters->processed.fetch_add(1);
  return true;
}

void IngestService::FillShared(HealthReport* report) const {
  report->dead_letter_overflow = dead_letters_.overflowed();
  report->breaker_state = breaker_.state();
  report->breaker_opened = breaker_.times_opened();
  report->pipeline = pipeline_->stats().Read();
  if (journal_ != nullptr) {
    report->durability.enabled = true;
    report->durability.wal_records_appended = journal_->records_appended();
    report->durability.wal_append_failures = journal_->append_failures();
    report->durability.wal_batches_rolled_back =
        journal_->batches_rolled_back();
  }
}

HealthReport IngestService::RunBatch(const std::vector<IngestItem>& items,
                                     bool journal) {
  submitted_total_.fetch_add(items.size());
  Counters local;

  // Journal-before-process: every accepted item hits the fsynced WAL
  // before any pipeline stage sees it. A failed append rolls the log
  // back to the pre-batch bookmark and dead-letters the whole batch —
  // nothing half-journaled is ever processed, so the ack contract
  // holds: when this returns, each item is durable or dead-lettered.
  if (journal && journal_ != nullptr) {
    const IngestJournal::Bookmark mark = journal_->bookmark();
    Status journal_status;
    for (const IngestItem& item : items) {
      Result<uint64_t> seq_or = journal_->Append(item);
      if (!seq_or.ok()) {
        journal_status = seq_or.status();
        break;
      }
    }
    if (journal_status.ok()) journal_status = journal_->Sync();
    if (!journal_status.ok()) {
      journal_->CountAppendFailure();
      Status rb = journal_->Rollback(mark);
      if (rb.ok()) {
        journal_->CountRollback();
      } else {
        BIVOC_LOG(Error) << "journal rollback failed: " << rb.ToString()
                         << " (log may carry a partial batch; replay "
                            "dedupes by sequence id)";
      }
      BIVOC_LOG(Warning) << "batch of " << items.size()
                         << " dead-lettered: journal append failed: "
                         << journal_status.ToString();
      for (const IngestItem& item : items) {
        local.dead_lettered.fetch_add(1);
        dead_letters_.Push(DeadLetter{item, journal_status, 0});
      }
      HealthReport report;
      report.submitted = items.size();
      report.dead_lettered = local.dead_lettered.load();
      total_.dead_lettered.fetch_add(report.dead_lettered);
      FillShared(&report);
      return report;
    }
  }

  pool_.ParallelFor(items.size(), [this, &items, &local](std::size_t i) {
    ProcessOne(items[i], /*prior_attempts=*/0, &local);
  });
  // One publish per batch: everything this batch indexed becomes
  // visible to snapshot readers atomically.
  pipeline_->PublishIndex();

  HealthReport report;
  report.submitted = items.size();
  report.processed = local.processed.load();
  report.dropped = local.dropped.load();
  report.degraded = local.degraded.load();
  report.retried = local.retried.load();
  report.dead_lettered = local.dead_lettered.load();
  report.short_circuited = local.short_circuited.load();

  total_.processed.fetch_add(report.processed);
  total_.dropped.fetch_add(report.dropped);
  total_.degraded.fetch_add(report.degraded);
  total_.retried.fetch_add(report.retried);
  total_.dead_lettered.fetch_add(report.dead_lettered);
  total_.short_circuited.fetch_add(report.short_circuited);

  FillShared(&report);
  return report;
}

HealthReport IngestService::IngestBatch(const std::vector<IngestItem>& items) {
  return RunBatch(items, /*journal=*/true);
}

HealthReport IngestService::ReplayJournal(const std::vector<IngestItem>& items) {
  // Recovery replay: the items come *from* the WAL, so journaling them
  // again would double-log every document on each restart.
  return RunBatch(items, /*journal=*/false);
}

HealthReport IngestService::Ingest(const IngestItem& item) {
  return IngestBatch({item});
}

HealthReport IngestService::ReplayDeadLetters() {
  // Two-phase drain: letters stay parked in the queue's in-flight area
  // until their replay attempt finishes. ProcessOne re-queues a fresh
  // letter itself when the replay fails, so each handled index is
  // acknowledged either way; EndDrain restores only letters whose
  // worker died before acknowledging. Replays are never re-journaled —
  // a letter is either already in the WAL (journaled on first arrival)
  // or predates durability; re-appending would double-count it against
  // a checkpoint's dead-letter snapshot.
  std::vector<DeadLetter> letters = dead_letters_.BeginDrain();
  Counters local;
  pool_.ParallelFor(letters.size(), [this, &letters, &local](std::size_t i) {
    if (ProcessOne(letters[i].item, letters[i].attempts, &local)) {
      local.replayed.fetch_add(1);
    }
    dead_letters_.Ack(i);
  });
  const std::size_t restored = dead_letters_.EndDrain();
  if (restored != 0) {
    BIVOC_LOG(Warning) << "dead-letter replay: " << restored
                       << " letter(s) restored unprocessed";
  }
  pipeline_->PublishIndex();

  HealthReport report;
  report.submitted = letters.size();
  report.processed = local.processed.load();
  report.dropped = local.dropped.load();
  report.degraded = local.degraded.load();
  report.retried = local.retried.load();
  report.dead_lettered = local.dead_lettered.load();
  report.short_circuited = local.short_circuited.load();
  report.replayed = local.replayed.load();

  // Every letter was already counted dead_lettered when it first
  // failed: recoveries move into processed/dropped (so the cumulative
  // dead-letter count shrinks); re-failures stay counted exactly once.
  total_.processed.fetch_add(report.processed);
  total_.dropped.fetch_add(report.dropped);
  total_.degraded.fetch_add(report.degraded);
  total_.retried.fetch_add(report.retried);
  total_.short_circuited.fetch_add(report.short_circuited);
  total_.replayed.fetch_add(report.replayed);
  total_.dead_lettered.fetch_sub(report.replayed);

  FillShared(&report);
  return report;
}

HealthReport IngestService::report() const {
  HealthReport report;
  report.submitted = submitted_total_.load();
  report.processed = total_.processed.load();
  report.dropped = total_.dropped.load();
  report.degraded = total_.degraded.load();
  report.retried = total_.retried.load();
  report.dead_lettered = total_.dead_lettered.load();
  report.short_circuited = total_.short_circuited.load();
  report.replayed = total_.replayed.load();
  FillShared(&report);
  return report;
}

}  // namespace bivoc
