#ifndef BIVOC_CORE_PIPELINE_H_
#define BIVOC_CORE_PIPELINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "annotate/concept_extractor.h"
#include "clean/email_cleaner.h"
#include "clean/language_filter.h"
#include "clean/segmenter.h"
#include "clean/sms_normalizer.h"
#include "clean/spam_filter.h"
#include "core/document.h"
#include "linking/annotator.h"
#include "linking/multitype.h"
#include "mining/concept_index.h"
#include "util/result.h"

namespace bivoc {

// The data-processing spine of Fig. 3: channel-specific cleaning, named
// entity annotation, structured-record linking, concept extraction, and
// concept indexing. Components are injected so use cases can share or
// specialize them; the linker is optional (nullptr = skip linking).
class VocPipeline {
 public:
  // Counters are atomic so concurrent IngestService workers can bump
  // them without a lock; use Read() for a consistent plain-value copy.
  struct Stats {
    std::atomic<std::size_t> processed{0};
    std::atomic<std::size_t> dropped_spam{0};
    std::atomic<std::size_t> dropped_non_english{0};
    std::atomic<std::size_t> linked{0};
    std::atomic<std::size_t> unlinked{0};

    struct Snapshot {
      std::size_t processed = 0;
      std::size_t dropped_spam = 0;
      std::size_t dropped_non_english = 0;
      std::size_t linked = 0;
      std::size_t unlinked = 0;
    };
    Snapshot Read() const {
      Snapshot s;
      s.processed = processed.load();
      s.dropped_spam = dropped_spam.load();
      s.dropped_non_english = dropped_non_english.load();
      s.linked = linked.load();
      s.unlinked = unlinked.load();
      return s;
    }
  };

  VocPipeline();

  // Wiring (all optional except the extractor, which always exists).
  void SetLinker(MultiTypeLinker* linker) { linker_ = linker; }
  void SetAnnotators(AnnotatorPipeline* annotators) {
    annotators_ = annotators;
  }
  // Known non-customer names (e.g. the agent roster); single-token
  // name annotations matching the roster are dropped before linking.
  void SetNameRoster(std::vector<std::string> roster);
  ConceptExtractor* mutable_extractor() { return &extractor_; }
  SmsNormalizer* mutable_sms_normalizer() { return &sms_normalizer_; }
  SpamFilter* mutable_spam_filter() { return &spam_filter_; }
  LanguageFilter* mutable_language_filter() { return &language_filter_; }

  // Channel entry points. `time_bucket` feeds trend analysis.
  Document ProcessEmail(const std::string& raw, int64_t time_bucket = 0);
  Document ProcessSms(const std::string& raw, int64_t time_bucket = 0);
  // Transcripts arrive already decoded (the ASR substrate runs
  // upstream); no spam/language filtering applies.
  Document ProcessTranscript(const std::string& text,
                             int64_t time_bucket = 0);

  // --- Status-returning stage API used by IngestService -------------
  // These split the Process* chain into fault-isolatable stages and
  // check the FaultInjector points "clean.<channel>", "linker.link"
  // and "index.add". They are what batch ingestion retries and
  // dead-letters around; the legacy Process* entry points above are
  // unaffected by armed fault points.

  // Cleaning + filtering + annotation + concept extraction, but no
  // linking (that stage is driven separately so the ingest layer can
  // put a circuit breaker around it). Safe to call concurrently.
  Result<Document> TryProcess(VocChannel channel, const std::string& raw,
                              int64_t time_bucket = 0);

  // Links `doc` against the warehouse (no-op without a linker).
  // Returns an error without touching the doc when the "linker.link"
  // fault point fires; callers degrade the doc to unlinked-but-indexed.
  Status LinkDocument(Document* doc);

  // IndexDocument behind the "index.add" fault point. Thread-safe:
  // the concept index shards its delta buffers by ConceptId, so
  // IngestService workers index in parallel.
  Result<DocId> TryIndexDocument(const Document& doc,
                                 const std::vector<std::string>& keys,
                                 std::string_view route_scope = {});

  bool has_linker() const { return linker_ != nullptr; }

  // Indexes the document's concepts plus caller-supplied structured
  // dimension keys (e.g. "outcome/reservation"). `route_scope` is the
  // owning tenant ("" = untenanted); it prefixes the stored routing
  // key via ComposeRouteKey so rebalancing moves tenants as units.
  DocId IndexDocument(const Document& doc,
                      const std::vector<std::string>& structured_keys,
                      std::string_view route_scope = {});

  // Immutable index snapshot covering every document indexed so far
  // (publishes pending deltas first when necessary). All mining
  // readers go through this; reads on it are lock-free.
  std::shared_ptr<const IndexSnapshot> Snapshot() const {
    return index_.SnapshotNow();
  }
  // Merges pending index deltas into a fresh snapshot — IngestService
  // calls this once per batch instead of once per query.
  std::shared_ptr<const IndexSnapshot> PublishIndex() const {
    return index_.Publish();
  }

  const ConceptIndex& index() const { return index_; }
  ConceptIndex* mutable_index() { return &index_; }
  const Stats& stats() const { return stats_; }

 private:
  // Channel-specific cleaning + spam/language filtering (counts drops,
  // does not assign an id).
  Document MakeDocument(VocChannel channel, const std::string& raw,
                        int64_t time_bucket);
  void AnnotateAndExtract(Document* doc);
  // Linker invocation + linked/unlinked accounting (no fault check).
  void DoLink(Document* doc);
  Document Finish(Document doc);

  EmailCleaner email_cleaner_;
  SmsNormalizer sms_normalizer_;
  SpamFilter spam_filter_;
  LanguageFilter language_filter_;
  ConceptExtractor extractor_;
  AnnotatorPipeline* annotators_ = nullptr;  // not owned
  MultiTypeLinker* linker_ = nullptr;        // not owned
  std::unordered_set<std::string> name_roster_;
  ConceptIndex index_;
  Stats stats_;
  std::atomic<std::size_t> next_id_{0};
};

}  // namespace bivoc

#endif  // BIVOC_CORE_PIPELINE_H_
