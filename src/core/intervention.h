#ifndef BIVOC_CORE_INTERVENTION_H_
#define BIVOC_CORE_INTERVENTION_H_

#include <vector>

#include "mining/stats.h"
#include "synth/car_rental.h"

namespace bivoc {

// The §V-C field experiment: split the agents, train one group on the
// mined insights (offer discounts to weak starts, use value-selling
// phrases generously), run two months, compare reservation performance
// with a t-test. Outcomes are measured on ground truth (the paper
// measures actual bookings, not transcripts).
struct InterventionConfig {
  int num_trained = 20;
  int calls_per_period = 4000;  // per two-month window
  uint64_t seed = 99;
};

struct GroupStats {
  std::size_t reservations = 0;
  std::size_t unbooked = 0;

  double BookingRate() const {
    std::size_t total = reservations + unbooked;
    return total == 0 ? 0.0
                      : static_cast<double>(reservations) /
                            static_cast<double>(total);
  }
  // The paper's metric: reservations / unbooked.
  double ReservationRatio() const {
    return unbooked == 0 ? 0.0
                         : static_cast<double>(reservations) /
                               static_cast<double>(unbooked);
  }
};

struct InterventionResult {
  GroupStats trained_before, trained_after;
  GroupStats control_before, control_after;
  // Per-agent booking rates in the post-period (t-test inputs).
  std::vector<double> trained_agent_rates;
  std::vector<double> control_agent_rates;
  TTestResult ttest;

  // Booking-rate lift of trained agents vs control in the post period,
  // in percentage points (the paper's "+3%"; the paper checked the
  // groups were comparable beforehand).
  double LiftPercentagePoints() const {
    return (trained_after.BookingRate() - control_after.BookingRate()) *
           100.0;
  }

  // Difference-in-differences, in percentage points: the trained
  // group's improvement net of the control group's drift. Robust to a
  // chance baseline gap between the groups.
  double DiffInDiffPoints() const {
    double trained_delta =
        trained_after.BookingRate() - trained_before.BookingRate();
    double control_delta =
        control_after.BookingRate() - control_before.BookingRate();
    return (trained_delta - control_delta) * 100.0;
  }
};

// Runs the experiment on a copy of the world's agents (the caller's
// world is modified: agents get trained flags — mirroring reality).
InterventionResult RunIntervention(CarRentalWorld* world,
                                   const InterventionConfig& config);

}  // namespace bivoc

#endif  // BIVOC_CORE_INTERVENTION_H_
