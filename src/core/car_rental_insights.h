#ifndef BIVOC_CORE_CAR_RENTAL_INSIGHTS_H_
#define BIVOC_CORE_CAR_RENTAL_INSIGHTS_H_

#include <string>
#include <vector>

#include "annotate/concept_extractor.h"
#include "mining/association.h"
#include "mining/concept_index.h"
#include "synth/car_rental.h"

namespace bivoc {

// Concept keys used by the agent-productivity analysis (§V-A): the
// semantic categories the paper's analysts prepared.
inline constexpr const char* kIntentStrong = "intent/strong start";
inline constexpr const char* kIntentWeak = "intent/weak start";
inline constexpr const char* kOutcomeReserved = "outcome/reservation";
inline constexpr const char* kOutcomeUnbooked = "outcome/unbooked";
inline constexpr const char* kValueSellingPrefix = "value selling/";
inline constexpr const char* kDiscountPrefix = "discount/";
inline constexpr const char* kAnyValueSelling = "agent/value selling";
inline constexpr const char* kAnyDiscount = "agent/discount";
// Structured dimension joining each analyzed call to its agent; the
// agent id rides in the key suffix ("agent id/7").
inline constexpr const char* kAgentIdPrefix = "agent id/";

// Builds the car-rental domain extractor: the dictionary (discount
// phrases, car models -> vehicle-type canonical forms, cities ->
// places, paper §IV-C examples) and the user-defined patterns (value
// selling, customer intents).
void ConfigureCarRentalExtractor(ConceptExtractor* extractor);

// Per-call analysis output of the §V use case.
struct CallAnalysis {
  int call_id = 0;
  int agent_id = -1;            // from the structured record
  bool detected_strong = false;
  bool detected_weak = false;
  bool detected_value_selling = false;
  bool detected_discount = false;
  bool reserved = false;        // from the structured record
  bool is_service_call = false;
};

// Analyzes decoded transcripts against structured outcomes and fills a
// concept index whose keys join both worlds.
class AgentProductivityAnalyzer {
 public:
  AgentProductivityAnalyzer();

  // `decoded_text` is the ASR output for `call` (or the reference text
  // in a no-noise ablation). The structured outcome comes from the call
  // record (in production: from the linked reservation row). Intent
  // concepts are only accepted within the first `intent_window` tokens
  // ("from the customer's first or second utterance").
  CallAnalysis Analyze(const CallRecord& call,
                       const std::string& decoded_text);

  // Indexes the analysis into the internal concept index.
  void Index(const CallAnalysis& analysis);

  // Table III: customer intention vs pick up result.
  AssociationTable IntentVsOutcome() const;
  // Table IV: agent utterance (after rate quote) vs result.
  AssociationTable AgentUtteranceVsOutcome() const;

  // Immutable snapshot over all indexed calls — what the tables above
  // and AgentKpiBoard::SnapshotKpis read; safe during concurrent
  // Index() calls.
  std::shared_ptr<const IndexSnapshot> Snapshot() const {
    return index_.SnapshotNow();
  }

  const ConceptIndex& index() const { return index_; }
  const ConceptExtractor& extractor() const { return extractor_; }

  std::size_t intent_window() const { return intent_window_; }
  void set_intent_window(std::size_t w) { intent_window_ = w; }

 private:
  ConceptExtractor extractor_;
  ConceptIndex index_;
  std::size_t intent_window_ = 30;
};

}  // namespace bivoc

#endif  // BIVOC_CORE_CAR_RENTAL_INSIGHTS_H_
