#ifndef BIVOC_CORE_DOCUMENT_H_
#define BIVOC_CORE_DOCUMENT_H_

#include <string>
#include <vector>

#include "annotate/concept.h"
#include "linking/annotator.h"
#include "linking/multitype.h"
#include "synth/telecom.h"

namespace bivoc {

// A VoC document as it moves through the BIVoC pipeline (Fig. 3):
// raw channel payload -> cleaned text -> named-entity annotations ->
// structured-record link -> concepts.
struct Document {
  std::size_t id = 0;
  VocChannel channel = VocChannel::kEmail;

  std::string raw_text;
  std::string clean_text;

  // Filtering verdicts (spam / non-English are dropped before linking).
  bool dropped = false;
  std::string drop_reason;

  std::vector<Annotation> annotations;
  MultiTypeLinker::TypedMatch link;
  std::vector<Concept> concepts;

  int64_t time_bucket = 0;
};

}  // namespace bivoc

#endif  // BIVOC_CORE_DOCUMENT_H_
