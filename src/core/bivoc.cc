#include "core/bivoc.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "util/logging.h"
#include "util/wal.h"

namespace bivoc {

BivocEngine::BivocEngine() = default;

Status BivocEngine::FinishWarehouse(LinkerConfig config) {
  auto linker = MultiTypeLinker::Build(&db_, config);
  if (!linker.ok()) return linker.status();
  linker_ = std::make_unique<MultiTypeLinker>(linker.MoveValue());
  pipeline_.SetLinker(linker_.get());
  return Status::OK();
}

void BivocEngine::ConfigureAnnotators(
    const std::vector<std::string>& name_gazetteer,
    const std::vector<std::string>& location_gazetteer) {
  annotators_ = AnnotatorPipeline();
  annotators_.Add(std::make_unique<NameAnnotator>(name_gazetteer));
  annotators_.Add(std::make_unique<PhoneAnnotator>());
  annotators_.Add(std::make_unique<DateAnnotator>());
  annotators_.Add(std::make_unique<MoneyAnnotator>());
  if (!location_gazetteer.empty()) {
    annotators_.Add(std::make_unique<LocationAnnotator>(location_gazetteer));
  }
  pipeline_.SetAnnotators(&annotators_);
}

void BivocEngine::ConfigureIngest(IngestOptions options) {
  ingest_ = std::make_unique<IngestService>(&pipeline_, std::move(options));
  // Durability survives an ingest reconfiguration: the fresh service
  // keeps journaling to the same WAL.
  if (journal_) ingest_->AttachJournal(journal_.get());
}

IngestService* BivocEngine::ingest() {
  if (!ingest_) ConfigureIngest(IngestOptions{});
  return ingest_.get();
}

HealthReport BivocEngine::IngestBatch(const std::vector<IngestItem>& items) {
  return ingest()->IngestBatch(items);
}

void BivocEngine::ConfigureServing(ServeOptions options) {
  // The source reads the latest *published* snapshot lock-free; it
  // deliberately never publishes, so query traffic cannot contend with
  // the ingest path's once-per-batch Publish.
  serve_ = std::make_unique<ReportServer>(
      [this] { return pipeline_.index().snapshot(); }, options, &metrics_);
}

ReportServer* BivocEngine::serve() {
  if (!serve_) ConfigureServing(ServeOptions{});
  return serve_.get();
}

HealthReport BivocEngine::Health() const {
  HealthReport report;
  if (ingest_) {
    report = ingest_->report();
  } else {
    report.pipeline = pipeline_.stats().Read();
  }
  if (serve_) report.serving = serve_->stats();
  if (store_) {
    report.durability.enabled = true;
    report.durability.checkpoint_generation = store_->current_generation();
    report.durability.checkpoint_fallbacks =
        last_recovery_.checkpoint_fallbacks;
    report.durability.docs_from_checkpoint =
        last_recovery_.docs_from_checkpoint;
    report.durability.wal_records_replayed =
        last_recovery_.wal_records_replayed;
    report.durability.wal_corrupt_records = last_recovery_.wal_corrupt_records;
  }
  if (journal_) {
    report.durability.enabled = true;
    report.durability.wal_records_appended = journal_->records_appended();
    report.durability.wal_append_failures = journal_->append_failures();
    report.durability.wal_batches_rolled_back =
        journal_->batches_rolled_back();
  }
  return report;
}

Status BivocEngine::EnableDurability(const std::string& dir,
                                     DurabilityOptions options) {
  durability_opts_ = options;
  auto store = std::make_unique<CheckpointStore>(dir, options.checkpoint_retain);
  BIVOC_RETURN_NOT_OK(store->Init());

  auto journal = std::make_unique<IngestJournal>();
  Status opened = journal->Open(store->WalPath());
  if (!opened.ok() && opened.code() == StatusCode::kCorruption) {
    // Damaged header: the log is unusable as an append target. Move it
    // aside (recovery tooling can inspect it) and start fresh rather
    // than refusing to ingest.
    const std::string aside = store->WalPath() + ".corrupt";
    std::rename(store->WalPath().c_str(), aside.c_str());
    BIVOC_LOG(Warning) << "WAL header corrupt (" << opened.ToString()
                       << "); moved to " << aside << " and starting fresh";
    opened = journal->Open(store->WalPath());
  }
  BIVOC_RETURN_NOT_OK(opened);

  store_ = std::move(store);
  journal_ = std::move(journal);
  ingest()->AttachJournal(journal_.get());
  return Status::OK();
}

Status BivocEngine::SaveCheckpoint() {
  if (!store_ || !journal_) {
    return Status::FailedPrecondition(
        "SaveCheckpoint requires EnableDurability");
  }
  CheckpointData data;
  // At a batch boundary every journaled item has been processed (or
  // dead-lettered), so last_seq is exactly the snapshot's watermark.
  data.wal_watermark = journal_->last_seq();

  std::shared_ptr<const IndexSnapshot> snap = pipeline_.Snapshot();
  const std::size_t num_docs = snap->num_documents();
  for (std::string_view key : snap->interner().AllKeys()) {
    data.vocabulary.emplace_back(key);
  }
  data.doc_concepts.reserve(num_docs);
  data.doc_times.reserve(num_docs);
  data.doc_route_keys.reserve(num_docs);
  for (DocId d = 0; d < num_docs; ++d) {
    data.doc_concepts.push_back(snap->ConceptIdsOf(d));
    data.doc_times.push_back(snap->TimeBucketOf(d));
    data.doc_route_keys.push_back(snap->RouteKeyOf(d));
  }

  if (linker_) {
    for (const std::string& table : linker_->Types()) {
      data.linker_weights.emplace(table, linker_->WeightsFor(table));
    }
  }
  if (ingest_) data.dead_letters = ingest_->dead_letters()->Peek();

  Result<uint64_t> generation = store_->Write(data);
  if (!generation.ok()) return generation.status();

  if (durability_opts_.truncate_wal_after_checkpoint) {
    Status st = journal_->TruncateThrough(data.wal_watermark);
    if (!st.ok()) {
      // Non-fatal: the checkpoint is committed; the untruncated log
      // only re-replays records recovery will skip by watermark.
      BIVOC_LOG(Warning) << "WAL truncation after checkpoint "
                         << generation.value()
                         << " failed: " << st.ToString();
    }
  }
  return Status::OK();
}

Result<RecoveryReport> BivocEngine::Recover() {
  if (!store_ || !journal_) {
    return Status::FailedPrecondition("Recover requires EnableDurability");
  }
  RecoveryReport report;
  uint64_t watermark = 0;

  Result<CheckpointStore::Loaded> loaded_or = store_->LoadNewest();
  if (loaded_or.ok()) {
    CheckpointStore::Loaded loaded = loaded_or.MoveValue();
    const CheckpointData& data = loaded.data;
    report.checkpoint_loaded = true;
    report.checkpoint_generation = loaded.generation;
    report.checkpoint_fallbacks = loaded.fallbacks;
    watermark = data.wal_watermark;

    // Rebuild the index by re-admitting documents in DocId order: ids
    // are dense and assigned in admission order, so the restored index
    // assigns every document its original id.
    ConceptIndex* index = pipeline_.mutable_index();
    for (std::size_t d = 0; d < data.doc_concepts.size(); ++d) {
      std::vector<std::string> keys;
      keys.reserve(data.doc_concepts[d].size());
      for (uint32_t id : data.doc_concepts[d]) {
        keys.push_back(data.vocabulary[id]);
      }
      index->AddDocument(keys, data.doc_times[d],
                         d < data.doc_route_keys.size()
                             ? data.doc_route_keys[d]
                             : std::string());
    }
    report.docs_from_checkpoint = data.doc_concepts.size();

    if (linker_) {
      for (const auto& [table, weights] : data.linker_weights) {
        Status st = linker_->SetWeightsFor(table, weights);
        if (!st.ok()) {
          // Warehouse schema changed since the checkpoint; the table's
          // linker keeps its freshly learned weights.
          BIVOC_LOG(Warning) << "checkpointed weights for table '" << table
                             << "' not restored: " << st.ToString();
        }
      }
    }
    if (!data.dead_letters.empty()) {
      DeadLetterQueue* queue = ingest()->dead_letters();
      for (const DeadLetter& letter : data.dead_letters) {
        if (queue->Push(letter)) ++report.dead_letters_restored;
      }
    }
  } else if (loaded_or.status().code() != StatusCode::kNotFound) {
    return loaded_or.status();
  }

  // Replay the WAL tail above the watermark. Framing-level damage was
  // already counted by ReadWal; payload-level decode failures and
  // duplicate sequence ids are counted here.
  Result<WalReadResult> wal_or = ReadWal(journal_->path());
  if (wal_or.ok()) {
    WalReadResult wal = wal_or.MoveValue();
    report.wal_corrupt_records = wal.corrupt_records;
    report.wal_truncated_bytes = wal.truncated_bytes;

    std::vector<IngestItem> items;
    std::unordered_set<uint64_t> seen;
    for (const std::string& payload : wal.records) {
      Result<JournalRecord> record_or = DecodeJournalItem(payload);
      if (!record_or.ok()) {
        ++report.wal_corrupt_records;
        continue;
      }
      JournalRecord record = record_or.MoveValue();
      if (record.seq <= watermark || !seen.insert(record.seq).second) {
        ++report.wal_records_skipped;
        continue;
      }
      items.push_back(std::move(record.item));
    }
    if (!items.empty()) {
      ingest()->ReplayJournal(items);
      report.wal_records_replayed = items.size();
    }
  } else if (wal_or.status().code() != StatusCode::kNotFound) {
    BIVOC_LOG(Warning) << "WAL unreadable during recovery: "
                       << wal_or.status().ToString();
    ++report.wal_corrupt_records;
  }

  pipeline_.PublishIndex();
  journal_->EnsureSeqAtLeast(watermark);
  last_recovery_ = report;
  return report;
}

// --- cluster data plane ----------------------------------------------

namespace {

// Per-document fingerprint for the anti-entropy checksum: FNV-1a over
// the routing key, the sorted concept keys and the time bucket, with
// unit separators so field boundaries can't alias. Replica checksums
// are the *wrapping sum* of these (not XOR), so a duplicated document
// changes the total instead of cancelling out.
uint64_t HashExportedDoc(const std::string& route_key,
                         const std::vector<std::string>& concept_keys,
                         int64_t time_bucket) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  mix(route_key.data(), route_key.size());
  const unsigned char unit = 0x1f;
  mix(&unit, 1);
  for (const std::string& key : concept_keys) {
    mix(key.data(), key.size());
    mix(&unit, 1);
  }
  mix(&time_bucket, sizeof(time_bucket));
  return h;
}

}  // namespace

std::vector<ExportedDoc> BivocEngine::ExportDocuments() const {
  std::shared_ptr<const IndexSnapshot> snap = pipeline_.Snapshot();
  std::vector<ExportedDoc> out;
  const std::size_t num_docs = snap->num_documents();
  out.reserve(num_docs);
  for (DocId d = 0; d < num_docs; ++d) {
    ExportedDoc doc;
    doc.route_key = snap->RouteKeyOf(d);
    doc.concept_keys = snap->ConceptsOf(d);
    doc.time_bucket = snap->TimeBucketOf(d);
    out.push_back(std::move(doc));
  }
  return out;
}

BivocEngine::ExportChunk BivocEngine::ExportDocumentsChunk(
    std::size_t cursor, std::size_t limit) const {
  std::shared_ptr<const IndexSnapshot> snap = pipeline_.Snapshot();
  ExportChunk chunk;
  chunk.total = snap->num_documents();
  if (limit == 0) limit = 1;
  const std::size_t begin = std::min(cursor, chunk.total);
  const std::size_t end = std::min(begin + limit, chunk.total);
  chunk.docs.reserve(end - begin);
  for (std::size_t d = begin; d < end; ++d) {
    ExportedDoc doc;
    doc.route_key = snap->RouteKeyOf(static_cast<DocId>(d));
    doc.concept_keys = snap->ConceptsOf(static_cast<DocId>(d));
    doc.time_bucket = snap->TimeBucketOf(static_cast<DocId>(d));
    chunk.docs.push_back(std::move(doc));
  }
  chunk.next = end;
  chunk.done = end >= chunk.total;
  return chunk;
}

Status BivocEngine::StageDocuments(std::vector<ExportedDoc> docs) {
  std::lock_guard<std::mutex> lock(staged_mu_);
  staged_.reserve(staged_.size() + docs.size());
  for (ExportedDoc& doc : docs) staged_.push_back(std::move(doc));
  return Status::OK();
}

Result<std::size_t> BivocEngine::ApplyStaged() {
  std::vector<ExportedDoc> docs;
  {
    std::lock_guard<std::mutex> lock(staged_mu_);
    docs.swap(staged_);
  }
  if (docs.empty()) return std::size_t{0};
  ConceptIndex* index = pipeline_.mutable_index();
  for (ExportedDoc& doc : docs) {
    index->AddDocument(doc.concept_keys, doc.time_bucket,
                       std::move(doc.route_key));
  }
  pipeline_.PublishIndex();
  if (store_) {
    // Staged documents were never in this shard's WAL; the checkpoint
    // is their only durable record, so write it now.
    Status st = SaveCheckpoint();
    if (!st.ok()) {
      BIVOC_LOG(Warning) << "checkpoint after ApplyStaged failed: "
                         << st.ToString();
    }
  }
  return docs.size();
}

std::size_t BivocEngine::AbortStaged() {
  std::lock_guard<std::mutex> lock(staged_mu_);
  const std::size_t dropped = staged_.size();
  staged_.clear();
  return dropped;
}

Result<std::size_t> BivocEngine::DropByRouteKeys(
    const std::vector<std::string>& route_keys) {
  std::unordered_set<std::string_view> drop(route_keys.begin(),
                                            route_keys.end());
  std::shared_ptr<const IndexSnapshot> snap = pipeline_.Snapshot();
  const std::size_t num_docs = snap->num_documents();
  std::vector<ExportedDoc> kept;
  std::size_t dropped = 0;
  for (DocId d = 0; d < num_docs; ++d) {
    const std::string& route = snap->RouteKeyOf(d);
    if (drop.count(route) != 0) {
      ++dropped;
      continue;
    }
    ExportedDoc doc;
    doc.route_key = route;
    doc.concept_keys = snap->ConceptsOf(d);
    doc.time_bucket = snap->TimeBucketOf(d);
    kept.push_back(std::move(doc));
  }
  if (dropped == 0) return dropped;
  // Rebuild minus the moved documents. Reset() keeps generations
  // monotonic, so serving caches keyed on (fingerprint, generation)
  // never serve pre-drop results.
  ConceptIndex* index = pipeline_.mutable_index();
  index->Reset();
  for (ExportedDoc& doc : kept) {
    index->AddDocument(doc.concept_keys, doc.time_bucket,
                       std::move(doc.route_key));
  }
  pipeline_.PublishIndex();
  if (store_) {
    // The checkpoint's watermark covers every WAL record, so a restart
    // cannot resurrect the dropped documents from the log.
    Status st = SaveCheckpoint();
    if (!st.ok()) {
      BIVOC_LOG(Warning) << "checkpoint after DropByRouteKeys failed: "
                         << st.ToString();
    }
  }
  return dropped;
}

BivocEngine::ContentSummary BivocEngine::ContentChecksum() const {
  std::shared_ptr<const IndexSnapshot> snap = pipeline_.Snapshot();
  ContentSummary summary;
  summary.num_documents = snap->num_documents();
  for (DocId d = 0; d < summary.num_documents; ++d) {
    summary.checksum += HashExportedDoc(snap->RouteKeyOf(d),
                                        snap->ConceptsOf(d),
                                        snap->TimeBucketOf(d));
  }
  return summary;
}

Document BivocEngine::AddEmail(
    const std::string& raw, int64_t day,
    const std::vector<std::string>& structured_keys) {
  Document doc = pipeline_.ProcessEmail(raw, day);
  if (!doc.dropped) pipeline_.IndexDocument(doc, structured_keys);
  return doc;
}

Document BivocEngine::AddSms(
    const std::string& raw, int64_t day,
    const std::vector<std::string>& structured_keys) {
  Document doc = pipeline_.ProcessSms(raw, day);
  if (!doc.dropped) pipeline_.IndexDocument(doc, structured_keys);
  return doc;
}

Document BivocEngine::AddTranscript(
    const std::string& text, int64_t day,
    const std::vector<std::string>& structured_keys) {
  Document doc = pipeline_.ProcessTranscript(text, day);
  pipeline_.IndexDocument(doc, structured_keys);
  return doc;
}

AssociationTable BivocEngine::Associate(
    const std::vector<std::string>& row_keys,
    const std::vector<std::string>& col_keys) const {
  return TwoDimensionalAssociation(*pipeline_.Snapshot(), row_keys, col_keys);
}

std::vector<AssociationCell> BivocEngine::TopAssociations(
    const std::string& row_prefix, const std::string& col_prefix,
    std::size_t limit) const {
  return bivoc::TopAssociations(*pipeline_.Snapshot(), row_prefix, col_prefix,
                                limit);
}

std::vector<RelevancyItem> BivocEngine::Relevancy(
    const std::string& feature_key, RelevancyOptions options) const {
  return RelevancyAnalysis(*pipeline_.Snapshot(), feature_key, options);
}

std::vector<TrendSummary> BivocEngine::Rising(const std::string& prefix,
                                              std::size_t limit) const {
  return RisingConcepts(*pipeline_.Snapshot(), prefix, limit);
}

}  // namespace bivoc
