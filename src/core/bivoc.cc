#include "core/bivoc.h"

namespace bivoc {

BivocEngine::BivocEngine() = default;

Status BivocEngine::FinishWarehouse(LinkerConfig config) {
  auto linker = MultiTypeLinker::Build(&db_, config);
  if (!linker.ok()) return linker.status();
  linker_ = std::make_unique<MultiTypeLinker>(linker.MoveValue());
  pipeline_.SetLinker(linker_.get());
  return Status::OK();
}

void BivocEngine::ConfigureAnnotators(
    const std::vector<std::string>& name_gazetteer,
    const std::vector<std::string>& location_gazetteer) {
  annotators_ = AnnotatorPipeline();
  annotators_.Add(std::make_unique<NameAnnotator>(name_gazetteer));
  annotators_.Add(std::make_unique<PhoneAnnotator>());
  annotators_.Add(std::make_unique<DateAnnotator>());
  annotators_.Add(std::make_unique<MoneyAnnotator>());
  if (!location_gazetteer.empty()) {
    annotators_.Add(std::make_unique<LocationAnnotator>(location_gazetteer));
  }
  pipeline_.SetAnnotators(&annotators_);
}

void BivocEngine::ConfigureIngest(IngestOptions options) {
  ingest_ = std::make_unique<IngestService>(&pipeline_, std::move(options));
}

IngestService* BivocEngine::ingest() {
  if (!ingest_) ConfigureIngest(IngestOptions{});
  return ingest_.get();
}

HealthReport BivocEngine::IngestBatch(const std::vector<IngestItem>& items) {
  return ingest()->IngestBatch(items);
}

HealthReport BivocEngine::Health() const {
  if (ingest_) return ingest_->report();
  HealthReport report;
  report.pipeline = pipeline_.stats().Read();
  return report;
}

Document BivocEngine::AddEmail(
    const std::string& raw, int64_t day,
    const std::vector<std::string>& structured_keys) {
  Document doc = pipeline_.ProcessEmail(raw, day);
  if (!doc.dropped) pipeline_.IndexDocument(doc, structured_keys);
  return doc;
}

Document BivocEngine::AddSms(
    const std::string& raw, int64_t day,
    const std::vector<std::string>& structured_keys) {
  Document doc = pipeline_.ProcessSms(raw, day);
  if (!doc.dropped) pipeline_.IndexDocument(doc, structured_keys);
  return doc;
}

Document BivocEngine::AddTranscript(
    const std::string& text, int64_t day,
    const std::vector<std::string>& structured_keys) {
  Document doc = pipeline_.ProcessTranscript(text, day);
  pipeline_.IndexDocument(doc, structured_keys);
  return doc;
}

AssociationTable BivocEngine::Associate(
    const std::vector<std::string>& row_keys,
    const std::vector<std::string>& col_keys) const {
  return TwoDimensionalAssociation(*pipeline_.Snapshot(), row_keys, col_keys);
}

std::vector<AssociationCell> BivocEngine::TopAssociations(
    const std::string& row_prefix, const std::string& col_prefix,
    std::size_t limit) const {
  return bivoc::TopAssociations(*pipeline_.Snapshot(), row_prefix, col_prefix,
                                limit);
}

std::vector<RelevancyItem> BivocEngine::Relevancy(
    const std::string& feature_key, RelevancyOptions options) const {
  return RelevancyAnalysis(*pipeline_.Snapshot(), feature_key, options);
}

std::vector<TrendSummary> BivocEngine::Rising(const std::string& prefix,
                                              std::size_t limit) const {
  return RisingConcepts(*pipeline_.Snapshot(), prefix, limit);
}

}  // namespace bivoc
