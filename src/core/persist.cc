#include "core/persist.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "util/checkpoint_io.h"
#include "util/logging.h"

namespace bivoc {
namespace {

// v2 added a cluster routing key per document; v3 added the owning
// tenant to dead-letter items. Older checkpoints still load (their
// routes/tenants decode as empty strings).
constexpr uint32_t kCheckpointVersion = 3;
constexpr uint32_t kMinCheckpointVersion = 1;
constexpr uint32_t kManifestVersion = 1;
constexpr uint8_t kJournalRecordItem = 1;    // pre-tenant (no tenant field)
constexpr uint8_t kJournalRecordItemV2 = 2;  // tenant appended after item
constexpr const char kCheckpointPrefix[] = "checkpoint-";
constexpr const char kCheckpointSuffix[] = ".ckpt";

Status DecodeChannel(uint8_t raw, VocChannel* out) {
  if (raw > static_cast<uint8_t>(VocChannel::kCall)) {
    return Status::Corruption("invalid VocChannel value");
  }
  *out = static_cast<VocChannel>(raw);
  return Status::OK();
}

// The tenant travels outside this base codec (appended by the caller
// when its container format is new enough) so old journal/checkpoint
// bytes keep decoding unchanged.
void PutIngestItem(BinaryWriter* w, const IngestItem& item) {
  w->PutU8(static_cast<uint8_t>(item.channel));
  w->PutI64(item.time_bucket);
  w->PutString(item.payload);
  w->PutU32(static_cast<uint32_t>(item.structured_keys.size()));
  for (const auto& key : item.structured_keys) w->PutString(key);
}

Status ReadIngestItem(BinaryReader* r, IngestItem* item) {
  uint8_t channel;
  BIVOC_RETURN_NOT_OK(r->ReadU8(&channel));
  BIVOC_RETURN_NOT_OK(DecodeChannel(channel, &item->channel));
  BIVOC_RETURN_NOT_OK(r->ReadI64(&item->time_bucket));
  BIVOC_RETURN_NOT_OK(r->ReadString(&item->payload));
  uint32_t num_keys;
  BIVOC_RETURN_NOT_OK(r->ReadU32(&num_keys));
  if (static_cast<std::size_t>(num_keys) > r->remaining()) {
    return Status::Corruption("structured key count exceeds buffer");
  }
  item->structured_keys.clear();
  item->structured_keys.reserve(num_keys);
  for (uint32_t i = 0; i < num_keys; ++i) {
    std::string key;
    BIVOC_RETURN_NOT_OK(r->ReadString(&key));
    item->structured_keys.push_back(std::move(key));
  }
  return Status::OK();
}

}  // namespace

// --- checkpoint codec ------------------------------------------------

std::string EncodeCheckpoint(const CheckpointData& data) {
  BinaryWriter w;
  w.PutU32(kCheckpointVersion);
  w.PutU64(data.wal_watermark);

  w.PutU32(static_cast<uint32_t>(data.vocabulary.size()));
  for (const auto& key : data.vocabulary) w.PutString(key);

  w.PutU64(data.doc_concepts.size());
  for (std::size_t d = 0; d < data.doc_concepts.size(); ++d) {
    w.PutI64(d < data.doc_times.size() ? data.doc_times[d] : 0);
    w.PutString(d < data.doc_route_keys.size() ? data.doc_route_keys[d]
                                               : std::string());
    w.PutU32(static_cast<uint32_t>(data.doc_concepts[d].size()));
    for (uint32_t id : data.doc_concepts[d]) w.PutU32(id);
  }

  w.PutU32(static_cast<uint32_t>(data.linker_weights.size()));
  for (const auto& [table, weights] : data.linker_weights) {
    w.PutString(table);
    for (double weight : weights) w.PutDouble(weight);
  }

  w.PutU32(static_cast<uint32_t>(data.dead_letters.size()));
  for (const auto& letter : data.dead_letters) {
    PutIngestItem(&w, letter.item);
    w.PutString(letter.item.tenant);  // v3
    w.PutU32(static_cast<uint32_t>(letter.status.code()));
    w.PutString(letter.status.message());
    w.PutI64(letter.attempts);
  }
  return w.Release();
}

Result<CheckpointData> DecodeCheckpoint(std::string_view payload) {
  BinaryReader r(payload);
  CheckpointData data;

  uint32_t version;
  BIVOC_RETURN_NOT_OK(r.ReadU32(&version));
  if (version < kMinCheckpointVersion || version > kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(version));
  }
  BIVOC_RETURN_NOT_OK(r.ReadU64(&data.wal_watermark));

  uint32_t vocab_size;
  BIVOC_RETURN_NOT_OK(r.ReadU32(&vocab_size));
  if (static_cast<std::size_t>(vocab_size) > r.remaining()) {
    return Status::Corruption("vocabulary count exceeds buffer");
  }
  data.vocabulary.reserve(vocab_size);
  for (uint32_t i = 0; i < vocab_size; ++i) {
    std::string key;
    BIVOC_RETURN_NOT_OK(r.ReadString(&key));
    data.vocabulary.push_back(std::move(key));
  }

  uint64_t num_docs;
  BIVOC_RETURN_NOT_OK(r.ReadU64(&num_docs));
  if (num_docs > r.remaining()) {
    return Status::Corruption("document count exceeds buffer");
  }
  data.doc_concepts.reserve(static_cast<std::size_t>(num_docs));
  data.doc_times.reserve(static_cast<std::size_t>(num_docs));
  data.doc_route_keys.reserve(static_cast<std::size_t>(num_docs));
  for (uint64_t d = 0; d < num_docs; ++d) {
    int64_t time_bucket;
    BIVOC_RETURN_NOT_OK(r.ReadI64(&time_bucket));
    std::string route_key;
    if (version >= 2) BIVOC_RETURN_NOT_OK(r.ReadString(&route_key));
    uint32_t num_ids;
    BIVOC_RETURN_NOT_OK(r.ReadU32(&num_ids));
    if (static_cast<std::size_t>(num_ids) * 4 > r.remaining()) {
      return Status::Corruption("concept count exceeds buffer");
    }
    std::vector<uint32_t> ids;
    ids.reserve(num_ids);
    for (uint32_t i = 0; i < num_ids; ++i) {
      uint32_t id;
      BIVOC_RETURN_NOT_OK(r.ReadU32(&id));
      if (id >= vocab_size) {
        return Status::Corruption("concept id out of vocabulary range");
      }
      ids.push_back(id);
    }
    data.doc_concepts.push_back(std::move(ids));
    data.doc_times.push_back(time_bucket);
    data.doc_route_keys.push_back(std::move(route_key));
  }

  uint32_t num_types;
  BIVOC_RETURN_NOT_OK(r.ReadU32(&num_types));
  for (uint32_t t = 0; t < num_types; ++t) {
    std::string table;
    BIVOC_RETURN_NOT_OK(r.ReadString(&table));
    RoleWeights weights{};
    for (auto& weight : weights) {
      BIVOC_RETURN_NOT_OK(r.ReadDouble(&weight));
    }
    data.linker_weights.emplace(std::move(table), weights);
  }

  uint32_t num_letters;
  BIVOC_RETURN_NOT_OK(r.ReadU32(&num_letters));
  for (uint32_t i = 0; i < num_letters; ++i) {
    DeadLetter letter;
    BIVOC_RETURN_NOT_OK(ReadIngestItem(&r, &letter.item));
    if (version >= 3) BIVOC_RETURN_NOT_OK(r.ReadString(&letter.item.tenant));
    uint32_t code;
    BIVOC_RETURN_NOT_OK(r.ReadU32(&code));
    if (code > static_cast<uint32_t>(StatusCode::kInternal)) {
      return Status::Corruption("invalid status code in dead letter");
    }
    std::string message;
    BIVOC_RETURN_NOT_OK(r.ReadString(&message));
    letter.status = Status(static_cast<StatusCode>(code), std::move(message));
    int64_t attempts;
    BIVOC_RETURN_NOT_OK(r.ReadI64(&attempts));
    letter.attempts = static_cast<int>(attempts);
    data.dead_letters.push_back(std::move(letter));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after checkpoint payload");
  }
  return data;
}

// --- journal record codec --------------------------------------------

std::string EncodeJournalItem(uint64_t seq, const IngestItem& item) {
  BinaryWriter w;
  // Untenanted items keep writing the original record type so a log
  // produced by a single-tenant deployment is byte-identical to the
  // pre-tenant format (and readable by older builds).
  w.PutU8(item.tenant.empty() ? kJournalRecordItem : kJournalRecordItemV2);
  w.PutU64(seq);
  PutIngestItem(&w, item);
  if (!item.tenant.empty()) w.PutString(item.tenant);
  return w.Release();
}

Result<JournalRecord> DecodeJournalItem(std::string_view payload) {
  BinaryReader r(payload);
  uint8_t type;
  BIVOC_RETURN_NOT_OK(r.ReadU8(&type));
  if (type != kJournalRecordItem && type != kJournalRecordItemV2) {
    return Status::Corruption("unknown journal record type " +
                              std::to_string(type));
  }
  JournalRecord record;
  BIVOC_RETURN_NOT_OK(r.ReadU64(&record.seq));
  BIVOC_RETURN_NOT_OK(ReadIngestItem(&r, &record.item));
  if (type == kJournalRecordItemV2) {
    BIVOC_RETURN_NOT_OK(r.ReadString(&record.item.tenant));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after journal record");
  }
  return record;
}

// --- RecoveryReport --------------------------------------------------

std::string RecoveryReport::ToString() const {
  std::ostringstream os;
  os << "checkpoint: "
     << (checkpoint_loaded
             ? "generation " + std::to_string(checkpoint_generation)
             : std::string("none"))
     << " (fallbacks=" << checkpoint_fallbacks
     << ", docs=" << docs_from_checkpoint
     << ", dead_letters=" << dead_letters_restored << ")"
     << " | wal: replayed=" << wal_records_replayed
     << " skipped=" << wal_records_skipped
     << " corrupt=" << wal_corrupt_records
     << " truncated_bytes=" << wal_truncated_bytes;
  return os.str();
}

// --- CheckpointStore -------------------------------------------------

CheckpointStore::CheckpointStore(std::string dir, std::size_t retain)
    : dir_(std::move(dir)), retain_(retain == 0 ? 1 : retain) {}

std::string CheckpointStore::CheckpointPath(uint64_t generation) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kCheckpointPrefix,
                static_cast<unsigned long long>(generation),
                kCheckpointSuffix);
  return dir_ + "/" + name;
}

std::string CheckpointStore::ManifestPath() const {
  return dir_ + "/MANIFEST";
}

std::string CheckpointStore::WalPath() const { return dir_ + "/wal.log"; }

std::vector<uint64_t> CheckpointStore::ListGenerationsOnDisk() const {
  std::vector<uint64_t> generations;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const std::size_t prefix_len = sizeof(kCheckpointPrefix) - 1;
    const std::size_t suffix_len = sizeof(kCheckpointSuffix) - 1;
    if (name.size() <= prefix_len + suffix_len) continue;
    if (name.compare(0, prefix_len, kCheckpointPrefix) != 0) continue;
    if (name.compare(name.size() - suffix_len, suffix_len,
                     kCheckpointSuffix) != 0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    uint64_t generation = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      generation = generation * 10 + static_cast<uint64_t>(c - '0');
    }
    if (numeric) generations.push_back(generation);
  }
  std::sort(generations.rbegin(), generations.rend());
  return generations;
}

Status CheckpointStore::Init() {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("create_directories " + dir_ + ": " +
                           ec.message());
  }
  // The current generation is the max of what the manifest claims and
  // what is on disk, so a stale manifest never overwrites newer files.
  uint64_t current = 0;
  Result<std::string> manifest = ReadChecksummedFile(ManifestPath());
  if (manifest.ok()) {
    BinaryReader r(manifest.value());
    uint32_t version;
    uint64_t manifest_current;
    if (r.ReadU32(&version).ok() && version == kManifestVersion &&
        r.ReadU64(&manifest_current).ok()) {
      current = manifest_current;
    }
  }
  for (uint64_t generation : ListGenerationsOnDisk()) {
    current = std::max(current, generation);
  }
  current_gen_ = current;
  return Status::OK();
}

Result<uint64_t> CheckpointStore::Write(const CheckpointData& data) {
  const uint64_t generation = current_gen_ + 1;
  BIVOC_RETURN_NOT_OK(WriteChecksummedFileAtomic(CheckpointPath(generation),
                                                 EncodeCheckpoint(data)));

  BinaryWriter manifest;
  manifest.PutU32(kManifestVersion);
  manifest.PutU64(generation);
  const uint64_t oldest_retained =
      generation > retain_ - 1 ? generation - (retain_ - 1) : 1;
  manifest.PutU32(static_cast<uint32_t>(generation - oldest_retained + 1));
  for (uint64_t g = generation; g >= oldest_retained; --g) {
    manifest.PutU64(g);
  }
  BIVOC_RETURN_NOT_OK(
      WriteChecksummedFileAtomic(ManifestPath(), manifest.data()));
  current_gen_ = generation;

  // Prune generations that fell out of the retention window.
  for (uint64_t g : ListGenerationsOnDisk()) {
    if (g < oldest_retained) {
      std::error_code ec;
      std::filesystem::remove(CheckpointPath(g), ec);
    }
  }
  return generation;
}

Result<CheckpointStore::Loaded> CheckpointStore::LoadNewest() const {
  std::size_t fallbacks = 0;
  std::vector<uint64_t> candidates;

  Result<std::string> manifest = ReadChecksummedFile(ManifestPath());
  if (manifest.ok()) {
    BinaryReader r(manifest.value());
    uint32_t version, count;
    uint64_t current;
    if (r.ReadU32(&version).ok() && version == kManifestVersion &&
        r.ReadU64(&current).ok() && r.ReadU32(&count).ok()) {
      for (uint32_t i = 0; i < count; ++i) {
        uint64_t g;
        if (!r.ReadU64(&g).ok()) break;
        candidates.push_back(g);
      }
    } else {
      ++fallbacks;  // manifest present but undecodable
    }
  } else if (manifest.status().code() == StatusCode::kCorruption) {
    ++fallbacks;
  }
  // Merge with a directory scan so a damaged or stale manifest still
  // finds every checkpoint on disk.
  for (uint64_t g : ListGenerationsOnDisk()) candidates.push_back(g);
  std::sort(candidates.rbegin(), candidates.rend());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  for (uint64_t generation : candidates) {
    Result<std::string> blob = ReadChecksummedFile(CheckpointPath(generation));
    if (!blob.ok()) {
      if (blob.status().code() != StatusCode::kNotFound) ++fallbacks;
      continue;
    }
    Result<CheckpointData> data = DecodeCheckpoint(blob.value());
    if (!data.ok()) {
      ++fallbacks;
      continue;
    }
    Loaded loaded;
    loaded.data = data.MoveValue();
    loaded.generation = generation;
    loaded.fallbacks = fallbacks;
    return loaded;
  }
  Status not_found = Status::NotFound(
      "no valid checkpoint in " + dir_ +
      (fallbacks > 0 ? " (" + std::to_string(fallbacks) + " corrupt)" : ""));
  return not_found;
}

// --- ExportIterator --------------------------------------------------

Status ExportIterator::Init() {
  Result<CheckpointStore::Loaded> loaded = store_->LoadNewest();
  if (loaded.ok()) {
    data_ = std::move(loaded.value().data);
    has_checkpoint_ = true;
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    return loaded.status();
  }
  const uint64_t watermark = has_checkpoint_ ? data_.wal_watermark : 0;
  Result<WalReadResult> wal = ReadWal(store_->WalPath());
  if (wal.ok()) {
    for (const std::string& payload : wal.value().records) {
      Result<JournalRecord> record = DecodeJournalItem(payload);
      if (!record.ok()) {
        ++wal_corrupt_;
        continue;
      }
      if (record.value().seq <= watermark) continue;
      tail_.push_back(record.MoveValue());
    }
  } else if (wal.status().code() != StatusCode::kNotFound) {
    return wal.status();
  }
  return Status::OK();
}

bool ExportIterator::Next(Record* out) {
  if (doc_pos_ < data_.doc_concepts.size()) {
    const std::size_t d = doc_pos_++;
    out->is_raw = false;
    out->seq = 0;
    out->item = IngestItem();
    out->doc.route_key =
        d < data_.doc_route_keys.size() ? data_.doc_route_keys[d] : "";
    out->doc.time_bucket = d < data_.doc_times.size() ? data_.doc_times[d]
                                                      : kNoTimeBucket;
    out->doc.concept_keys.clear();
    out->doc.concept_keys.reserve(data_.doc_concepts[d].size());
    for (uint32_t id : data_.doc_concepts[d]) {
      out->doc.concept_keys.push_back(data_.vocabulary[id]);
    }
    ++docs_exported_;
    return true;
  }
  if (tail_pos_ < tail_.size()) {
    JournalRecord& record = tail_[tail_pos_++];
    out->is_raw = true;
    out->seq = record.seq;
    out->item = std::move(record.item);
    out->doc = ExportedDoc();
    ++raw_exported_;
    return true;
  }
  return false;
}

// --- IngestJournal ---------------------------------------------------

Status IngestJournal::Open(const std::string& path) {
  path_ = path;
  BIVOC_RETURN_NOT_OK(wal_.Open(path, /*token_if_new=*/0));
  last_seq_ = wal_.user_token();
  // Records already present (an uncheckpointed tail) keep numbering
  // monotonic; undecodable ones are the recovery path's problem.
  Result<WalReadResult> existing = ReadWal(path);
  if (existing.ok()) {
    for (const std::string& payload : existing.value().records) {
      Result<JournalRecord> record = DecodeJournalItem(payload);
      if (record.ok()) last_seq_ = std::max(last_seq_, record.value().seq);
    }
  }
  return Status::OK();
}

Result<uint64_t> IngestJournal::Append(const IngestItem& item) {
  if (!wal_.is_open()) {
    return Status::FailedPrecondition("ingest journal not open");
  }
  const uint64_t seq = last_seq_ + 1;
  BIVOC_RETURN_NOT_OK(wal_.Append(EncodeJournalItem(seq, item)));
  last_seq_ = seq;
  ++records_appended_;
  return seq;
}

Status IngestJournal::Sync() { return wal_.Sync(); }

Status IngestJournal::Rollback(const Bookmark& mark) {
  BIVOC_RETURN_NOT_OK(wal_.TruncateTo(mark.offset));
  records_appended_ -= static_cast<std::size_t>(last_seq_ - mark.seq);
  last_seq_ = mark.seq;
  return Status::OK();
}

Status IngestJournal::TruncateThrough(uint64_t watermark) {
  if (!wal_.is_open()) {
    return Status::FailedPrecondition("ingest journal not open");
  }
  Result<WalReadResult> read = ReadWal(path_);
  std::vector<std::string> kept;
  if (read.ok()) {
    for (std::string& payload : read.value().records) {
      Result<JournalRecord> record = DecodeJournalItem(payload);
      if (record.ok() && record.value().seq > watermark) {
        kept.push_back(std::move(payload));
      }
    }
  }
  BIVOC_RETURN_NOT_OK(wal_.Close());
  Status st = WalWriter::Rewrite(path_, /*token=*/watermark, kept);
  // Reopen in either case: a failed rewrite leaves the old log intact,
  // which is safe (it merely retains already-checkpointed records).
  Status reopen = wal_.Open(path_);
  if (!st.ok()) return st;
  BIVOC_RETURN_NOT_OK(reopen);
  last_seq_ = std::max(last_seq_, watermark);
  return Status::OK();
}

void IngestJournal::EnsureSeqAtLeast(uint64_t seq) {
  last_seq_ = std::max(last_seq_, seq);
}

}  // namespace bivoc
