#ifndef BIVOC_CORE_CHURN_H_
#define BIVOC_CORE_CHURN_H_

#include <map>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "db/database.h"
#include "linking/multitype.h"
#include "mining/relative_frequency.h"
#include "synth/telecom.h"
#include "text/logistic.h"
#include "text/naive_bayes.h"

namespace bivoc {

// The §VI churn use case: clean the email/SMS streams, link each
// message to its customer record, label the training slice with the
// linked customer's churn status, train a classifier on message
// features, and measure how many actual churners the VoC signal
// detects.
enum class ChurnModel { kNaiveBayes, kLogistic };

struct ChurnPredictorConfig {
  // Classifier family; the paper leaves it unspecified, so both are
  // implemented and compared in the churn bench.
  ChurnModel model = ChurnModel::kNaiveBayes;
  // Fraction of linked documents used for training (time-ordered split:
  // earlier messages train, later messages test — as the paper takes
  // "emails and sms messages for one month" to predict).
  double train_fraction = 0.5;
  // Decision bias toward the churn class (imbalance handling).
  double churn_log_bias = 1.0;
  // Gradient weight of positive examples for the logistic model
  // (its analogue of the NB bias).
  double lr_positive_weight = 12.0;
  // Posterior threshold for flagging a message as churn-signaling.
  double message_threshold = 0.5;
};

struct ChurnEvaluation {
  // Linking stats (paper: "around 18% of emails could not be linked").
  std::size_t emails_total = 0;
  std::size_t emails_unlinked = 0;
  std::size_t sms_total = 0;
  std::size_t sms_dropped = 0;  // spam + non-English

  // Customer-level detection in the test window.
  std::size_t churners_with_messages = 0;
  std::size_t churners_detected = 0;
  std::size_t non_churners_with_messages = 0;
  std::size_t non_churners_flagged = 0;

  double ChurnerRecall() const {
    return churners_with_messages == 0
               ? 0.0
               : static_cast<double>(churners_detected) /
                     static_cast<double>(churners_with_messages);
  }
  double FalseAlarmRate() const {
    return non_churners_with_messages == 0
               ? 0.0
               : static_cast<double>(non_churners_flagged) /
                     static_cast<double>(non_churners_with_messages);
  }
  double EmailUnlinkedShare() const {
    return emails_total == 0 ? 0.0
                             : static_cast<double>(emails_unlinked) /
                                   static_cast<double>(emails_total);
  }

  // Top churn-driver features the classifier surfaced.
  std::vector<std::pair<std::string, double>> top_churn_features;

  // Relevancy analysis of driver concepts inside the churned subset
  // (§IV-D.1 applied to §VI): linked messages are indexed with a
  // "churn status/..." dimension and the drivers over-represented
  // among churners surface here, independent of any classifier.
  std::vector<RelevancyItem> driver_relevancy;
};

class ChurnPredictor {
 public:
  explicit ChurnPredictor(ChurnPredictorConfig config = {});

  // End-to-end run over a telecom world. `linker` must be built over
  // the world's warehouse (telecom_customers). Labels for training come
  // from the *database* churn_status of the linked customer — the
  // pipeline never reads generation-time truth.
  ChurnEvaluation Run(const TelecomWorld& world, const Database& db,
                      MultiTypeLinker* linker);

  const NaiveBayesClassifier& model() const { return model_; }
  const LogisticClassifier& logistic_model() const { return lr_model_; }

 private:
  // Message features: normalized tokens + extracted driver concepts.
  std::vector<std::string> Features(const Document& doc) const;

  ChurnPredictorConfig config_;
  NaiveBayesClassifier model_;
  LogisticClassifier lr_model_;
  ConceptExtractor driver_extractor_;
};

// Registers the telecom churn-driver dictionary on an extractor.
void ConfigureChurnExtractor(ConceptExtractor* extractor);

}  // namespace bivoc

#endif  // BIVOC_CORE_CHURN_H_
