#ifndef BIVOC_CORE_AGENT_KPIS_H_
#define BIVOC_CORE_AGENT_KPIS_H_

#include <map>
#include <string>
#include <vector>

#include "core/car_rental_insights.h"
#include "mining/index_snapshot.h"
#include "synth/car_rental.h"

namespace bivoc {

// Per-agent performance and behaviour KPIs — the §I claim that text
// mining "identif[ies] the differences between approaches and practices
// used by successful agents and unsuccessful agents", plus the KPI
// tracking §II attributes to contact-center tooling. Outcomes come from
// the structured call log; behaviour rates come from mined transcripts.
struct AgentKpi {
  int agent_id = -1;
  std::string name;
  std::size_t calls = 0;
  std::size_t reservations = 0;
  std::size_t unbooked = 0;
  std::size_t service_calls = 0;
  std::size_t value_selling_calls = 0;  // detected in transcript
  std::size_t discount_calls = 0;
  std::size_t weak_start_calls = 0;     // detected weak-start openings
  std::size_t weak_start_discounts = 0;

  double BookingRate() const {
    std::size_t outcomes = reservations + unbooked;
    return outcomes == 0 ? 0.0
                         : static_cast<double>(reservations) /
                               static_cast<double>(outcomes);
  }
  double ValueSellingRate() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(value_selling_calls) /
                            static_cast<double>(calls);
  }
  double DiscountRate() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(discount_calls) /
                            static_cast<double>(calls);
  }
  // How often the agent discounts when the customer opened weak — the
  // §V-B finding ("agents who were doing well ... were primarily doing
  // this by offering more discounts to weak start customers").
  double WeakStartDiscountRate() const {
    return weak_start_calls == 0
               ? 0.0
               : static_cast<double>(weak_start_discounts) /
                     static_cast<double>(weak_start_calls);
  }
};

class AgentKpiBoard {
 public:
  explicit AgentKpiBoard(const CarRentalWorld* world);

  // Accumulates one analyzed call.
  void Record(const CallRecord& call, const CallAnalysis& analysis);

  // Agents with >= min_calls, best booking rate first.
  std::vector<AgentKpi> Ranking(std::size_t min_calls = 1) const;

  // Same ranking recomputed purely from an index snapshot (the "agent
  // id/<id>" dimension AgentProductivityAnalyzer::Index registers),
  // so KPI boards can be served lock-free while calls stream in.
  // Service calls are excluded from indexing, so `calls` counts sales
  // calls only and service_calls stays 0 here.
  std::vector<AgentKpi> SnapshotKpis(const IndexSnapshot& snapshot,
                                     std::size_t min_calls = 1) const;

  // The §V-B comparison: behaviour-rate gap between the top and bottom
  // `group_size` agents by booking rate.
  struct BehaviourGap {
    double value_selling_top = 0.0;
    double value_selling_bottom = 0.0;
    double discount_top = 0.0;
    double discount_bottom = 0.0;
    double weak_discount_top = 0.0;
    double weak_discount_bottom = 0.0;
  };
  BehaviourGap CompareTopBottom(std::size_t group_size,
                                std::size_t min_calls = 5) const;

  // Fixed-width leaderboard for terminal reports.
  std::string RenderReport(std::size_t limit = 10,
                           std::size_t min_calls = 5) const;

 private:
  const CarRentalWorld* world_;  // not owned
  std::map<int, AgentKpi> kpis_;
};

}  // namespace bivoc

#endif  // BIVOC_CORE_AGENT_KPIS_H_
