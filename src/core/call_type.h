#ifndef BIVOC_CORE_CALL_TYPE_H_
#define BIVOC_CORE_CALL_TYPE_H_

#include <map>
#include <string>
#include <vector>

#include "text/naive_bayes.h"

namespace bivoc {

// Call-type classification (paper §II cites call-type classification
// for categorizing contact-center calls): assigns each transcript one
// of the engagement's call types — "reservation", "unbooked",
// "service" — from its word content. Used to route calls to the right
// analysis (service calls are excluded from booking ratios) when the
// structured outcome is missing or not yet linked.
class CallTypeClassifier {
 public:
  CallTypeClassifier() = default;

  void AddExample(const std::string& transcript, const std::string& type);
  void FinishTraining();

  // Most likely type ("" before training).
  std::string Classify(const std::string& transcript) const;

  struct Evaluation {
    std::size_t total = 0;
    std::size_t correct = 0;
    // confusion[truth][predicted] = count.
    std::map<std::string, std::map<std::string, std::size_t>> confusion;

    double Accuracy() const {
      return total == 0 ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(total);
    }
  };

  // Scores a labeled test set.
  Evaluation Evaluate(
      const std::vector<std::pair<std::string, std::string>>& test) const;

 private:
  std::vector<std::string> Features(const std::string& transcript) const;

  NaiveBayesClassifier model_;
  bool trained_ = false;
};

}  // namespace bivoc

#endif  // BIVOC_CORE_CALL_TYPE_H_
