#include "core/car_rental_insights.h"

#include "synth/corpora.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace bivoc {

void ConfigureCarRentalExtractor(ConceptExtractor* extractor) {
  DomainDictionary* dict = extractor->mutable_dictionary();

  // Paper §IV-C example entries.
  dict->Add("child seat", "child seat", "vehicle feature");
  dict->Add("ny", "new york", "place", PosTag::kProperNoun);
  dict->Add("master card", "credit card", "payment methods");
  dict->Add("visa", "credit card", "payment methods");

  // Discount-relating phrases (§V-A: "discount, corporate program,
  // motor club, buying club ... are registered into the domain
  // dictionary as discount-related phrases").
  dict->Add("discount", "discount", "discount");
  dict->Add("discounts", "discount", "discount");
  dict->Add("corporate program", "corporate program", "discount");
  dict->Add("motor club", "motor club", "discount");
  dict->Add("buying club", "buying club", "discount");

  // Vehicle types: class words and models indicating a class ("SUV may
  // be indicated by 'a seven seater', full-size by 'Chevy Impala'").
  dict->Add("suv", "suv", "vehicle type");
  dict->Add("full size", "full-size", "vehicle type");
  dict->Add("mid size", "mid-size", "vehicle type");
  dict->Add("luxury car", "luxury car", "vehicle type");
  for (const auto& m : CarModels()) {
    dict->Add(m.model, m.car_class, "vehicle type");
  }

  // Places.
  for (const auto& city : Cities()) {
    dict->Add(city, city, "place", PosTag::kProperNoun);
  }

  // Value-selling patterns (§V-A examples).
  BIVOC_CHECK_OK(extractor->AddPattern(
      "wonderful rate -> mention of good rate @ value selling"));
  BIVOC_CHECK_OK(extractor->AddPattern(
      "good rate -> mention of good rate @ value selling"));
  BIVOC_CHECK_OK(extractor->AddPattern(
      "wonderful price -> mention of good rate @ value selling"));
  BIVOC_CHECK_OK(extractor->AddPattern(
      "save money -> mention of good rate @ value selling"));
  BIVOC_CHECK_OK(extractor->AddPattern(
      "just <NUM> dollars -> mention of good rate @ value selling"));
  BIVOC_CHECK_OK(extractor->AddPattern(
      "fantastic car -> mention of good vehicle @ value selling"));
  BIVOC_CHECK_OK(extractor->AddPattern(
      "good car -> mention of good vehicle @ value selling"));
  BIVOC_CHECK_OK(extractor->AddPattern(
      "latest model -> mention of good vehicle @ value selling"));

  // Customer intent patterns ("strong start" / "weak start", §V-A).
  BIVOC_CHECK_OK(
      extractor->AddPattern("make a booking -> strong start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("car reservation -> strong start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("to pick up a car -> strong start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("like to book -> strong start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("a booking for -> strong start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("to pick up -> strong start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("to book a -> strong start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("know the rates -> weak start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("the rates -> weak start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("rates for -> weak start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("would it cost -> weak start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("it cost to -> weak start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("how much is a -> weak start @ intent"));
  BIVOC_CHECK_OK(
      extractor->AddPattern("how much is -> weak start @ intent"));

  // Politeness / request patterns (§IV-C example "please + VERB").
  BIVOC_CHECK_OK(extractor->AddPattern("please <VERB> -> request @ requests"));
}

AgentProductivityAnalyzer::AgentProductivityAnalyzer() {
  ConfigureCarRentalExtractor(&extractor_);
}

CallAnalysis AgentProductivityAnalyzer::Analyze(
    const CallRecord& call, const std::string& decoded_text) {
  CallAnalysis out;
  out.call_id = call.call_id;
  out.agent_id = call.agent_id;
  out.reserved = call.reserved;
  out.is_service_call = call.is_service_call;

  for (const Concept& c : extractor_.Extract(decoded_text)) {
    if (c.category == "intent") {
      // Intent only counts near the start of the call.
      if (c.begin_token >= intent_window_) continue;
      if (c.name == "strong start") out.detected_strong = true;
      if (c.name == "weak start") out.detected_weak = true;
    } else if (c.category == "value selling") {
      out.detected_value_selling = true;
    } else if (c.category == "discount") {
      out.detected_discount = true;
    }
  }
  // A call that shows both intent cues keeps only the earlier-style
  // reading: strong wins (booking language dominates rate-shopping
  // language when both appear up front).
  if (out.detected_strong && out.detected_weak) out.detected_weak = false;
  return out;
}

void AgentProductivityAnalyzer::Index(const CallAnalysis& analysis) {
  if (analysis.is_service_call) return;  // §V-A ratio excludes these
  std::vector<std::string> keys;
  if (analysis.detected_strong) keys.emplace_back(kIntentStrong);
  if (analysis.detected_weak) keys.emplace_back(kIntentWeak);
  if (analysis.detected_value_selling) keys.emplace_back(kAnyValueSelling);
  if (analysis.detected_discount) keys.emplace_back(kAnyDiscount);
  keys.emplace_back(analysis.reserved ? kOutcomeReserved : kOutcomeUnbooked);
  if (analysis.agent_id >= 0) {
    keys.push_back(kAgentIdPrefix + std::to_string(analysis.agent_id));
  }
  index_.AddDocument(keys);
}

AssociationTable AgentProductivityAnalyzer::IntentVsOutcome() const {
  return TwoDimensionalAssociation(*index_.SnapshotNow(),
                                   {kIntentStrong, kIntentWeak},
                                   {kOutcomeReserved, kOutcomeUnbooked});
}

AssociationTable AgentProductivityAnalyzer::AgentUtteranceVsOutcome() const {
  return TwoDimensionalAssociation(*index_.SnapshotNow(),
                                   {kAnyValueSelling, kAnyDiscount},
                                   {kOutcomeReserved, kOutcomeUnbooked});
}

}  // namespace bivoc
