#include "core/pipeline.h"

#include "core/ingest.h"
#include "text/tokenizer.h"
#include "util/fault_injection.h"
#include "util/string_util.h"

namespace bivoc {
namespace {

const char* CleanFaultPoint(VocChannel channel) {
  switch (channel) {
    case VocChannel::kEmail:
      return kFaultCleanEmail;
    case VocChannel::kSms:
      return kFaultCleanSms;
    case VocChannel::kCall:
      return kFaultCleanTranscript;
  }
  return kFaultCleanEmail;
}

}  // namespace

VocPipeline::VocPipeline() = default;

void VocPipeline::SetNameRoster(std::vector<std::string> roster) {
  name_roster_.clear();
  for (auto& name : roster) {
    name_roster_.insert(ToLowerCopy(name));
  }
}

Document VocPipeline::MakeDocument(VocChannel channel, const std::string& raw,
                                   int64_t time_bucket) {
  Document doc;
  doc.channel = channel;
  doc.raw_text = raw;
  doc.time_bucket = time_bucket;

  switch (channel) {
    case VocChannel::kEmail: {
      EmailCleaner::Cleaned cleaned = email_cleaner_.Clean(raw);
      doc.clean_text = cleaned.customer_text;
      if (spam_filter_.IsSpam(doc.clean_text)) {
        doc.dropped = true;
        doc.drop_reason = "spam";
        ++stats_.dropped_spam;
      } else if (!language_filter_.IsEnglish(doc.clean_text)) {
        doc.dropped = true;
        doc.drop_reason = "non-english";
        ++stats_.dropped_non_english;
      }
      break;
    }
    case VocChannel::kSms: {
      if (spam_filter_.IsSpam(raw)) {
        doc.dropped = true;
        doc.drop_reason = "spam";
        ++stats_.dropped_spam;
        doc.clean_text = raw;
      } else if (!language_filter_.IsEnglish(raw)) {
        doc.dropped = true;
        doc.drop_reason = "non-english";
        ++stats_.dropped_non_english;
        doc.clean_text = raw;
      } else {
        doc.clean_text = sms_normalizer_.Normalize(raw);
      }
      break;
    }
    case VocChannel::kCall: {
      // Transcripts arrive already decoded; no filtering applies.
      doc.clean_text = raw;
      break;
    }
  }
  return doc;
}

void VocPipeline::AnnotateAndExtract(Document* doc) {
  if (annotators_ != nullptr) {
    Tokenizer tokenizer;
    doc->annotations =
        annotators_->Annotate(tokenizer.Tokenize(doc->clean_text));
    if (!name_roster_.empty()) {
      doc->annotations =
          DropRosterNames(std::move(doc->annotations), name_roster_);
    }
  }
  doc->concepts = extractor_.Extract(doc->clean_text);
}

void VocPipeline::DoLink(Document* doc) {
  if (linker_ == nullptr) return;
  if (!doc->annotations.empty()) {
    doc->link = linker_->Identify(doc->annotations);
  }
  if (doc->link.linked) {
    ++stats_.linked;
  } else {
    ++stats_.unlinked;
  }
}

Document VocPipeline::Finish(Document doc) {
  doc.id = next_id_.fetch_add(1);
  ++stats_.processed;
  if (doc.dropped) return doc;
  AnnotateAndExtract(&doc);
  DoLink(&doc);
  return doc;
}

Document VocPipeline::ProcessEmail(const std::string& raw,
                                   int64_t time_bucket) {
  return Finish(MakeDocument(VocChannel::kEmail, raw, time_bucket));
}

Document VocPipeline::ProcessSms(const std::string& raw,
                                 int64_t time_bucket) {
  return Finish(MakeDocument(VocChannel::kSms, raw, time_bucket));
}

Document VocPipeline::ProcessTranscript(const std::string& text,
                                        int64_t time_bucket) {
  return Finish(MakeDocument(VocChannel::kCall, text, time_bucket));
}

Result<Document> VocPipeline::TryProcess(VocChannel channel,
                                         const std::string& raw,
                                         int64_t time_bucket) {
  BIVOC_RETURN_NOT_OK(
      FaultInjector::Global().MaybeFail(CleanFaultPoint(channel)));
  Document doc = MakeDocument(channel, raw, time_bucket);
  doc.id = next_id_.fetch_add(1);
  ++stats_.processed;
  if (!doc.dropped) AnnotateAndExtract(&doc);
  return doc;
}

Status VocPipeline::LinkDocument(Document* doc) {
  if (linker_ == nullptr) return Status::OK();
  BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(kFaultLinkerLink));
  DoLink(doc);
  return Status::OK();
}

Result<DocId> VocPipeline::TryIndexDocument(
    const Document& doc, const std::vector<std::string>& keys,
    std::string_view route_scope) {
  BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(kFaultIndexAdd));
  return IndexDocument(doc, keys, route_scope);
}

DocId VocPipeline::IndexDocument(
    const Document& doc, const std::vector<std::string>& structured_keys,
    std::string_view route_scope) {
  std::vector<std::string> keys;
  for (const auto& c : doc.concepts) keys.push_back(c.Key());
  keys.insert(keys.end(), structured_keys.begin(), structured_keys.end());
  // Same routing key the cluster router derives from the IngestItem
  // (tenant-prefixed first structured key, else the payload) — stored
  // per doc so a ring change can re-route documents without the
  // original item.
  std::string route = ComposeRouteKey(
      route_scope,
      !structured_keys.empty() ? structured_keys.front() : doc.raw_text);
  return index_.AddDocument(keys, doc.time_bucket, std::move(route));
}

}  // namespace bivoc
