#include "core/pipeline.h"

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace bivoc {

VocPipeline::VocPipeline() = default;

void VocPipeline::SetNameRoster(std::vector<std::string> roster) {
  name_roster_.clear();
  for (auto& name : roster) {
    name_roster_.insert(ToLowerCopy(name));
  }
}

Document VocPipeline::Finish(Document doc) {
  doc.id = next_id_++;
  ++stats_.processed;
  if (doc.dropped) return doc;

  if (annotators_ != nullptr) {
    Tokenizer tokenizer;
    doc.annotations =
        annotators_->Annotate(tokenizer.Tokenize(doc.clean_text));
    if (!name_roster_.empty()) {
      doc.annotations =
          DropRosterNames(std::move(doc.annotations), name_roster_);
    }
  }
  if (linker_ != nullptr) {
    if (!doc.annotations.empty()) {
      doc.link = linker_->Identify(doc.annotations);
    }
    if (doc.link.linked) {
      ++stats_.linked;
    } else {
      ++stats_.unlinked;
    }
  }
  doc.concepts = extractor_.Extract(doc.clean_text);
  return doc;
}

Document VocPipeline::ProcessEmail(const std::string& raw,
                                   int64_t time_bucket) {
  Document doc;
  doc.channel = VocChannel::kEmail;
  doc.raw_text = raw;
  doc.time_bucket = time_bucket;

  EmailCleaner::Cleaned cleaned = email_cleaner_.Clean(raw);
  doc.clean_text = cleaned.customer_text;

  if (spam_filter_.IsSpam(doc.clean_text)) {
    doc.dropped = true;
    doc.drop_reason = "spam";
    ++stats_.dropped_spam;
  } else if (!language_filter_.IsEnglish(doc.clean_text)) {
    doc.dropped = true;
    doc.drop_reason = "non-english";
    ++stats_.dropped_non_english;
  }
  return Finish(std::move(doc));
}

Document VocPipeline::ProcessSms(const std::string& raw,
                                 int64_t time_bucket) {
  Document doc;
  doc.channel = VocChannel::kSms;
  doc.raw_text = raw;
  doc.time_bucket = time_bucket;

  if (spam_filter_.IsSpam(raw)) {
    doc.dropped = true;
    doc.drop_reason = "spam";
    ++stats_.dropped_spam;
    doc.clean_text = raw;
    return Finish(std::move(doc));
  }
  if (!language_filter_.IsEnglish(raw)) {
    doc.dropped = true;
    doc.drop_reason = "non-english";
    ++stats_.dropped_non_english;
    doc.clean_text = raw;
    return Finish(std::move(doc));
  }
  doc.clean_text = sms_normalizer_.Normalize(raw);
  return Finish(std::move(doc));
}

Document VocPipeline::ProcessTranscript(const std::string& text,
                                        int64_t time_bucket) {
  Document doc;
  doc.channel = VocChannel::kCall;
  doc.raw_text = text;
  doc.clean_text = text;
  doc.time_bucket = time_bucket;
  return Finish(std::move(doc));
}

DocId VocPipeline::IndexDocument(
    const Document& doc, const std::vector<std::string>& structured_keys) {
  std::vector<std::string> keys;
  for (const auto& c : doc.concepts) keys.push_back(c.Key());
  keys.insert(keys.end(), structured_keys.begin(), structured_keys.end());
  return index_.AddDocument(keys, doc.time_bucket);
}

}  // namespace bivoc
