#include "core/call_type.h"

#include "text/tokenizer.h"

namespace bivoc {

std::vector<std::string> CallTypeClassifier::Features(
    const std::string& transcript) const {
  // Unigrams + adjacent bigrams: call types differ in formulaic phrase
  // patterns ("your reservation is confirmed", "call back later",
  // "change my previous booking"), which bigrams capture.
  std::vector<std::string> words = TokenizeWords(transcript);
  std::vector<std::string> features = words;
  for (std::size_t i = 0; i + 1 < words.size(); ++i) {
    features.push_back(words[i] + "_" + words[i + 1]);
  }
  return features;
}

void CallTypeClassifier::AddExample(const std::string& transcript,
                                    const std::string& type) {
  model_.AddExample(Features(transcript), type);
  trained_ = false;
}

void CallTypeClassifier::FinishTraining() {
  model_.Finish();
  trained_ = true;
}

std::string CallTypeClassifier::Classify(
    const std::string& transcript) const {
  if (!trained_) return "";
  auto pred = model_.Predict(Features(transcript));
  if (!pred.ok()) return "";
  return pred->label;
}

CallTypeClassifier::Evaluation CallTypeClassifier::Evaluate(
    const std::vector<std::pair<std::string, std::string>>& test) const {
  Evaluation eval;
  for (const auto& [transcript, truth] : test) {
    std::string predicted = Classify(transcript);
    ++eval.total;
    if (predicted == truth) ++eval.correct;
    ++eval.confusion[truth][predicted];
  }
  return eval;
}

}  // namespace bivoc
