#include "core/intervention.h"

#include <map>

namespace bivoc {

namespace {

struct AgentTally {
  std::size_t reservations = 0;
  std::size_t unbooked = 0;
};

void Tally(const std::vector<CallRecord>& calls,
           std::map<int, AgentTally>* per_agent) {
  for (const auto& call : calls) {
    if (call.is_service_call) continue;
    auto& tally = (*per_agent)[call.agent_id];
    if (call.reserved) {
      ++tally.reservations;
    } else {
      ++tally.unbooked;
    }
  }
}

void Aggregate(const std::map<int, AgentTally>& per_agent, int num_trained,
               GroupStats* trained, GroupStats* control,
               std::vector<double>* trained_rates,
               std::vector<double>* control_rates) {
  for (const auto& [agent_id, tally] : per_agent) {
    GroupStats* group = agent_id < num_trained ? trained : control;
    group->reservations += tally.reservations;
    group->unbooked += tally.unbooked;
    std::size_t total = tally.reservations + tally.unbooked;
    if (total == 0) continue;
    double rate =
        static_cast<double>(tally.reservations) / static_cast<double>(total);
    if (agent_id < num_trained) {
      if (trained_rates != nullptr) trained_rates->push_back(rate);
    } else {
      if (control_rates != nullptr) control_rates->push_back(rate);
    }
  }
}

}  // namespace

InterventionResult RunIntervention(CarRentalWorld* world,
                                   const InterventionConfig& config) {
  InterventionResult result;

  // Pre-period: nobody trained.
  world->TrainAgents(0);
  auto before = world->GenerateCalls(config.calls_per_period, 0,
                                     config.seed);
  std::map<int, AgentTally> tally_before;
  Tally(before, &tally_before);
  Aggregate(tally_before, config.num_trained, &result.trained_before,
            &result.control_before, nullptr, nullptr);

  // Train the first num_trained agents, run the post period.
  world->TrainAgents(config.num_trained);
  auto after = world->GenerateCalls(config.calls_per_period,
                                    world->config().days,
                                    config.seed + 1);
  std::map<int, AgentTally> tally_after;
  Tally(after, &tally_after);
  Aggregate(tally_after, config.num_trained, &result.trained_after,
            &result.control_after, &result.trained_agent_rates,
            &result.control_agent_rates);

  result.ttest =
      WelchTTest(result.trained_agent_rates, result.control_agent_rates);
  return result;
}

}  // namespace bivoc
