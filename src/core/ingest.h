#ifndef BIVOC_CORE_INGEST_H_
#define BIVOC_CORE_INGEST_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "net/json.h"
#include "serve/report_server.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace bivoc {

class IngestJournal;  // core/persist.h

// Circuit breaker guarding a flaky dependency (here: the linking
// engine). Closed = normal operation; after `failure_threshold`
// consecutive failures it opens and short-circuits callers; after
// `cool_off_ms` the next Allow() moves it to half-open, where probe
// calls are let through and `half_open_successes` consecutive
// successes close it again (one failure re-opens it). Thread-safe.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    int failure_threshold = 5;
    int64_t cool_off_ms = 100;
    int half_open_successes = 2;
    // Injectable monotonic clock (ms) so tests can step time
    // deterministically; default is std::chrono::steady_clock.
    std::function<int64_t()> clock_ms;
  };

  CircuitBreaker();
  explicit CircuitBreaker(Options options);

  // True when the protected call may proceed. An open breaker whose
  // cool-off has elapsed transitions to half-open and admits a probe.
  bool Allow();
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  std::size_t times_opened() const;
  // Calls rejected while open (before cool-off).
  std::size_t short_circuited() const;

 private:
  int64_t NowMs() const;

  mutable std::mutex mu_;
  Options opts_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probe_successes_ = 0;
  int64_t opened_at_ms_ = 0;
  std::size_t times_opened_ = 0;
  std::size_t short_circuited_ = 0;
};

const char* CircuitBreakerStateName(CircuitBreaker::State state);

// One unit of work for batch ingestion: a raw channel payload plus the
// structured dimension keys the caller wants indexed alongside it.
struct IngestItem {
  VocChannel channel = VocChannel::kEmail;
  std::string payload;
  int64_t time_bucket = 0;
  std::vector<std::string> structured_keys;
  // Owning tenant ("" = untenanted). Carried through the WAL and into
  // the document's routing key (ComposeRouteKey) so a multi-tenant
  // cluster shards and rebalances tenants independently — two tenants
  // sending the same structured key never land in each other's way.
  std::string tenant;
};

// The cluster routing key of a tenant-scoped document:
// "<tenant>\x1f<base>" when tenant is non-empty, else `base` alone —
// byte-identical to the untenanted world. The 0x1f unit separator
// cannot appear in a tenant id (manifest validation rejects control
// characters), so the composition never collides with a raw key.
std::string ComposeRouteKey(std::string_view tenant, std::string_view base);

// A document that exhausted its retries. Carries everything needed to
// replay it once the underlying fault clears.
struct DeadLetter {
  IngestItem item;
  Status status;      // last failure observed
  int attempts = 0;   // cumulative attempts across ingest + replays
};

// Bounded, thread-safe holding pen for failed documents. When full,
// Push rejects the letter (the overflow counter records the loss, and
// a rate-limited warning is logged) so a misbehaving upstream cannot
// eat unbounded memory.
class DeadLetterQueue {
 public:
  explicit DeadLetterQueue(std::size_t capacity = 1024);

  bool Push(DeadLetter letter);
  // Removes and returns everything queued (replay takes ownership).
  // Letters are gone the moment this returns — prefer the two-phase
  // drain below when the caller might die mid-replay.
  std::vector<DeadLetter> Drain();

  // Two-phase drain: BeginDrain moves the queued letters to an
  // in-flight holding area and returns them; the caller Ack()s each
  // index it fully handled (whether the replay succeeded or re-queued
  // a fresh letter); EndDrain restores every unacknowledged letter to
  // the queue — even past capacity, since they were admitted once —
  // and returns how many it restored. A letter is therefore never lost
  // to a replay worker that died mid-flight. One drain at a time; a
  // nested BeginDrain returns empty.
  std::vector<DeadLetter> BeginDrain();
  void Ack(std::size_t drain_index);
  std::size_t EndDrain();

  // Non-destructive copy of the queued letters (checkpointing).
  std::vector<DeadLetter> Peek() const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return capacity_; }
  std::size_t overflowed() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::deque<DeadLetter> letters_;
  std::size_t overflowed_ = 0;
  // Two-phase drain state.
  bool draining_ = false;
  std::vector<DeadLetter> in_flight_;
  std::vector<char> acked_;
  // Rate-limiting for the overflow warning.
  int64_t last_overflow_warn_ms_ = 0;
  std::size_t overflow_since_warn_ = 0;
};

// Journal/checkpoint health, attached to HealthReport when durability
// is enabled (see core/persist.h and BivocEngine::EnableDurability).
struct DurabilityStats {
  bool enabled = false;
  std::size_t wal_records_appended = 0;
  std::size_t wal_append_failures = 0;
  std::size_t wal_batches_rolled_back = 0;
  uint64_t checkpoint_generation = 0;
  std::size_t checkpoint_fallbacks = 0;
  std::size_t docs_from_checkpoint = 0;
  std::size_t wal_records_replayed = 0;
  std::size_t wal_corrupt_records = 0;
};

// Thread-safe health accounting for ingestion, extending the
// pipeline's Stats with the failure-handling outcomes. Invariant per
// batch (and cumulatively): submitted == processed + dropped +
// dead_lettered — every document is accounted for exactly once.
struct HealthReport {
  std::size_t submitted = 0;
  std::size_t processed = 0;       // cleaned and indexed (incl. degraded)
  std::size_t dropped = 0;         // spam / non-English filter verdicts
  std::size_t degraded = 0;        // indexed without a link (linker down)
  std::size_t retried = 0;         // extra attempts beyond the first
  std::size_t dead_lettered = 0;
  std::size_t dead_letter_overflow = 0;
  std::size_t short_circuited = 0;  // link calls rejected by open breaker
  std::size_t replayed = 0;         // dead letters recovered by Replay
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  std::size_t breaker_opened = 0;
  VocPipeline::Stats::Snapshot pipeline;
  DurabilityStats durability;
  // Query-serving health (zeroes until a ReportServer handled traffic;
  // see serve/report_server.h and BivocEngine::serve()).
  ServeStats serving;

  // Compact JSON rendering — the single source of truth shared by the
  // gateway's /healthz body and ToString() (which is its dump).
  std::string ToString() const;
};

JsonValue HealthReportToJson(const HealthReport& report);

struct IngestOptions {
  std::size_t num_threads = 4;
  std::size_t dead_letter_capacity = 1024;
  uint64_t seed = 0x5eedULL;  // seeds per-document retry jitter
  RetryPolicy clean_retry;    // cleaning/annotation stage
  RetryPolicy link_retry;     // linking stage (inside the breaker)
  RetryPolicy index_retry;    // concept-index stage
  CircuitBreaker::Options breaker;
};

// Fault-tolerant batch ingestion front-end over VocPipeline: documents
// are cleaned/annotated in parallel on a ThreadPool, linked behind a
// CircuitBreaker with retries, and indexed in parallel too — the
// concept index stripes writers across ConceptId shards, so no ingest
// stage serializes. Each batch ends with one index Publish() so the
// new documents become visible to snapshot readers. A document that
// keeps failing lands in the DeadLetterQueue instead of poisoning its
// batch; a linker outage degrades documents to unlinked-but-indexed
// instead of stalling ingestion.
class IngestService {
 public:
  explicit IngestService(VocPipeline* pipeline,
                         IngestOptions options = IngestOptions());

  // Ingests a batch and returns that batch's HealthReport (breaker and
  // pipeline fields reflect cumulative state).
  HealthReport IngestBatch(const std::vector<IngestItem>& items);
  HealthReport Ingest(const IngestItem& item);

  // Drains the dead-letter queue and re-runs every letter through the
  // full ingest path. Letters that fail again are re-queued with their
  // attempt counts accumulated. Returns the replay's HealthReport.
  HealthReport ReplayDeadLetters();

  // Attaches the write-ahead journal (not owned; may be nullptr to
  // detach). With a journal attached, IngestBatch appends every item
  // to the WAL and fsyncs *before* processing; a batch whose journal
  // write fails is rolled back and dead-lettered wholesale, so by the
  // time IngestBatch returns each submitted document is either durably
  // journaled or parked in the dead-letter queue.
  void AttachJournal(IngestJournal* journal) { journal_ = journal; }
  IngestJournal* journal() const { return journal_; }

  // Recovery path: runs items through the full ingest pipeline WITHOUT
  // re-journaling them (they are already in the WAL being replayed).
  HealthReport ReplayJournal(const std::vector<IngestItem>& items);

  // Cumulative report across all batches and replays.
  HealthReport report() const;

  DeadLetterQueue* dead_letters() { return &dead_letters_; }
  const DeadLetterQueue& dead_letters() const { return dead_letters_; }
  CircuitBreaker* breaker() { return &breaker_; }
  const IngestOptions& options() const { return opts_; }

 private:
  struct Counters {
    std::atomic<std::size_t> processed{0};
    std::atomic<std::size_t> dropped{0};
    std::atomic<std::size_t> degraded{0};
    std::atomic<std::size_t> retried{0};
    std::atomic<std::size_t> dead_lettered{0};
    std::atomic<std::size_t> short_circuited{0};
    std::atomic<std::size_t> replayed{0};
  };

  // Runs one document through clean -> link -> index with per-stage
  // retries and fault isolation. Returns true when the document was
  // handled (indexed or filtered), false when it was dead-lettered.
  bool ProcessOne(const IngestItem& item, int prior_attempts,
                  Counters* counters);
  HealthReport RunBatch(const std::vector<IngestItem>& items, bool journal);
  void FillShared(HealthReport* report) const;

  VocPipeline* pipeline_;  // not owned
  IngestJournal* journal_ = nullptr;  // not owned; optional
  IngestOptions opts_;
  ThreadPool pool_;
  CircuitBreaker breaker_;
  DeadLetterQueue dead_letters_;
  Counters total_;
  std::atomic<std::size_t> submitted_total_{0};
  std::atomic<uint64_t> seed_counter_{0};
};

}  // namespace bivoc

#endif  // BIVOC_CORE_INGEST_H_
