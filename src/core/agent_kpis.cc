#include "core/agent_kpis.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace bivoc {

AgentKpiBoard::AgentKpiBoard(const CarRentalWorld* world) : world_(world) {
  BIVOC_CHECK(world_ != nullptr);
}

void AgentKpiBoard::Record(const CallRecord& call,
                           const CallAnalysis& analysis) {
  AgentKpi& kpi = kpis_[call.agent_id];
  if (kpi.agent_id < 0) {
    kpi.agent_id = call.agent_id;
    kpi.name =
        world_->agents()[static_cast<std::size_t>(call.agent_id)].name;
  }
  ++kpi.calls;
  if (call.is_service_call) {
    ++kpi.service_calls;
  } else if (call.reserved) {
    ++kpi.reservations;
  } else {
    ++kpi.unbooked;
  }
  if (analysis.detected_value_selling) ++kpi.value_selling_calls;
  if (analysis.detected_discount) ++kpi.discount_calls;
  if (analysis.detected_weak) {
    ++kpi.weak_start_calls;
    if (analysis.detected_discount) ++kpi.weak_start_discounts;
  }
}

std::vector<AgentKpi> AgentKpiBoard::Ranking(std::size_t min_calls) const {
  std::vector<AgentKpi> out;
  for (const auto& [id, kpi] : kpis_) {
    if (kpi.calls >= min_calls) out.push_back(kpi);
  }
  std::sort(out.begin(), out.end(), [](const AgentKpi& a, const AgentKpi& b) {
    if (a.BookingRate() != b.BookingRate()) {
      return a.BookingRate() > b.BookingRate();
    }
    return a.agent_id < b.agent_id;
  });
  return out;
}

std::vector<AgentKpi> AgentKpiBoard::SnapshotKpis(
    const IndexSnapshot& snapshot, std::size_t min_calls) const {
  std::vector<AgentKpi> out;
  ConceptId reserved = snapshot.Resolve(kOutcomeReserved);
  ConceptId unbooked = snapshot.Resolve(kOutcomeUnbooked);
  ConceptId value_selling = snapshot.Resolve(kAnyValueSelling);
  ConceptId discount = snapshot.Resolve(kAnyDiscount);
  ConceptId weak = snapshot.Resolve(kIntentWeak);

  for (ConceptId agent_key : snapshot.IdsWithPrefix(kAgentIdPrefix)) {
    std::string_view key = snapshot.KeyOf(agent_key);
    int64_t agent_id = -1;
    if (!ParseInt64(key.substr(std::string_view(kAgentIdPrefix).size()),
                    &agent_id)) {
      continue;
    }
    if (agent_id < 0 ||
        static_cast<std::size_t>(agent_id) >= world_->agents().size()) {
      continue;
    }
    AgentKpi kpi;
    kpi.agent_id = static_cast<int>(agent_id);
    kpi.name = world_->agents()[static_cast<std::size_t>(agent_id)].name;
    kpi.calls = snapshot.CountId(agent_key);
    if (kpi.calls < min_calls) continue;
    kpi.reservations = snapshot.CountBothIds(agent_key, reserved);
    kpi.unbooked = snapshot.CountBothIds(agent_key, unbooked);
    kpi.value_selling_calls = snapshot.CountBothIds(agent_key, value_selling);
    kpi.discount_calls = snapshot.CountBothIds(agent_key, discount);
    kpi.weak_start_calls = snapshot.CountBothIds(agent_key, weak);
    // Three-way leapfrog join over the compressed lists — no doc set
    // is ever materialized.
    kpi.weak_start_discounts =
        snapshot.CountAllIds({agent_key, weak, discount});
    out.push_back(std::move(kpi));
  }
  std::sort(out.begin(), out.end(), [](const AgentKpi& a, const AgentKpi& b) {
    if (a.BookingRate() != b.BookingRate()) {
      return a.BookingRate() > b.BookingRate();
    }
    return a.agent_id < b.agent_id;
  });
  return out;
}

AgentKpiBoard::BehaviourGap AgentKpiBoard::CompareTopBottom(
    std::size_t group_size, std::size_t min_calls) const {
  BehaviourGap gap;
  auto ranking = Ranking(min_calls);
  if (ranking.size() < 2 * group_size || group_size == 0) return gap;

  auto rates = [](const std::vector<AgentKpi>& agents, std::size_t begin,
                  std::size_t end, double* vs, double* disc,
                  double* weak_disc) {
    double vs_sum = 0.0, disc_sum = 0.0, wd_sum = 0.0;
    std::size_t wd_agents = 0;
    for (std::size_t i = begin; i < end; ++i) {
      vs_sum += agents[i].ValueSellingRate();
      disc_sum += agents[i].DiscountRate();
      if (agents[i].weak_start_calls > 0) {
        wd_sum += agents[i].WeakStartDiscountRate();
        ++wd_agents;
      }
    }
    double n = static_cast<double>(end - begin);
    *vs = vs_sum / n;
    *disc = disc_sum / n;
    *weak_disc = wd_agents > 0 ? wd_sum / static_cast<double>(wd_agents)
                               : 0.0;
  };
  rates(ranking, 0, group_size, &gap.value_selling_top, &gap.discount_top,
        &gap.weak_discount_top);
  rates(ranking, ranking.size() - group_size, ranking.size(),
        &gap.value_selling_bottom, &gap.discount_bottom,
        &gap.weak_discount_bottom);
  return gap;
}

std::string AgentKpiBoard::RenderReport(std::size_t limit,
                                        std::size_t min_calls) const {
  auto ranking = Ranking(min_calls);
  std::string out;
  out += "agent        calls  booked%  valuesell%  discount%  weakdisc%\n";
  std::size_t shown = 0;
  for (const auto& kpi : ranking) {
    if (shown++ >= limit) break;
    out += kpi.name + std::string(kpi.name.size() < 12
                                      ? 12 - kpi.name.size()
                                      : 1, ' ');
    out += " " + std::to_string(kpi.calls);
    out += "     " + FormatDouble(kpi.BookingRate() * 100.0, 0);
    out += "       " + FormatDouble(kpi.ValueSellingRate() * 100.0, 0);
    out += "          " + FormatDouble(kpi.DiscountRate() * 100.0, 0);
    out += "         " + FormatDouble(kpi.WeakStartDiscountRate() * 100.0, 0);
    out += "\n";
  }
  return out;
}

}  // namespace bivoc
