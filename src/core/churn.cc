#include "core/churn.h"

#include <algorithm>
#include <cmath>

#include "synth/corpora.h"
#include "text/tokenizer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace bivoc {

void ConfigureChurnExtractor(ConceptExtractor* extractor) {
  DomainDictionary* dict = extractor->mutable_dictionary();
  for (const auto& product : TelecomProducts()) {
    dict->Add(product, product, "product");
  }
  // Driver phrases enter as multi-word dictionary surfaces mapped to
  // their driver category, so a single concept key ("churn driver/
  // billing issue") summarizes many surface variants.
  for (const auto& driver : ChurnDrivers()) {
    for (const auto& phrase : driver.phrases) {
      dict->Add(phrase, driver.name, "churn driver");
    }
  }
  // Leaving-intent patterns.
  BIVOC_CHECK_OK(extractor->AddPattern(
      "have to leave -> leaving intent @ churn signal"));
  BIVOC_CHECK_OK(extractor->AddPattern(
      "going to disconnect -> leaving intent @ churn signal"));
  BIVOC_CHECK_OK(extractor->AddPattern(
      "want to discontinue -> leaving intent @ churn signal"));
  BIVOC_CHECK_OK(extractor->AddPattern(
      "switching to -> leaving intent @ churn signal"));
}

ChurnPredictor::ChurnPredictor(ChurnPredictorConfig config)
    : config_(config) {
  ConfigureChurnExtractor(&driver_extractor_);
}

std::vector<std::string> ChurnPredictor::Features(const Document& doc) const {
  std::vector<std::string> features;
  for (const auto& w : TokenizeWords(doc.clean_text)) {
    if (w.size() < 3) continue;  // drop stubs
    // Identity material (amounts, dates, receipt digits) is linking
    // evidence, not churn signal.
    bool has_digit = false;
    for (char c : w) {
      if (c >= '0' && c <= '9') has_digit = true;
    }
    if (has_digit) continue;
    features.push_back(w);
  }
  for (const auto& c : driver_extractor_.Extract(doc.clean_text)) {
    features.push_back(c.Key());
  }
  return features;
}

ChurnEvaluation ChurnPredictor::Run(const TelecomWorld& world,
                                    const Database& db,
                                    MultiTypeLinker* linker) {
  ChurnEvaluation eval;
  auto customers_or = db.GetTable("telecom_customers");
  BIVOC_CHECK(customers_or.ok()) << customers_or.status();
  const Table* customers = *customers_or;

  // Pipeline wiring.
  VocPipeline pipeline;
  AnnotatorPipeline annotators;
  {
    std::vector<std::string> gazetteer = FirstNames();
    gazetteer.insert(gazetteer.end(), LastNames().begin(), LastNames().end());
    annotators.Add(std::make_unique<NameAnnotator>(gazetteer));
    annotators.Add(std::make_unique<PhoneAnnotator>());
    annotators.Add(std::make_unique<DateAnnotator>());
    annotators.Add(std::make_unique<MoneyAnnotator>());
  }
  pipeline.SetAnnotators(&annotators);
  pipeline.SetLinker(linker);
  // Driver concepts on the pipeline extractor too, so indexed docs
  // carry "churn driver/..." keys for the relevancy analysis below.
  ConfigureChurnExtractor(pipeline.mutable_extractor());
  auto vocab = world.DomainVocabulary();
  pipeline.mutable_language_filter()->AddVocabulary(vocab);
  pipeline.mutable_sms_normalizer()->SetSpellingDictionary(vocab);

  struct Processed {
    Document doc;
    int linked_customer = -1;   // id column of the linked row
    bool linked_churner = false;
    int day = 0;
  };
  std::vector<Processed> docs;
  docs.reserve(world.emails().size() + world.sms().size());

  auto handle = [&](const VocDocument& voc) {
    Processed p;
    p.day = voc.day_index;
    if (voc.channel == VocChannel::kEmail) {
      p.doc = pipeline.ProcessEmail(voc.raw_text, voc.day_index);
      ++eval.emails_total;
    } else {
      p.doc = pipeline.ProcessSms(voc.raw_text, voc.day_index);
      ++eval.sms_total;
      if (p.doc.dropped) ++eval.sms_dropped;
    }
    if (!p.doc.dropped && p.doc.link.linked &&
        p.doc.link.table == "telecom_customers") {
      auto id = customers->GetInt(p.doc.link.row, "id");
      auto status = customers->GetString(p.doc.link.row, "churn_status");
      if (id.ok() && status.ok()) {
        p.linked_customer = static_cast<int>(*id);
        p.linked_churner = (*status == "churned");
      }
    }
    if (voc.channel == VocChannel::kEmail && p.linked_customer < 0) {
      ++eval.emails_unlinked;
    }
    if (!p.doc.dropped && p.linked_customer >= 0) {
      // Join the DB churn label into the concept index as a structured
      // dimension, enabling the snapshot relevancy analysis below.
      pipeline.IndexDocument(
          p.doc, {p.linked_churner ? "churn status/churned"
                                   : "churn status/active"});
    }
    docs.push_back(std::move(p));
  };
  for (const auto& e : world.emails()) handle(e);
  for (const auto& s : world.sms()) handle(s);

  // Time-ordered split.
  int horizon = 30 * world.config().months;
  int train_cutoff =
      static_cast<int>(config_.train_fraction * static_cast<double>(horizon));

  // Train on linked, non-dropped documents from the training window.
  model_ = NaiveBayesClassifier();
  std::vector<std::vector<std::string>> lr_docs;
  std::vector<bool> lr_labels;
  for (const auto& p : docs) {
    if (p.day >= train_cutoff) continue;
    if (p.doc.dropped || p.linked_customer < 0) continue;
    if (config_.model == ChurnModel::kLogistic) {
      lr_docs.push_back(Features(p.doc));
      lr_labels.push_back(p.linked_churner);
    } else {
      model_.AddExample(Features(p.doc),
                        p.linked_churner ? "churn" : "active");
    }
  }
  if (config_.model == ChurnModel::kLogistic) {
    LogisticClassifier::Options lr_options;
    // Imbalance handling: weight the rare churn class up, the logistic
    // analogue of the NB decision bias.
    lr_options.positive_weight = config_.lr_positive_weight;
    lr_model_ = LogisticClassifier(lr_options);
    lr_model_.Train(lr_docs, lr_labels);
  } else {
    model_.SetClassBias("churn", config_.churn_log_bias);
    model_.Finish();
  }

  // Test window: flag customers by their linked messages.
  std::map<int, bool> customer_flagged;    // linked id -> any churn flag
  std::map<int, bool> customer_is_churner; // DB truth
  for (const auto& p : docs) {
    if (p.day < train_cutoff) continue;
    if (p.doc.dropped || p.linked_customer < 0) continue;
    auto features = Features(p.doc);
    double posterior = config_.model == ChurnModel::kLogistic
                           ? lr_model_.Probability(features)
                           : model_.Posterior(features, "churn");
    bool flagged = posterior >= config_.message_threshold;
    customer_flagged[p.linked_customer] =
        customer_flagged[p.linked_customer] || flagged;
    customer_is_churner[p.linked_customer] = p.linked_churner;
  }
  for (const auto& [customer, churner] : customer_is_churner) {
    bool flagged = customer_flagged[customer];
    if (churner) {
      ++eval.churners_with_messages;
      if (flagged) ++eval.churners_detected;
    } else {
      ++eval.non_churners_with_messages;
      if (flagged) ++eval.non_churners_flagged;
    }
  }
  eval.top_churn_features = config_.model == ChurnModel::kLogistic
                                ? lr_model_.TopFeatures(15)
                                : model_.TopFeatures("churn", 15);

  // Classifier-free driver view over the index snapshot: which driver
  // concepts are over-represented in churners' messages.
  RelevancyOptions relevancy_options;
  relevancy_options.key_prefix = "churn driver/";
  relevancy_options.min_subset_count = 2;
  eval.driver_relevancy = RelevancyAnalysis(
      *pipeline.Snapshot(), "churn status/churned", relevancy_options);
  return eval;
}

}  // namespace bivoc
