#ifndef BIVOC_CORE_PERSIST_H_
#define BIVOC_CORE_PERSIST_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/ingest.h"
#include "linking/linker.h"
#include "util/result.h"
#include "util/wal.h"

namespace bivoc {

// Crash-safe durability for the BIVoC engine (DESIGN.md §9). Two
// cooperating pieces:
//
//  * IngestJournal — the write-ahead log of accepted raw documents.
//    Every IngestItem is journaled (with a monotonically increasing
//    sequence id) *before* clean→link→index runs, with one fsync per
//    batch; a crash mid-batch therefore loses no accepted document.
//    A batch whose journal append fails is rolled back to the
//    pre-batch offset so the log never carries a half-journaled batch.
//
//  * CheckpointStore — versioned, checksummed snapshots of the mined
//    state: the published index contents (vocabulary + per-document
//    concept ids + time buckets), the EM-learned per-(attribute,
//    entity-type) linker weights, and the dead-letter backlog. A
//    manifest selects the newest generation; loading falls back to the
//    previous generation when the newest fails its checksum, and to a
//    directory scan when the manifest itself is damaged.
//
// Recovery (BivocEngine::Recover) = load newest valid checkpoint,
// replay the WAL records past the checkpoint's watermark, re-publish
// the snapshot. Corrupt WAL records are skipped and counted, never
// fatal.

// --- checkpoint payload ----------------------------------------------

struct CheckpointData {
  // Highest journal sequence id whose effects this checkpoint
  // contains; recovery replays only WAL records above it.
  uint64_t wal_watermark = 0;

  // Index contents. `vocabulary[i]` is the key for local id i;
  // `doc_concepts[d]` lists local ids per document in DocId order.
  std::vector<std::string> vocabulary;
  std::vector<std::vector<uint32_t>> doc_concepts;
  std::vector<int64_t> doc_times;
  // Cluster routing key per document (version >= 2 checkpoints; empty
  // for every doc when a v1 checkpoint is loaded).
  std::vector<std::string> doc_route_keys;

  // Learned linker weights per entity type (warehouse table).
  std::map<std::string, RoleWeights> linker_weights;

  std::vector<DeadLetter> dead_letters;
};

std::string EncodeCheckpoint(const CheckpointData& data);
Result<CheckpointData> DecodeCheckpoint(std::string_view payload);

// One mined document streamed out of a shard for ring rebalancing:
// everything needed to re-index it on a new owner without re-running
// clean/link (the concept keys already include structured dimensions).
struct ExportedDoc {
  std::string route_key;
  std::vector<std::string> concept_keys;
  int64_t time_bucket = 0;
};

// --- journal record payloads -----------------------------------------

struct JournalRecord {
  uint64_t seq = 0;
  IngestItem item;
};

std::string EncodeJournalItem(uint64_t seq, const IngestItem& item);
Result<JournalRecord> DecodeJournalItem(std::string_view payload);

// --- recovery accounting ---------------------------------------------

struct RecoveryReport {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_generation = 0;
  // Newer generations (or a damaged manifest) skipped as corrupt
  // before a valid checkpoint was found.
  std::size_t checkpoint_fallbacks = 0;
  std::size_t docs_from_checkpoint = 0;
  std::size_t dead_letters_restored = 0;

  std::size_t wal_records_replayed = 0;
  std::size_t wal_records_skipped = 0;  // seq <= watermark or duplicate
  std::size_t wal_corrupt_records = 0;  // bad CRC / framing / decode
  std::size_t wal_truncated_bytes = 0;  // torn tail dropped

  std::string ToString() const;
};

// --- checkpoint store ------------------------------------------------

// Directory layout:
//   <dir>/MANIFEST               newest + retained generation numbers
//   <dir>/checkpoint-%08llu.ckpt checksummed checkpoint blobs
//   <dir>/wal.log                the ingest journal
// All files are whole-file checksummed (checkpoint_io) except the WAL,
// which checksums per record. Not thread-safe: Write/LoadNewest are
// control-plane calls made at batch boundaries.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string dir, std::size_t retain = 2);

  // Creates the directory if needed and discovers the current
  // generation from the manifest (or a directory scan).
  Status Init();

  // Writes generation current+1, commits the manifest, prunes
  // generations beyond the retention window. On any failure the
  // previous generation stays current.
  Result<uint64_t> Write(const CheckpointData& data);

  struct Loaded {
    CheckpointData data;
    uint64_t generation = 0;
    std::size_t fallbacks = 0;
  };
  // Newest checksum-valid checkpoint; kNotFound when none exists (the
  // fallback count still reports how many corrupt ones were skipped).
  Result<Loaded> LoadNewest() const;

  uint64_t current_generation() const { return current_gen_; }
  std::string CheckpointPath(uint64_t generation) const;
  std::string ManifestPath() const;
  std::string WalPath() const;
  const std::string& dir() const { return dir_; }

 private:
  std::vector<uint64_t> ListGenerationsOnDisk() const;

  std::string dir_;
  std::size_t retain_;
  uint64_t current_gen_ = 0;
};

// --- rebalance export ------------------------------------------------

// Streams a shard's durable state out of its checkpoint + WAL — the
// data-plane source for ring-diff rebalancing and offline inspection.
// Checkpointed documents arrive fully mined (ExportedDoc); WAL records
// past the checkpoint watermark arrive as raw IngestItems, because
// clean→link→index has not necessarily been folded into a checkpoint
// for them yet. Corrupt WAL records are skipped and counted, never
// fatal (same contract as recovery).
class ExportIterator {
 public:
  struct Record {
    bool is_raw = false;
    ExportedDoc doc;    // valid when !is_raw
    IngestItem item;    // valid when is_raw
    uint64_t seq = 0;   // journal sequence for raw records
  };

  explicit ExportIterator(const CheckpointStore& store) : store_(&store) {}

  // Loads the newest valid checkpoint (kNotFound tolerated: a shard
  // with only a WAL exports just its raw tail) and scans the WAL.
  Status Init();

  // Next record, checkpoint docs in DocId order first, then WAL
  // records in log order. Returns false at end.
  bool Next(Record* out);

  std::size_t docs_exported() const { return docs_exported_; }
  std::size_t raw_exported() const { return raw_exported_; }
  std::size_t wal_corrupt_records() const { return wal_corrupt_; }

 private:
  const CheckpointStore* store_;
  CheckpointData data_;
  bool has_checkpoint_ = false;
  std::vector<JournalRecord> tail_;
  std::size_t doc_pos_ = 0;
  std::size_t tail_pos_ = 0;
  std::size_t docs_exported_ = 0;
  std::size_t raw_exported_ = 0;
  std::size_t wal_corrupt_ = 0;
};

// --- ingest journal --------------------------------------------------

// The WAL of accepted documents. Owns sequence-id assignment; the
// WAL's user token stores the base sequence so ids stay monotonic
// across truncation and restarts (a fresh log after a checkpoint at
// watermark W starts numbering at W+1).
class IngestJournal {
 public:
  // Opens (or creates) the journal and derives the next sequence id
  // from the header token and any records already present.
  Status Open(const std::string& path);

  // Appends one item, assigning and returning its sequence id.
  Result<uint64_t> Append(const IngestItem& item);
  Status Sync();

  // Bookmark + rollback: a batch that fails to journal completely is
  // erased — file offset and sequence counter both rewind, as if the
  // batch was never submitted.
  struct Bookmark {
    uint64_t offset = 0;
    uint64_t seq = 0;
  };
  Bookmark bookmark() const { return {wal_.size(), last_seq_}; }
  Status Rollback(const Bookmark& mark);

  // Drops every record with seq <= watermark (atomic rewrite); the
  // base token advances so sequence ids never regress.
  Status TruncateThrough(uint64_t watermark);

  uint64_t last_seq() const { return last_seq_; }
  // Recovery tells the journal the checkpoint watermark so ids resume
  // above state already folded into a checkpoint.
  void EnsureSeqAtLeast(uint64_t seq);

  const std::string& path() const { return path_; }
  bool is_open() const { return wal_.is_open(); }

  // Cumulative journaling health (surfaced via HealthReport).
  std::size_t records_appended() const { return records_appended_; }
  std::size_t append_failures() const { return append_failures_; }
  std::size_t batches_rolled_back() const { return batches_rolled_back_; }
  void CountAppendFailure() { ++append_failures_; }
  void CountRollback() { ++batches_rolled_back_; }

 private:
  WalWriter wal_;
  std::string path_;
  uint64_t last_seq_ = 0;
  std::size_t records_appended_ = 0;
  std::size_t append_failures_ = 0;
  std::size_t batches_rolled_back_ = 0;
};

}  // namespace bivoc

#endif  // BIVOC_CORE_PERSIST_H_
