#ifndef BIVOC_CORE_BIVOC_H_
#define BIVOC_CORE_BIVOC_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ingest.h"
#include "core/pipeline.h"
#include "db/database.h"
#include "linking/multitype.h"
#include "mining/association.h"
#include "mining/relative_frequency.h"
#include "mining/trend.h"
#include "util/result.h"

namespace bivoc {

// Top-level facade over the BIVoC system: one object that owns the
// warehouse, the linking engine, the cleaning/annotation pipeline and
// the concept index, exposing the analysis views of §IV-D. This is the
// API the examples use:
//
//   BivocEngine engine;
//   /* create tables in engine.warehouse(), then: */
//   engine.FinishWarehouse();
//   engine.AddEmail(raw_email, day);
//   auto table = engine.Associate({"intent/..."}, {"outcome/..."});
class BivocEngine {
 public:
  BivocEngine();

  // Warehouse access. Call FinishWarehouse() after loading tables to
  // build the linking engine (tables added later are not linked).
  Database* warehouse() { return &db_; }
  const Database& warehouse() const { return db_; }
  Status FinishWarehouse(LinkerConfig config = {});

  // Registers the default named-entity annotators with the given
  // gazetteers (names/locations participate in linking).
  void ConfigureAnnotators(const std::vector<std::string>& name_gazetteer,
                           const std::vector<std::string>& location_gazetteer);

  // Pipeline configuration hooks.
  VocPipeline* pipeline() { return &pipeline_; }
  ConceptExtractor* extractor() { return pipeline_.mutable_extractor(); }
  MultiTypeLinker* linker() { return linker_.get(); }

  // Ingestion: processes, links, extracts concepts and indexes the
  // document together with `structured_keys` (dimensions pulled from
  // the linked record by the caller). Returns the processed document.
  Document AddEmail(const std::string& raw, int64_t day = 0,
                    const std::vector<std::string>& structured_keys = {});
  Document AddSms(const std::string& raw, int64_t day = 0,
                  const std::vector<std::string>& structured_keys = {});
  Document AddTranscript(const std::string& text, int64_t day = 0,
                         const std::vector<std::string>& structured_keys = {});

  // Fault-tolerant batch ingestion (see core/ingest.h): per-document
  // retries and dead-lettering, a circuit breaker around the linker,
  // parallel cleaning. ConfigureIngest replaces the service (and its
  // accumulated health state); ingest() lazily creates a default one.
  void ConfigureIngest(IngestOptions options);
  IngestService* ingest();
  HealthReport IngestBatch(const std::vector<IngestItem>& items);
  // Cumulative ingestion health; reports pipeline stats alone when
  // batch ingestion was never used.
  HealthReport Health() const;

  // Immutable snapshot of the concept index — the entry point for
  // custom analysis. Safe to query from any thread while ingestion
  // runs; the view is frozen at the moment of the call.
  std::shared_ptr<const IndexSnapshot> Snapshot() const {
    return pipeline_.Snapshot();
  }

  // Analysis views. Each runs against Snapshot(), so results are
  // consistent even while documents stream in concurrently.
  AssociationTable Associate(const std::vector<std::string>& row_keys,
                             const std::vector<std::string>& col_keys) const;
  std::vector<AssociationCell> TopAssociations(const std::string& row_prefix,
                                               const std::string& col_prefix,
                                               std::size_t limit) const;
  std::vector<RelevancyItem> Relevancy(const std::string& feature_key,
                                       RelevancyOptions options = {}) const;
  std::vector<TrendSummary> Rising(const std::string& prefix,
                                   std::size_t limit) const;

  const ConceptIndex& index() const { return pipeline_.index(); }
  const VocPipeline::Stats& stats() const { return pipeline_.stats(); }

 private:
  Database db_;
  std::unique_ptr<MultiTypeLinker> linker_;
  AnnotatorPipeline annotators_;
  VocPipeline pipeline_;
  std::unique_ptr<IngestService> ingest_;
};

}  // namespace bivoc

#endif  // BIVOC_CORE_BIVOC_H_
