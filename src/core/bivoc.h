#ifndef BIVOC_CORE_BIVOC_H_
#define BIVOC_CORE_BIVOC_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ingest.h"
#include "core/persist.h"
#include "core/pipeline.h"
#include "db/database.h"
#include "linking/multitype.h"
#include "mining/association.h"
#include "mining/relative_frequency.h"
#include "mining/trend.h"
#include "serve/report_server.h"
#include "util/metrics.h"
#include "util/result.h"

namespace bivoc {

class Gateway;          // net/gateway.h
struct GatewayOptions;  // net/gateway.h
class StreamIngestor;   // stream/ingestor.h
struct StreamOptions;   // stream/ingestor.h

struct DurabilityOptions {
  // Checkpoint generations kept on disk (newest N survive pruning;
  // corruption of the newest falls back to the one before it).
  std::size_t checkpoint_retain = 2;
  // Drop WAL records already folded into a checkpoint right after the
  // checkpoint commits. Disable to keep the full log (tests, audit).
  bool truncate_wal_after_checkpoint = true;
};

// Top-level facade over the BIVoC system: one object that owns the
// warehouse, the linking engine, the cleaning/annotation pipeline and
// the concept index, exposing the analysis views of §IV-D. This is the
// API the examples use:
//
//   BivocEngine engine;
//   /* create tables in engine.warehouse(), then: */
//   engine.FinishWarehouse();
//   engine.AddEmail(raw_email, day);
//   auto table = engine.Associate({"intent/..."}, {"outcome/..."});
class BivocEngine {
 public:
  BivocEngine();

  // Warehouse access. Call FinishWarehouse() after loading tables to
  // build the linking engine (tables added later are not linked).
  Database* warehouse() { return &db_; }
  const Database& warehouse() const { return db_; }
  Status FinishWarehouse(LinkerConfig config = {});

  // Registers the default named-entity annotators with the given
  // gazetteers (names/locations participate in linking).
  void ConfigureAnnotators(const std::vector<std::string>& name_gazetteer,
                           const std::vector<std::string>& location_gazetteer);

  // Pipeline configuration hooks.
  VocPipeline* pipeline() { return &pipeline_; }
  ConceptExtractor* extractor() { return pipeline_.mutable_extractor(); }
  MultiTypeLinker* linker() { return linker_.get(); }

  // Ingestion: processes, links, extracts concepts and indexes the
  // document together with `structured_keys` (dimensions pulled from
  // the linked record by the caller). Returns the processed document.
  Document AddEmail(const std::string& raw, int64_t day = 0,
                    const std::vector<std::string>& structured_keys = {});
  Document AddSms(const std::string& raw, int64_t day = 0,
                  const std::vector<std::string>& structured_keys = {});
  Document AddTranscript(const std::string& text, int64_t day = 0,
                         const std::vector<std::string>& structured_keys = {});

  // Fault-tolerant batch ingestion (see core/ingest.h): per-document
  // retries and dead-lettering, a circuit breaker around the linker,
  // parallel cleaning. ConfigureIngest replaces the service (and its
  // accumulated health state); ingest() lazily creates a default one
  // (first call is not thread-safe — construct before sharing).
  void ConfigureIngest(IngestOptions options);
  IngestService* ingest();
  HealthReport IngestBatch(const std::vector<IngestItem>& items);
  // Cumulative ingestion health; reports pipeline stats alone when
  // batch ingestion was never used.
  HealthReport Health() const;

  // --- crash-safe durability (DESIGN.md §9) --------------------------
  // EnableDurability opens (or creates) <dir> as the durability root:
  // the ingest WAL plus versioned checkpoints. From then on IngestBatch
  // journals every item to a checksummed, fsynced log before
  // processing it. A WAL whose header is damaged is moved aside to
  // <wal>.corrupt and a fresh log is started (the event is logged).
  Status EnableDurability(const std::string& dir,
                          DurabilityOptions options = {});

  // Serializes the published index snapshot, learned linker weights
  // and dead-letter backlog as checkpoint generation current+1, then
  // truncates the WAL behind it (unless configured off). Call at batch
  // boundaries — not concurrently with IngestBatch.
  Status SaveCheckpoint();

  // Restores a freshly constructed engine from <dir>: loads the newest
  // checksum-valid checkpoint (falling back generation by generation
  // past corrupt ones), replays the WAL tail above the checkpoint's
  // watermark through the full ingest pipeline, and re-publishes the
  // snapshot. Corrupt WAL records are skipped and counted, never
  // fatal; duplicate sequence ids are replayed once. Call after
  // FinishWarehouse/ConfigureAnnotators and before any new ingestion.
  Result<RecoveryReport> Recover();

  bool durability_enabled() const { return store_ != nullptr; }
  CheckpointStore* checkpoint_store() { return store_.get(); }
  IngestJournal* journal() { return journal_.get(); }
  // Accounting from the most recent Recover() (zeroes before then).
  const RecoveryReport& last_recovery() const { return last_recovery_; }

  // --- cluster data plane (DESIGN.md §14) ----------------------------
  // Rebalancing and anti-entropy primitives the shard-side admin API
  // exposes. All run against the published snapshot; Apply/Drop mutate
  // the index and must not race IngestBatch (the router's rebalance
  // barriers guarantee this for router-driven traffic).

  // Every indexed document with its routing key, concept keys (sorted)
  // and time bucket, in DocId order.
  std::vector<ExportedDoc> ExportDocuments() const;

  // One bounded page of the same export, for streaming a large shard
  // in chunks: docs [cursor, cursor+limit) in DocId order. `next` is
  // the resume cursor for the following page and `done` is true when
  // the page reached the end. DocIds are append-only, so a cursor
  // stays valid across publishes — re-requesting the same cursor
  // returns the same documents (at-least-once resume after a dropped
  // page; `total` is the snapshot size when the page was cut).
  struct ExportChunk {
    std::vector<ExportedDoc> docs;
    std::size_t next = 0;
    std::size_t total = 0;
    bool done = false;
  };
  ExportChunk ExportDocumentsChunk(std::size_t cursor,
                                   std::size_t limit) const;

  // Buffers documents shipped from another shard. Staged documents are
  // invisible to queries until ApplyStaged() — the rebalance protocol
  // backfills during the move window without double-counting.
  Status StageDocuments(std::vector<ExportedDoc> docs);

  // Indexes and publishes everything staged; checkpoints immediately
  // when durability is on (staged docs are not in this shard's WAL, so
  // the checkpoint is their only durable record). Returns the number
  // applied.
  Result<std::size_t> ApplyStaged();

  // Discards the staging buffer (failed rebalance); returns the number
  // dropped.
  std::size_t AbortStaged();

  // Rebuilds the index without documents whose routing key is in
  // `route_keys` (ring ownership moved away), then re-publishes and —
  // with durability on — checkpoints so the drop survives restart.
  // Returns the number of documents dropped.
  Result<std::size_t> DropByRouteKeys(
      const std::vector<std::string>& route_keys);

  // Order-independent content fingerprint for replica anti-entropy:
  // the wrapping sum of a per-document hash over (route key, sorted
  // concept keys, time bucket). Two replicas that admitted the same
  // documents in different orders produce equal checksums; a missing
  // or duplicated document changes the sum.
  struct ContentSummary {
    std::size_t num_documents = 0;
    uint64_t checksum = 0;
  };
  ContentSummary ContentChecksum() const;

  // --- query serving (DESIGN.md §10) ---------------------------------
  // ConfigureServing replaces the report server (dropping its cache;
  // serving counters live in metrics() and keep accumulating); serve()
  // lazily creates a default one (first call is not thread-safe —
  // construct before sharing; the Gateway warms it before serving).
  // The server answers against the latest *published* snapshot
  // (IngestBatch publishes per batch; Snapshot() publishes pending
  // deltas explicitly), caches results keyed on (query fingerprint,
  // snapshot generation), and sheds with kUnavailable under overload.
  void ConfigureServing(ServeOptions options);
  ReportServer* serve();

  // --- streaming VoC (DESIGN.md §15) ---------------------------------
  // Turns on the real-time path: a StreamIngestor accepting utterance-
  // level appends to open conversations, indexing them into a sliding-
  // window index with burst detection and alert fan-out. Declared here
  // but *defined* in stream/ingestor.cc so bivoc_core never depends on
  // bivoc_stream — callers passing options include stream/ingestor.h.
  // Enable before sharing the engine across threads.
  Status EnableStreaming(StreamOptions options);
  Status EnableStreaming();
  StreamIngestor* stream();  // nullptr unless enabled

  // --- HTTP gateway (DESIGN.md §11) ----------------------------------
  // Puts this engine on the wire: POST /v1/query, POST /v1/ingest,
  // GET /healthz, GET /metrics (see net/gateway.h). Returns the bound
  // port. These members are *declared* here but *defined* in
  // net/gateway.cc, so only binaries that link bivoc_net pay for the
  // server — bivoc_core itself never depends on the net layer.
  // Callers passing options must include net/gateway.h.
  Result<uint16_t> StartGateway(GatewayOptions options);
  Result<uint16_t> StartGateway();
  // Graceful: drains in-flight requests. Idempotent; also runs at
  // engine destruction.
  void StopGateway();
  Gateway* gateway();  // nullptr unless started

  // The engine-wide metrics registry (serving instruments register
  // here) and its scrape-endpoint-style text dump.
  MetricsRegistry* metrics() { return &metrics_; }
  std::string MetricsText() const { return metrics_.RenderText(); }

  // Immutable snapshot of the concept index — the entry point for
  // custom analysis. Safe to query from any thread while ingestion
  // runs; the view is frozen at the moment of the call.
  std::shared_ptr<const IndexSnapshot> Snapshot() const {
    return pipeline_.Snapshot();
  }

  // Analysis views. Each runs against Snapshot(), so results are
  // consistent even while documents stream in concurrently.
  AssociationTable Associate(const std::vector<std::string>& row_keys,
                             const std::vector<std::string>& col_keys) const;
  std::vector<AssociationCell> TopAssociations(const std::string& row_prefix,
                                               const std::string& col_prefix,
                                               std::size_t limit) const;
  std::vector<RelevancyItem> Relevancy(const std::string& feature_key,
                                       RelevancyOptions options = {}) const;
  std::vector<TrendSummary> Rising(const std::string& prefix,
                                   std::size_t limit) const;

  const ConceptIndex& index() const { return pipeline_.index(); }
  const VocPipeline::Stats& stats() const { return pipeline_.stats(); }

 private:
  Database db_;
  std::unique_ptr<MultiTypeLinker> linker_;
  AnnotatorPipeline annotators_;
  VocPipeline pipeline_;
  std::unique_ptr<IngestService> ingest_;
  std::mutex staged_mu_;
  std::vector<ExportedDoc> staged_;
  DurabilityOptions durability_opts_;
  std::unique_ptr<CheckpointStore> store_;
  std::unique_ptr<IngestJournal> journal_;
  RecoveryReport last_recovery_;
  MetricsRegistry metrics_;
  // Declared after everything its workers touch (pipeline_, metrics_)
  // so destruction joins the serving threads first.
  std::unique_ptr<ReportServer> serve_;
  // Streaming ingest references pipeline_ and linker_, and the gateway
  // serves SSE out of its alert bus — so it sits between them:
  // destroyed after the gateway drains, before the pipeline. Type-
  // erased like gateway_ (deleter captured in stream/ingestor.cc).
  std::shared_ptr<void> stream_;
  StreamIngestor* stream_ptr_ = nullptr;
  // The gateway serves traffic into everything above, so it is
  // declared last (destroyed first). Type-erased so this header does
  // not need the Gateway definition: the shared_ptr's deleter was
  // captured in net/gateway.cc where the type is complete.
  std::shared_ptr<void> gateway_;
  Gateway* gateway_ptr_ = nullptr;
};

}  // namespace bivoc

#endif  // BIVOC_CORE_BIVOC_H_
