#include "db/database.h"

#include "util/fault_injection.h"

namespace bivoc {

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  creation_order_.push_back(name);
  return ptr;
}

Result<Table*> Database::GetTable(const std::string& name) {
  BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(kFaultDbLookup));
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  BIVOC_RETURN_NOT_OK(FaultInjector::Global().MaybeFail(kFaultDbLookup));
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

std::vector<std::string> Database::TableNames() const {
  return creation_order_;
}

}  // namespace bivoc
