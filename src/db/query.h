#ifndef BIVOC_DB_QUERY_H_
#define BIVOC_DB_QUERY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "db/table.h"
#include "util/result.h"

namespace bivoc {

// Lightweight analytical helpers over Table — the aggregation layer the
// reporting component (mining/) sits on. Deliberately a function
// library, not a query language: BIVoC's reports are fixed shapes
// (counts, ratios, group-bys).

// COUNT(*) WHERE predicate.
std::size_t CountWhere(const Table& table,
                       const std::function<bool(const Row&)>& predicate);

// SELECT key, COUNT(*) GROUP BY column (values stringified). Ordered
// map so report rendering is deterministic.
Result<std::map<std::string, std::size_t>> GroupCount(
    const Table& table, const std::string& column);

// GROUP BY column restricted to rows matching predicate.
Result<std::map<std::string, std::size_t>> GroupCountWhere(
    const Table& table, const std::string& column,
    const std::function<bool(const Row&)>& predicate);

struct NumericAggregate {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  // Unbiased sample variance (0 for count < 2).
  double variance = 0.0;
};

// Aggregates a numeric (int/double/date) column; nulls and non-numeric
// cells are skipped.
Result<NumericAggregate> Aggregate(const Table& table,
                                   const std::string& column);

Result<NumericAggregate> AggregateWhere(
    const Table& table, const std::string& column,
    const std::function<bool(const Row&)>& predicate);

// Cross-tab: counts of (row_column value, col_column value) pairs.
// Returned as cell[(r, c)] -> count with deterministic ordering.
Result<std::map<std::pair<std::string, std::string>, std::size_t>> CrossTab(
    const Table& table, const std::string& row_column,
    const std::string& col_column);

}  // namespace bivoc

#endif  // BIVOC_DB_QUERY_H_
