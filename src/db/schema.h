#ifndef BIVOC_DB_SCHEMA_H_
#define BIVOC_DB_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "db/value.h"
#include "util/result.h"

namespace bivoc {

// The semantic role of an attribute as seen by the data-linking engine:
// which annotator's tokens are candidates for matching this column
// (names match kPersonName columns, spoken numbers match kPhone /
// kCardNumber, ...). kNone columns never participate in linking.
enum class AttributeRole {
  kNone,
  kPersonName,
  kPhone,
  kDate,
  kMoney,
  kLocation,
  kCardNumber,
  kProduct,
};

std::string_view AttributeRoleName(AttributeRole role);

struct Column {
  std::string name;
  DataType type = DataType::kString;
  AttributeRole role = AttributeRole::kNone;
};

// Ordered, named column set of a table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  const std::vector<Column>& columns() const { return columns_; }
  std::size_t num_columns() const { return columns_.size(); }

  // Index of a column or error.
  Result<std::size_t> IndexOf(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return index_.count(name) > 0;
  }

  const Column& column(std::size_t i) const { return columns_.at(i); }

  // Columns whose role matches (for the linker's annotator routing).
  std::vector<std::size_t> ColumnsWithRole(AttributeRole role) const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace bivoc

#endif  // BIVOC_DB_SCHEMA_H_
