#ifndef BIVOC_DB_INDEX_H_
#define BIVOC_DB_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "db/table.h"
#include "util/result.h"

namespace bivoc {

// Exact-match hash index over one column (built once, read many — the
// tables are append-mostly warehouse snapshots).
class HashIndex {
 public:
  // Builds over the current contents of `table[column]`.
  static Result<HashIndex> Build(const Table& table,
                                 const std::string& column);

  // Row ids whose cell stringifies to `key` (empty vector if none).
  const std::vector<RowId>& Lookup(const std::string& key) const;

  std::size_t num_keys() const { return buckets_.size(); }

 private:
  std::unordered_map<std::string, std::vector<RowId>> buckets_;
  std::vector<RowId> empty_;
};

// Token inverted index over a string column: each whitespace token of
// the cell maps to the row ids containing it. This is the retrieval
// structure behind the linker's per-token candidate lists (the ranked
// lists that Fagin-merge combines) — e.g. token "smith" retrieves all
// customers with surname Smith without a full scan.
class TokenIndex {
 public:
  static Result<TokenIndex> Build(const Table& table,
                                  const std::string& column);

  const std::vector<RowId>& Lookup(const std::string& token) const;

  // Tokens sharing a phonetic key with `token` (Soundex bucket); the
  // recall path for misrecognized names.
  std::vector<std::string> PhoneticNeighbors(const std::string& token) const;

  std::size_t num_tokens() const { return postings_.size(); }

 private:
  std::unordered_map<std::string, std::vector<RowId>> postings_;
  std::unordered_map<std::string, std::vector<std::string>> phonetic_buckets_;
  std::vector<RowId> empty_;
};

}  // namespace bivoc

#endif  // BIVOC_DB_INDEX_H_
