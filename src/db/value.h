#ifndef BIVOC_DB_VALUE_H_
#define BIVOC_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace bivoc {

enum class DataType {
  kNull,
  kInt64,
  kDouble,
  kString,
  kDate,  // stored as days since 1970-01-01
};

std::string_view DataTypeName(DataType type);

// Calendar date helpers; the structured warehouse stores booking dates,
// churn dates, birth dates.
struct Date {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  // Days since 1970-01-01 (proleptic Gregorian, civil-days algorithm).
  int64_t ToDays() const;
  static Date FromDays(int64_t days);

  // "YYYY-MM-DD".
  std::string ToString() const;

  bool operator==(const Date& o) const {
    return year == o.year && month == o.month && day == o.day;
  }
};

// A dynamically typed cell in the structured store.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}
  explicit Value(Date d) : data_(d) {}

  static Value Null() { return Value(); }

  DataType type() const;
  bool is_null() const { return type() == DataType::kNull; }

  // Typed accessors; calling the wrong one aborts (programming error).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;
  Date AsDate() const;

  // Lossy human-readable rendering, "" for null.
  std::string ToString() const;

  // Numeric view: int/double as-is, date as days, else NaN.
  double NumericOrNan() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  std::variant<std::monostate, int64_t, double, std::string, Date> data_;
};

}  // namespace bivoc

#endif  // BIVOC_DB_VALUE_H_
