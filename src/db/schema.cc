#include "db/schema.h"

namespace bivoc {

std::string_view AttributeRoleName(AttributeRole role) {
  switch (role) {
    case AttributeRole::kNone:
      return "none";
    case AttributeRole::kPersonName:
      return "person_name";
    case AttributeRole::kPhone:
      return "phone";
    case AttributeRole::kDate:
      return "date";
    case AttributeRole::kMoney:
      return "money";
    case AttributeRole::kLocation:
      return "location";
    case AttributeRole::kCardNumber:
      return "card_number";
    case AttributeRole::kProduct:
      return "product";
  }
  return "none";
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    index_.emplace(columns_[i].name, i);
  }
}

Result<std::size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

std::vector<std::size_t> Schema::ColumnsWithRole(AttributeRole role) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].role == role) out.push_back(i);
  }
  return out;
}

}  // namespace bivoc
