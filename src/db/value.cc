#include "db/value.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "util/logging.h"

namespace bivoc {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

int64_t Date::ToDays() const {
  // Howard Hinnant's days_from_civil.
  int y = year;
  int m = month;
  int d = day;
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 +
         static_cast<int64_t>(doe) - 719468;
}

Date Date::FromDays(int64_t days) {
  // Howard Hinnant's civil_from_days.
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  Date out;
  out.year = static_cast<int>(y + (m <= 2));
  out.month = static_cast<int>(m);
  out.day = static_cast<int>(d);
  return out;
}

std::string Date::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    case 3:
      return DataType::kString;
    case 4:
      return DataType::kDate;
  }
  return DataType::kNull;
}

int64_t Value::AsInt64() const {
  BIVOC_CHECK(std::holds_alternative<int64_t>(data_)) << "not an int64";
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  BIVOC_CHECK(std::holds_alternative<double>(data_)) << "not a double";
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  BIVOC_CHECK(std::holds_alternative<std::string>(data_)) << "not a string";
  return std::get<std::string>(data_);
}

Date Value::AsDate() const {
  BIVOC_CHECK(std::holds_alternative<Date>(data_)) << "not a date";
  return std::get<Date>(data_);
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "";
    case DataType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case DataType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
      return buf;
    }
    case DataType::kString:
      return std::get<std::string>(data_);
    case DataType::kDate:
      return std::get<Date>(data_).ToString();
  }
  return "";
}

double Value::NumericOrNan() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(std::get<int64_t>(data_));
    case DataType::kDouble:
      return std::get<double>(data_);
    case DataType::kDate:
      return static_cast<double>(std::get<Date>(data_).ToDays());
    default:
      return std::numeric_limits<double>::quiet_NaN();
  }
}

bool Value::operator==(const Value& other) const {
  return data_ == other.data_;
}

}  // namespace bivoc
