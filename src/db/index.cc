#include "db/index.h"

#include <algorithm>

#include "text/phonetic.h"
#include "util/string_util.h"

namespace bivoc {

Result<HashIndex> HashIndex::Build(const Table& table,
                                   const std::string& column) {
  BIVOC_ASSIGN_OR_RETURN(std::size_t col, table.schema().IndexOf(column));
  HashIndex index;
  table.ForEach([&](RowId id, const Row& row) {
    index.buckets_[row[col].ToString()].push_back(id);
  });
  return index;
}

const std::vector<RowId>& HashIndex::Lookup(const std::string& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? empty_ : it->second;
}

Result<TokenIndex> TokenIndex::Build(const Table& table,
                                     const std::string& column) {
  BIVOC_ASSIGN_OR_RETURN(std::size_t col, table.schema().IndexOf(column));
  if (table.schema().column(col).type != DataType::kString) {
    return Status::InvalidArgument("TokenIndex requires a string column");
  }
  TokenIndex index;
  table.ForEach([&](RowId id, const Row& row) {
    if (row[col].is_null()) return;
    for (const auto& raw : SplitWhitespace(row[col].AsString())) {
      std::string token = ToLowerCopy(raw);
      auto& postings = index.postings_[token];
      if (postings.empty() || postings.back() != id) postings.push_back(id);
    }
  });
  for (const auto& [token, _] : index.postings_) {
    index.phonetic_buckets_[Soundex(token)].push_back(token);
  }
  for (auto& [key, tokens] : index.phonetic_buckets_) {
    std::sort(tokens.begin(), tokens.end());
  }
  return index;
}

const std::vector<RowId>& TokenIndex::Lookup(const std::string& token) const {
  auto it = postings_.find(ToLowerCopy(token));
  return it == postings_.end() ? empty_ : it->second;
}

std::vector<std::string> TokenIndex::PhoneticNeighbors(
    const std::string& token) const {
  auto it = phonetic_buckets_.find(Soundex(ToLowerCopy(token)));
  return it == phonetic_buckets_.end() ? std::vector<std::string>{}
                                       : it->second;
}

}  // namespace bivoc
