#ifndef BIVOC_DB_DATABASE_H_
#define BIVOC_DB_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/table.h"
#include "util/result.h"

namespace bivoc {

// A named collection of tables — the enterprise warehouse the linking
// engine resolves documents against. Multi-type entity identification
// (paper §IV-B) treats each table as one entity type.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Creates a table; errors if the name exists.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  std::vector<std::string> TableNames() const;

  std::size_t num_tables() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> creation_order_;
};

}  // namespace bivoc

#endif  // BIVOC_DB_DATABASE_H_
