#include "db/table.h"

namespace bivoc {

Result<RowId> Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " in table " + name_);
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(
          "type mismatch in column '" + schema_.column(i).name +
          "' of table " + name_ + ": expected " +
          std::string(DataTypeName(schema_.column(i).type)) + ", got " +
          std::string(DataTypeName(row[i].type())));
    }
  }
  rows_.push_back(std::move(row));
  return rows_.size() - 1;
}

Result<Value> Table::Get(RowId id, const std::string& column) const {
  if (id >= rows_.size()) {
    return Status::OutOfRange("row " + std::to_string(id) + " out of range");
  }
  BIVOC_ASSIGN_OR_RETURN(std::size_t col, schema_.IndexOf(column));
  return rows_[id][col];
}

Status Table::Set(RowId id, const std::string& column, Value value) {
  if (id >= rows_.size()) {
    return Status::OutOfRange("row " + std::to_string(id) + " out of range");
  }
  BIVOC_ASSIGN_OR_RETURN(std::size_t col, schema_.IndexOf(column));
  if (!value.is_null() && value.type() != schema_.column(col).type) {
    return Status::InvalidArgument("type mismatch setting column " + column);
  }
  rows_[id][col] = std::move(value);
  return Status::OK();
}

Result<int64_t> Table::GetInt(RowId id, const std::string& column) const {
  BIVOC_ASSIGN_OR_RETURN(Value v, Get(id, column));
  return v.AsInt64();
}

Result<std::string> Table::GetString(RowId id,
                                     const std::string& column) const {
  BIVOC_ASSIGN_OR_RETURN(Value v, Get(id, column));
  return v.AsString();
}

Result<double> Table::GetDouble(RowId id, const std::string& column) const {
  BIVOC_ASSIGN_OR_RETURN(Value v, Get(id, column));
  return v.AsDouble();
}

std::vector<RowId> Table::Scan(
    const std::function<bool(const Row&)>& predicate) const {
  std::vector<RowId> out;
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (predicate(rows_[id])) out.push_back(id);
  }
  return out;
}

std::vector<RowId> Table::Find(const std::string& column,
                               const Value& value) const {
  auto col = schema_.IndexOf(column);
  if (!col.ok()) return {};
  std::vector<RowId> out;
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (rows_[id][*col] == value) out.push_back(id);
  }
  return out;
}

void Table::ForEach(
    const std::function<void(RowId, const Row&)>& fn) const {
  for (RowId id = 0; id < rows_.size(); ++id) fn(id, rows_[id]);
}

}  // namespace bivoc
