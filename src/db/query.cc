#include "db/query.h"

#include <cmath>

namespace bivoc {

std::size_t CountWhere(const Table& table,
                       const std::function<bool(const Row&)>& predicate) {
  std::size_t count = 0;
  table.ForEach([&](RowId, const Row& row) {
    if (predicate(row)) ++count;
  });
  return count;
}

Result<std::map<std::string, std::size_t>> GroupCount(
    const Table& table, const std::string& column) {
  return GroupCountWhere(table, column, [](const Row&) { return true; });
}

Result<std::map<std::string, std::size_t>> GroupCountWhere(
    const Table& table, const std::string& column,
    const std::function<bool(const Row&)>& predicate) {
  BIVOC_ASSIGN_OR_RETURN(std::size_t col, table.schema().IndexOf(column));
  std::map<std::string, std::size_t> out;
  table.ForEach([&](RowId, const Row& row) {
    if (predicate(row)) ++out[row[col].ToString()];
  });
  return out;
}

Result<NumericAggregate> Aggregate(const Table& table,
                                   const std::string& column) {
  return AggregateWhere(table, column, [](const Row&) { return true; });
}

Result<NumericAggregate> AggregateWhere(
    const Table& table, const std::string& column,
    const std::function<bool(const Row&)>& predicate) {
  BIVOC_ASSIGN_OR_RETURN(std::size_t col, table.schema().IndexOf(column));
  NumericAggregate agg;
  double m2 = 0.0;  // Welford accumulator
  table.ForEach([&](RowId, const Row& row) {
    if (!predicate(row)) return;
    double v = row[col].NumericOrNan();
    if (std::isnan(v)) return;
    ++agg.count;
    agg.sum += v;
    if (agg.count == 1) {
      agg.min = agg.max = v;
      agg.mean = v;
    } else {
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
      double delta = v - agg.mean;
      agg.mean += delta / static_cast<double>(agg.count);
      m2 += delta * (v - agg.mean);
    }
  });
  if (agg.count >= 2) {
    agg.variance = m2 / static_cast<double>(agg.count - 1);
  }
  return agg;
}

Result<std::map<std::pair<std::string, std::string>, std::size_t>> CrossTab(
    const Table& table, const std::string& row_column,
    const std::string& col_column) {
  BIVOC_ASSIGN_OR_RETURN(std::size_t rc, table.schema().IndexOf(row_column));
  BIVOC_ASSIGN_OR_RETURN(std::size_t cc, table.schema().IndexOf(col_column));
  std::map<std::pair<std::string, std::string>, std::size_t> out;
  table.ForEach([&](RowId, const Row& row) {
    ++out[{row[rc].ToString(), row[cc].ToString()}];
  });
  return out;
}

}  // namespace bivoc
