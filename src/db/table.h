#ifndef BIVOC_DB_TABLE_H_
#define BIVOC_DB_TABLE_H_

#include <functional>
#include <string>
#include <vector>

#include "db/schema.h"
#include "db/value.h"
#include "util/result.h"

namespace bivoc {

using Row = std::vector<Value>;
using RowId = std::size_t;

// Row-oriented in-memory table — the structured side of BIVoC (customer
// profiles, reservations, transactions, churn status). Append-only with
// in-place cell updates; our workloads are warehouse-style, no deletes.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return rows_.size(); }

  // Validates arity and cell types (null always allowed) and appends.
  // Returns the new row id.
  Result<RowId> Append(Row row);

  const Row& row(RowId id) const { return rows_.at(id); }

  // Cell accessors by column name.
  Result<Value> Get(RowId id, const std::string& column) const;
  Status Set(RowId id, const std::string& column, Value value);

  // Typed convenience accessors (abort on type mismatch, error on
  // missing column / row).
  Result<int64_t> GetInt(RowId id, const std::string& column) const;
  Result<std::string> GetString(RowId id, const std::string& column) const;
  Result<double> GetDouble(RowId id, const std::string& column) const;

  // Returns ids of rows matching the predicate.
  std::vector<RowId> Scan(
      const std::function<bool(const Row&)>& predicate) const;

  // All row ids where `column` equals `value` (full scan; use an Index
  // from index.h for repeated point lookups).
  std::vector<RowId> Find(const std::string& column, const Value& value) const;

  // Iterates rows without copying.
  void ForEach(const std::function<void(RowId, const Row&)>& fn) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace bivoc

#endif  // BIVOC_DB_TABLE_H_
