#include "net/wire.h"

#include <cstdint>
#include <limits>
#include <string>
#include <utility>

namespace bivoc {

namespace {

// Decoder helpers. Each returns a field-qualified error so a client
// can tell *which* part of its body was wrong.

Status FieldError(const std::string& field, const std::string& what) {
  return Status::InvalidArgument("field \"" + field + "\": " + what);
}

Result<std::string> GetStringField(const JsonValue& v,
                                   const std::string& field) {
  if (!v.is_string()) return FieldError(field, "expected a string");
  return std::string(v.GetString());
}

Result<std::size_t> GetSizeField(const JsonValue& v,
                                 const std::string& field) {
  if (!v.is_integer()) return FieldError(field, "expected an integer");
  const int64_t n = v.GetInt64();
  if (n < 0) return FieldError(field, "must be non-negative");
  return static_cast<std::size_t>(n);
}

Result<std::vector<std::string>> GetStringArrayField(
    const JsonValue& v, const std::string& field) {
  if (!v.is_array()) return FieldError(field, "expected an array");
  std::vector<std::string> out;
  out.reserve(v.GetArray().size());
  for (const JsonValue& item : v.GetArray()) {
    if (!item.is_string()) {
      return FieldError(field, "expected an array of strings");
    }
    out.push_back(std::string(item.GetString()));
  }
  return out;
}

JsonValue StringArrayToJson(const std::vector<std::string>& keys) {
  JsonValue arr = JsonValue::MakeArray();
  for (const std::string& k : keys) arr.Append(JsonValue(k));
  return arr;
}

Result<bool> GetBoolField(const JsonValue& v, const std::string& field) {
  if (!v.is_bool()) return FieldError(field, "expected a boolean");
  return v.GetBool();
}

Result<double> GetDoubleField(const JsonValue& v, const std::string& field) {
  if (!v.is_number()) return FieldError(field, "expected a number");
  return v.GetDouble();
}

Result<uint64_t> GetUint64Field(const JsonValue& v,
                                const std::string& field) {
  if (!v.is_integer()) return FieldError(field, "expected an integer");
  const int64_t n = v.GetInt64();
  if (n < 0) return FieldError(field, "must be non-negative");
  return static_cast<uint64_t>(n);
}

// Sparse (bucket, count) series, encoded as an array of two-element
// arrays: [[bucket, count], ...]. Buckets may be negative.
JsonValue BucketPairsToJson(
    const std::vector<std::pair<int64_t, std::size_t>>& pairs) {
  JsonValue arr = JsonValue::MakeArray();
  for (const auto& [bucket, count] : pairs) {
    JsonValue pair = JsonValue::MakeArray();
    pair.Append(JsonValue(bucket));
    pair.Append(JsonValue(count));
    arr.Append(std::move(pair));
  }
  return arr;
}

Result<std::vector<std::pair<int64_t, std::size_t>>> BucketPairsFromJson(
    const JsonValue& v, const std::string& field) {
  if (!v.is_array()) return FieldError(field, "expected an array");
  std::vector<std::pair<int64_t, std::size_t>> out;
  out.reserve(v.GetArray().size());
  for (std::size_t i = 0; i < v.GetArray().size(); ++i) {
    const JsonValue& pair = v.GetArray()[i];
    const std::string where = field + "[" + std::to_string(i) + "]";
    if (!pair.is_array() || pair.GetArray().size() != 2) {
      return FieldError(where, "expected a [bucket, count] pair");
    }
    const JsonValue& bucket = pair.GetArray()[0];
    if (!bucket.is_integer()) {
      return FieldError(where, "bucket must be an integer");
    }
    BIVOC_ASSIGN_OR_RETURN(std::size_t count,
                           GetSizeField(pair.GetArray()[1], where));
    out.emplace_back(bucket.GetInt64(), count);
  }
  return out;
}

}  // namespace

const char* VocChannelName(VocChannel channel) {
  switch (channel) {
    case VocChannel::kEmail:
      return "email";
    case VocChannel::kSms:
      return "sms";
    case VocChannel::kCall:
      return "call";
  }
  return "unknown";
}

bool VocChannelFromName(std::string_view name, VocChannel* out) {
  for (VocChannel c :
       {VocChannel::kEmail, VocChannel::kSms, VocChannel::kCall}) {
    if (name == VocChannelName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

JsonValue QueryRequestToJson(const QueryRequest& req) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("class", JsonValue(QueryClassName(req.cls)));
  if (!req.key.empty()) obj.Set("key", JsonValue(req.key));
  if (!req.prefix.empty()) obj.Set("prefix", JsonValue(req.prefix));
  if (!req.row_keys.empty()) {
    obj.Set("row_keys", StringArrayToJson(req.row_keys));
  }
  if (!req.col_keys.empty()) {
    obj.Set("col_keys", StringArrayToJson(req.col_keys));
  }
  obj.Set("limit", JsonValue(req.limit));
  obj.Set("min_count", JsonValue(req.min_count));
  if (req.shard_mode) obj.Set("shard_mode", JsonValue(true));
  if (req.window) obj.Set("window", JsonValue(true));
  return obj;
}

Result<QueryRequest> QueryRequestFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("query body must be a JSON object");
  }
  QueryRequest req;
  bool saw_class = false;
  for (const JsonValue::Member& m : v.GetObject()) {
    if (m.key == "class") {
      BIVOC_ASSIGN_OR_RETURN(std::string name,
                             GetStringField(m.value, m.key));
      if (!QueryClassFromName(name, &req.cls)) {
        return FieldError(m.key, "unknown query class \"" + name + "\"");
      }
      saw_class = true;
    } else if (m.key == "key") {
      BIVOC_ASSIGN_OR_RETURN(req.key, GetStringField(m.value, m.key));
    } else if (m.key == "prefix") {
      BIVOC_ASSIGN_OR_RETURN(req.prefix, GetStringField(m.value, m.key));
    } else if (m.key == "row_keys") {
      BIVOC_ASSIGN_OR_RETURN(req.row_keys,
                             GetStringArrayField(m.value, m.key));
    } else if (m.key == "col_keys") {
      BIVOC_ASSIGN_OR_RETURN(req.col_keys,
                             GetStringArrayField(m.value, m.key));
    } else if (m.key == "limit") {
      BIVOC_ASSIGN_OR_RETURN(req.limit, GetSizeField(m.value, m.key));
    } else if (m.key == "min_count") {
      BIVOC_ASSIGN_OR_RETURN(req.min_count, GetSizeField(m.value, m.key));
    } else if (m.key == "shard_mode") {
      BIVOC_ASSIGN_OR_RETURN(req.shard_mode, GetBoolField(m.value, m.key));
    } else if (m.key == "window") {
      BIVOC_ASSIGN_OR_RETURN(req.window, GetBoolField(m.value, m.key));
    } else {
      return Status::InvalidArgument("unknown query field \"" + m.key +
                                     "\"");
    }
  }
  if (!saw_class) {
    return Status::InvalidArgument("query body needs a \"class\" field");
  }
  return req;
}

JsonValue ReportResultToJson(const ReportResult& result, bool from_cache) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("class", JsonValue(QueryClassName(result.cls)));
  obj.Set("generation", JsonValue(result.generation));
  obj.Set("num_documents", JsonValue(result.num_documents));
  obj.Set("from_cache", JsonValue(from_cache));
  switch (result.cls) {
    case QueryClass::kConceptSearch: {
      JsonValue concepts = JsonValue::MakeArray();
      for (const ConceptHit& hit : result.concepts) {
        JsonValue c = JsonValue::MakeObject();
        c.Set("key", JsonValue(hit.key));
        c.Set("count", JsonValue(hit.count));
        concepts.Append(std::move(c));
      }
      obj.Set("concepts", std::move(concepts));
      break;
    }
    case QueryClass::kRelevancy:
    case QueryClass::kChurnDrivers: {
      JsonValue items = JsonValue::MakeArray();
      for (const RelevancyItem& item : result.relevancy) {
        JsonValue r = JsonValue::MakeObject();
        r.Set("key", JsonValue(item.key));
        r.Set("subset_count", JsonValue(item.subset_count));
        r.Set("corpus_count", JsonValue(item.corpus_count));
        r.Set("subset_freq", JsonValue(item.subset_freq));
        r.Set("corpus_freq", JsonValue(item.corpus_freq));
        r.Set("relative", JsonValue(item.relative));
        items.Append(std::move(r));
      }
      obj.Set("relevancy", std::move(items));
      break;
    }
    case QueryClass::kAssociation: {
      JsonValue table = JsonValue::MakeObject();
      table.Set("row_keys", StringArrayToJson(result.association.row_keys));
      table.Set("col_keys", StringArrayToJson(result.association.col_keys));
      JsonValue cells = JsonValue::MakeArray();
      for (const AssociationCell& cell : result.association.cells) {
        JsonValue c = JsonValue::MakeObject();
        c.Set("row_key", JsonValue(cell.row_key));
        c.Set("col_key", JsonValue(cell.col_key));
        c.Set("n_cell", JsonValue(cell.n_cell));
        c.Set("n_row", JsonValue(cell.n_row));
        c.Set("n_col", JsonValue(cell.n_col));
        c.Set("n", JsonValue(cell.n));
        c.Set("point_lift", JsonValue(cell.point_lift));
        c.Set("lower_lift", JsonValue(cell.lower_lift));
        c.Set("row_share", JsonValue(cell.row_share));
        cells.Append(std::move(c));
      }
      table.Set("cells", std::move(cells));
      obj.Set("association", std::move(table));
      break;
    }
    case QueryClass::kTrend: {
      JsonValue trends = JsonValue::MakeArray();
      for (const TrendSummary& trend : result.trends) {
        JsonValue t = JsonValue::MakeObject();
        t.Set("key", JsonValue(trend.key));
        t.Set("slope", JsonValue(trend.slope));
        t.Set("total_count", JsonValue(trend.total_count));
        trends.Append(std::move(t));
      }
      obj.Set("trends", std::move(trends));
      break;
    }
    case QueryClass::kDrillDown: {
      JsonValue hits = JsonValue::MakeArray();
      for (const DrillDownHit& hit : result.drill) {
        JsonValue h = JsonValue::MakeObject();
        h.Set("shard", JsonValue(hit.shard));
        h.Set("doc", JsonValue(static_cast<std::size_t>(hit.doc)));
        hits.Append(std::move(h));
      }
      obj.Set("drill", std::move(hits));
      break;
    }
  }
  if (result.shard_mode) {
    obj.Set("shard_mode", JsonValue(true));
    JsonValue merge = JsonValue::MakeObject();
    switch (result.cls) {
      case QueryClass::kRelevancy:
      case QueryClass::kChurnDrivers:
        merge.Set("subset_size", JsonValue(result.merge.subset_size));
        break;
      case QueryClass::kTrend: {
        merge.Set("bucket_totals",
                  BucketPairsToJson(result.merge.bucket_totals));
        JsonValue series = JsonValue::MakeArray();
        for (const TrendSeries& s : result.merge.trend_series) {
          JsonValue entry = JsonValue::MakeObject();
          entry.Set("key", JsonValue(s.key));
          entry.Set("total_count", JsonValue(s.total_count));
          entry.Set("bucket_counts", BucketPairsToJson(s.bucket_counts));
          series.Append(std::move(entry));
        }
        merge.Set("trend_series", std::move(series));
        break;
      }
      case QueryClass::kConceptSearch:
      case QueryClass::kAssociation:
      case QueryClass::kDrillDown:
        // Raw counts already live in the payload rows; nothing extra.
        break;
    }
    obj.Set("merge", std::move(merge));
  }
  return obj;
}

namespace {

Result<std::vector<ConceptHit>> ConceptsFromJson(const JsonValue& v,
                                                 const std::string& field) {
  if (!v.is_array()) return FieldError(field, "expected an array");
  std::vector<ConceptHit> out;
  out.reserve(v.GetArray().size());
  for (std::size_t i = 0; i < v.GetArray().size(); ++i) {
    const JsonValue& entry = v.GetArray()[i];
    const std::string where = field + "[" + std::to_string(i) + "]";
    if (!entry.is_object()) return FieldError(where, "expected an object");
    ConceptHit hit;
    for (const JsonValue::Member& m : entry.GetObject()) {
      if (m.key == "key") {
        BIVOC_ASSIGN_OR_RETURN(hit.key,
                               GetStringField(m.value, where + ".key"));
      } else if (m.key == "count") {
        BIVOC_ASSIGN_OR_RETURN(hit.count,
                               GetSizeField(m.value, where + ".count"));
      } else {
        return FieldError(where, "unknown field \"" + m.key + "\"");
      }
    }
    out.push_back(std::move(hit));
  }
  return out;
}

Result<std::vector<RelevancyItem>> RelevancyFromJson(
    const JsonValue& v, const std::string& field) {
  if (!v.is_array()) return FieldError(field, "expected an array");
  std::vector<RelevancyItem> out;
  out.reserve(v.GetArray().size());
  for (std::size_t i = 0; i < v.GetArray().size(); ++i) {
    const JsonValue& entry = v.GetArray()[i];
    const std::string where = field + "[" + std::to_string(i) + "]";
    if (!entry.is_object()) return FieldError(where, "expected an object");
    RelevancyItem item;
    for (const JsonValue::Member& m : entry.GetObject()) {
      const std::string at = where + "." + m.key;
      if (m.key == "key") {
        BIVOC_ASSIGN_OR_RETURN(item.key, GetStringField(m.value, at));
      } else if (m.key == "subset_count") {
        BIVOC_ASSIGN_OR_RETURN(item.subset_count, GetSizeField(m.value, at));
      } else if (m.key == "corpus_count") {
        BIVOC_ASSIGN_OR_RETURN(item.corpus_count, GetSizeField(m.value, at));
      } else if (m.key == "subset_freq") {
        BIVOC_ASSIGN_OR_RETURN(item.subset_freq, GetDoubleField(m.value, at));
      } else if (m.key == "corpus_freq") {
        BIVOC_ASSIGN_OR_RETURN(item.corpus_freq, GetDoubleField(m.value, at));
      } else if (m.key == "relative") {
        BIVOC_ASSIGN_OR_RETURN(item.relative, GetDoubleField(m.value, at));
      } else {
        return FieldError(where, "unknown field \"" + m.key + "\"");
      }
    }
    out.push_back(std::move(item));
  }
  return out;
}

Result<AssociationTable> AssociationFromJson(const JsonValue& v,
                                             const std::string& field) {
  if (!v.is_object()) return FieldError(field, "expected an object");
  AssociationTable table;
  for (const JsonValue::Member& m : v.GetObject()) {
    const std::string at = field + "." + m.key;
    if (m.key == "row_keys") {
      BIVOC_ASSIGN_OR_RETURN(table.row_keys,
                             GetStringArrayField(m.value, at));
    } else if (m.key == "col_keys") {
      BIVOC_ASSIGN_OR_RETURN(table.col_keys,
                             GetStringArrayField(m.value, at));
    } else if (m.key == "cells") {
      if (!m.value.is_array()) return FieldError(at, "expected an array");
      table.cells.reserve(m.value.GetArray().size());
      for (std::size_t i = 0; i < m.value.GetArray().size(); ++i) {
        const JsonValue& entry = m.value.GetArray()[i];
        const std::string where = at + "[" + std::to_string(i) + "]";
        if (!entry.is_object()) {
          return FieldError(where, "expected an object");
        }
        AssociationCell cell;
        for (const JsonValue::Member& cm : entry.GetObject()) {
          const std::string cat = where + "." + cm.key;
          if (cm.key == "row_key") {
            BIVOC_ASSIGN_OR_RETURN(cell.row_key,
                                   GetStringField(cm.value, cat));
          } else if (cm.key == "col_key") {
            BIVOC_ASSIGN_OR_RETURN(cell.col_key,
                                   GetStringField(cm.value, cat));
          } else if (cm.key == "n_cell") {
            BIVOC_ASSIGN_OR_RETURN(cell.n_cell, GetSizeField(cm.value, cat));
          } else if (cm.key == "n_row") {
            BIVOC_ASSIGN_OR_RETURN(cell.n_row, GetSizeField(cm.value, cat));
          } else if (cm.key == "n_col") {
            BIVOC_ASSIGN_OR_RETURN(cell.n_col, GetSizeField(cm.value, cat));
          } else if (cm.key == "n") {
            BIVOC_ASSIGN_OR_RETURN(cell.n, GetSizeField(cm.value, cat));
          } else if (cm.key == "point_lift") {
            BIVOC_ASSIGN_OR_RETURN(cell.point_lift,
                                   GetDoubleField(cm.value, cat));
          } else if (cm.key == "lower_lift") {
            BIVOC_ASSIGN_OR_RETURN(cell.lower_lift,
                                   GetDoubleField(cm.value, cat));
          } else if (cm.key == "row_share") {
            BIVOC_ASSIGN_OR_RETURN(cell.row_share,
                                   GetDoubleField(cm.value, cat));
          } else {
            return FieldError(where, "unknown field \"" + cm.key + "\"");
          }
        }
        table.cells.push_back(std::move(cell));
      }
    } else {
      return FieldError(field, "unknown field \"" + m.key + "\"");
    }
  }
  if (table.cells.size() != table.row_keys.size() * table.col_keys.size()) {
    return FieldError(field, "cell count does not match axis sizes");
  }
  return table;
}

Result<std::vector<TrendSummary>> TrendsFromJson(const JsonValue& v,
                                                 const std::string& field) {
  if (!v.is_array()) return FieldError(field, "expected an array");
  std::vector<TrendSummary> out;
  out.reserve(v.GetArray().size());
  for (std::size_t i = 0; i < v.GetArray().size(); ++i) {
    const JsonValue& entry = v.GetArray()[i];
    const std::string where = field + "[" + std::to_string(i) + "]";
    if (!entry.is_object()) return FieldError(where, "expected an object");
    TrendSummary summary;
    for (const JsonValue::Member& m : entry.GetObject()) {
      const std::string at = where + "." + m.key;
      if (m.key == "key") {
        BIVOC_ASSIGN_OR_RETURN(summary.key, GetStringField(m.value, at));
      } else if (m.key == "slope") {
        BIVOC_ASSIGN_OR_RETURN(summary.slope, GetDoubleField(m.value, at));
      } else if (m.key == "total_count") {
        BIVOC_ASSIGN_OR_RETURN(summary.total_count,
                               GetSizeField(m.value, at));
      } else {
        return FieldError(where, "unknown field \"" + m.key + "\"");
      }
    }
    out.push_back(std::move(summary));
  }
  return out;
}

Result<std::vector<DrillDownHit>> DrillFromJson(const JsonValue& v,
                                                const std::string& field) {
  if (!v.is_array()) return FieldError(field, "expected an array");
  std::vector<DrillDownHit> out;
  out.reserve(v.GetArray().size());
  for (std::size_t i = 0; i < v.GetArray().size(); ++i) {
    const JsonValue& entry = v.GetArray()[i];
    const std::string where = field + "[" + std::to_string(i) + "]";
    if (!entry.is_object()) return FieldError(where, "expected an object");
    DrillDownHit hit;
    for (const JsonValue::Member& m : entry.GetObject()) {
      if (m.key == "shard") {
        BIVOC_ASSIGN_OR_RETURN(hit.shard,
                               GetStringField(m.value, where + ".shard"));
      } else if (m.key == "doc") {
        BIVOC_ASSIGN_OR_RETURN(std::size_t doc,
                               GetSizeField(m.value, where + ".doc"));
        hit.doc = static_cast<DocId>(doc);
      } else {
        return FieldError(where, "unknown field \"" + m.key + "\"");
      }
    }
    out.push_back(std::move(hit));
  }
  return out;
}

Result<ShardMergeInfo> MergeInfoFromJson(const JsonValue& v,
                                         const std::string& field) {
  if (!v.is_object()) return FieldError(field, "expected an object");
  ShardMergeInfo info;
  for (const JsonValue::Member& m : v.GetObject()) {
    const std::string at = field + "." + m.key;
    if (m.key == "subset_size") {
      BIVOC_ASSIGN_OR_RETURN(info.subset_size, GetSizeField(m.value, at));
    } else if (m.key == "bucket_totals") {
      BIVOC_ASSIGN_OR_RETURN(info.bucket_totals,
                             BucketPairsFromJson(m.value, at));
    } else if (m.key == "trend_series") {
      if (!m.value.is_array()) return FieldError(at, "expected an array");
      info.trend_series.reserve(m.value.GetArray().size());
      for (std::size_t i = 0; i < m.value.GetArray().size(); ++i) {
        const JsonValue& entry = m.value.GetArray()[i];
        const std::string where = at + "[" + std::to_string(i) + "]";
        if (!entry.is_object()) {
          return FieldError(where, "expected an object");
        }
        TrendSeries series;
        for (const JsonValue::Member& sm : entry.GetObject()) {
          const std::string sat = where + "." + sm.key;
          if (sm.key == "key") {
            BIVOC_ASSIGN_OR_RETURN(series.key,
                                   GetStringField(sm.value, sat));
          } else if (sm.key == "total_count") {
            BIVOC_ASSIGN_OR_RETURN(series.total_count,
                                   GetSizeField(sm.value, sat));
          } else if (sm.key == "bucket_counts") {
            BIVOC_ASSIGN_OR_RETURN(series.bucket_counts,
                                   BucketPairsFromJson(sm.value, sat));
          } else {
            return FieldError(where, "unknown field \"" + sm.key + "\"");
          }
        }
        info.trend_series.push_back(std::move(series));
      }
    } else {
      return FieldError(field, "unknown field \"" + m.key + "\"");
    }
  }
  return info;
}

}  // namespace

Result<WireReport> ReportResultFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("report body must be a JSON object");
  }
  WireReport out;
  ReportResult& report = out.report;
  bool saw_class = false;
  for (const JsonValue::Member& m : v.GetObject()) {
    if (m.key == "class") {
      BIVOC_ASSIGN_OR_RETURN(std::string name,
                             GetStringField(m.value, m.key));
      if (!QueryClassFromName(name, &report.cls)) {
        return FieldError(m.key, "unknown query class \"" + name + "\"");
      }
      saw_class = true;
    } else if (m.key == "generation") {
      BIVOC_ASSIGN_OR_RETURN(report.generation,
                             GetUint64Field(m.value, m.key));
    } else if (m.key == "num_documents") {
      BIVOC_ASSIGN_OR_RETURN(report.num_documents,
                             GetSizeField(m.value, m.key));
    } else if (m.key == "from_cache") {
      BIVOC_ASSIGN_OR_RETURN(out.from_cache, GetBoolField(m.value, m.key));
    } else if (m.key == "shard_mode") {
      BIVOC_ASSIGN_OR_RETURN(report.shard_mode,
                             GetBoolField(m.value, m.key));
    } else if (m.key == "concepts") {
      BIVOC_ASSIGN_OR_RETURN(report.concepts,
                             ConceptsFromJson(m.value, m.key));
    } else if (m.key == "relevancy") {
      BIVOC_ASSIGN_OR_RETURN(report.relevancy,
                             RelevancyFromJson(m.value, m.key));
    } else if (m.key == "association") {
      BIVOC_ASSIGN_OR_RETURN(report.association,
                             AssociationFromJson(m.value, m.key));
    } else if (m.key == "trends") {
      BIVOC_ASSIGN_OR_RETURN(report.trends, TrendsFromJson(m.value, m.key));
    } else if (m.key == "drill") {
      BIVOC_ASSIGN_OR_RETURN(report.drill, DrillFromJson(m.value, m.key));
    } else if (m.key == "merge") {
      BIVOC_ASSIGN_OR_RETURN(report.merge, MergeInfoFromJson(m.value, m.key));
    } else {
      return Status::InvalidArgument("unknown report field \"" + m.key +
                                     "\"");
    }
  }
  if (!saw_class) {
    return Status::InvalidArgument("report body needs a \"class\" field");
  }
  return out;
}

JsonValue IngestItemsToJson(const std::vector<IngestItem>& items) {
  JsonValue arr = JsonValue::MakeArray();
  for (const IngestItem& item : items) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("channel", JsonValue(VocChannelName(item.channel)));
    o.Set("payload", JsonValue(item.payload));
    if (item.time_bucket != 0) {
      o.Set("time_bucket", JsonValue(item.time_bucket));
    }
    if (!item.structured_keys.empty()) {
      o.Set("structured_keys", StringArrayToJson(item.structured_keys));
    }
    if (!item.tenant.empty()) {
      o.Set("tenant", JsonValue(item.tenant));
    }
    arr.Append(std::move(o));
  }
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("items", std::move(arr));
  return obj;
}

Result<std::vector<IngestItem>> IngestItemsFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("ingest body must be a JSON object");
  }
  const JsonValue* items = v.Find("items");
  if (items == nullptr || !items->is_array()) {
    return Status::InvalidArgument(
        "ingest body needs an \"items\" array");
  }
  if (v.GetObject().size() != 1) {
    return Status::InvalidArgument(
        "ingest body has fields other than \"items\"");
  }
  std::vector<IngestItem> out;
  out.reserve(items->GetArray().size());
  for (std::size_t i = 0; i < items->GetArray().size(); ++i) {
    const JsonValue& entry = items->GetArray()[i];
    const std::string where = "items[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return FieldError(where, "expected an object");
    }
    IngestItem item;
    bool saw_payload = false;
    for (const JsonValue::Member& m : entry.GetObject()) {
      if (m.key == "channel") {
        BIVOC_ASSIGN_OR_RETURN(
            std::string name, GetStringField(m.value, where + ".channel"));
        if (!VocChannelFromName(name, &item.channel)) {
          return FieldError(where + ".channel",
                            "unknown channel \"" + name + "\"");
        }
      } else if (m.key == "payload") {
        BIVOC_ASSIGN_OR_RETURN(item.payload,
                               GetStringField(m.value, where + ".payload"));
        saw_payload = true;
      } else if (m.key == "time_bucket") {
        if (!m.value.is_integer()) {
          return FieldError(where + ".time_bucket", "expected an integer");
        }
        item.time_bucket = m.value.GetInt64();
      } else if (m.key == "structured_keys") {
        BIVOC_ASSIGN_OR_RETURN(
            item.structured_keys,
            GetStringArrayField(m.value, where + ".structured_keys"));
      } else if (m.key == "tenant") {
        BIVOC_ASSIGN_OR_RETURN(item.tenant,
                               GetStringField(m.value, where + ".tenant"));
      } else {
        return FieldError(where, "unknown field \"" + m.key + "\"");
      }
    }
    if (!saw_payload) {
      return FieldError(where, "needs a \"payload\" field");
    }
    out.push_back(std::move(item));
  }
  return out;
}

JsonValue ExportedDocsToJson(const std::vector<ExportedDoc>& docs) {
  JsonValue arr = JsonValue::MakeArray();
  for (const ExportedDoc& doc : docs) {
    JsonValue o = JsonValue::MakeObject();
    o.Set("route", JsonValue(doc.route_key));
    o.Set("keys", StringArrayToJson(doc.concept_keys));
    if (doc.time_bucket != 0) {
      o.Set("bucket", JsonValue(doc.time_bucket));
    }
    arr.Append(std::move(o));
  }
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("docs", std::move(arr));
  return obj;
}

namespace {

Result<std::vector<ExportedDoc>> ParseExportedDocsArray(const JsonValue& docs);

}  // namespace

Result<std::vector<ExportedDoc>> ExportedDocsFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("export body must be a JSON object");
  }
  const JsonValue* docs = v.Find("docs");
  if (docs == nullptr || !docs->is_array()) {
    return Status::InvalidArgument("export body needs a \"docs\" array");
  }
  if (v.GetObject().size() != 1) {
    return Status::InvalidArgument(
        "export body has fields other than \"docs\"");
  }
  return ParseExportedDocsArray(*docs);
}

Result<ExportChunkWire> ExportChunkFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("export chunk must be a JSON object");
  }
  ExportChunkWire out;
  bool saw_docs = false, saw_next = false, saw_done = false;
  for (const JsonValue::Member& m : v.GetObject()) {
    if (m.key == "docs") {
      if (!m.value.is_array()) {
        return FieldError("docs", "expected an array");
      }
      BIVOC_ASSIGN_OR_RETURN(out.docs, ParseExportedDocsArray(m.value));
      saw_docs = true;
    } else if (m.key == "next" || m.key == "total") {
      if (!m.value.is_integer() || m.value.GetInt64() < 0) {
        return FieldError(m.key, "expected a non-negative integer");
      }
      (m.key == "next" ? out.next : out.total) =
          static_cast<uint64_t>(m.value.GetInt64());
      if (m.key == "next") saw_next = true;
    } else if (m.key == "done") {
      BIVOC_ASSIGN_OR_RETURN(out.done, GetBoolField(m.value, m.key));
      saw_done = true;
    } else {
      return FieldError("export chunk", "unknown field \"" + m.key + "\"");
    }
  }
  if (!saw_docs || !saw_next || !saw_done) {
    return Status::InvalidArgument(
        "export chunk needs \"docs\", \"next\" and \"done\"");
  }
  return out;
}

namespace {

Result<std::vector<ExportedDoc>> ParseExportedDocsArray(
    const JsonValue& docs_value) {
  const JsonValue* docs = &docs_value;
  std::vector<ExportedDoc> out;
  out.reserve(docs->GetArray().size());
  for (std::size_t i = 0; i < docs->GetArray().size(); ++i) {
    const JsonValue& entry = docs->GetArray()[i];
    const std::string where = "docs[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      return FieldError(where, "expected an object");
    }
    ExportedDoc doc;
    bool saw_route = false;
    for (const JsonValue::Member& m : entry.GetObject()) {
      if (m.key == "route") {
        BIVOC_ASSIGN_OR_RETURN(doc.route_key,
                               GetStringField(m.value, where + ".route"));
        saw_route = true;
      } else if (m.key == "keys") {
        BIVOC_ASSIGN_OR_RETURN(
            doc.concept_keys, GetStringArrayField(m.value, where + ".keys"));
      } else if (m.key == "bucket") {
        if (!m.value.is_integer()) {
          return FieldError(where + ".bucket", "expected an integer");
        }
        doc.time_bucket = m.value.GetInt64();
      } else {
        return FieldError(where, "unknown field \"" + m.key + "\"");
      }
    }
    if (!saw_route) {
      return FieldError(where, "needs a \"route\" field");
    }
    out.push_back(std::move(doc));
  }
  return out;
}

}  // namespace

JsonValue UtteranceAppendToJson(const UtteranceAppend& utterance) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("conversation_id", JsonValue(utterance.conversation_id));
  if (!utterance.text.empty()) o.Set("text", JsonValue(utterance.text));
  o.Set("time_bucket", JsonValue(utterance.time_bucket));
  if (utterance.close) o.Set("close", JsonValue(true));
  return o;
}

Result<UtteranceAppend> UtteranceAppendFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("utterance body must be a JSON object");
  }
  UtteranceAppend out;
  bool saw_id = false;
  for (const JsonValue::Member& m : v.GetObject()) {
    if (m.key == "conversation_id") {
      BIVOC_ASSIGN_OR_RETURN(out.conversation_id,
                             GetStringField(m.value, m.key));
      saw_id = true;
    } else if (m.key == "text") {
      BIVOC_ASSIGN_OR_RETURN(out.text, GetStringField(m.value, m.key));
    } else if (m.key == "time_bucket") {
      if (!m.value.is_integer()) {
        return FieldError(m.key, "expected an integer");
      }
      out.time_bucket = m.value.GetInt64();
    } else if (m.key == "close") {
      BIVOC_ASSIGN_OR_RETURN(out.close, GetBoolField(m.value, m.key));
    } else {
      return FieldError("utterance", "unknown field \"" + m.key + "\"");
    }
  }
  if (!saw_id) {
    return FieldError("utterance", "needs a \"conversation_id\" field");
  }
  return out;
}

JsonValue AppendResultToJson(const AppendResult& result) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("utterance_index",
        JsonValue(static_cast<uint64_t>(result.utterance_index)));
  o.Set("concepts", JsonValue(static_cast<uint64_t>(result.concepts)));
  o.Set("linked", JsonValue(result.linked));
  o.Set("relinked", JsonValue(result.relinked));
  if (result.linked) {
    o.Set("link_table", JsonValue(result.link_table));
    o.Set("link_row", JsonValue(result.link_row));
    o.Set("link_posterior", JsonValue(result.link_posterior));
  }
  o.Set("alerts_emitted",
        JsonValue(static_cast<uint64_t>(result.alerts_emitted)));
  o.Set("window_dropped", JsonValue(result.window_dropped));
  o.Set("window_generation",
        JsonValue(static_cast<uint64_t>(result.window_generation)));
  o.Set("closed", JsonValue(result.closed));
  if (result.closed) {
    o.Set("main_doc", JsonValue(static_cast<uint64_t>(result.main_doc)));
  }
  return o;
}

JsonValue BurstAlertToJson(const BurstAlert& alert) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("sequence", JsonValue(static_cast<uint64_t>(alert.sequence)));
  if (!alert.tenant.empty()) o.Set("tenant", JsonValue(alert.tenant));
  o.Set("concept", JsonValue(alert.concept_key));
  o.Set("bucket", JsonValue(alert.bucket));
  o.Set("count", JsonValue(static_cast<uint64_t>(alert.count)));
  o.Set("bucket_total",
        JsonValue(static_cast<uint64_t>(alert.bucket_total)));
  o.Set("baseline_mean", JsonValue(alert.baseline_mean));
  o.Set("z_score", JsonValue(alert.z_score));
  return o;
}

}  // namespace bivoc
