#ifndef BIVOC_NET_WIRE_H_
#define BIVOC_NET_WIRE_H_

#include <string_view>
#include <vector>

#include "core/ingest.h"
#include "core/persist.h"
#include "net/json.h"
#include "serve/query.h"
#include "stream/burst.h"
#include "stream/ingestor.h"
#include "synth/telecom.h"
#include "util/result.h"

namespace bivoc {

// JSON wire formats of the gateway's request/response bodies
// (DESIGN.md §11). Decoders are strict: unknown fields, wrong types
// and out-of-range values are kInvalidArgument with a field-qualified
// message, never silently ignored — a mistyped "limitt" should fail
// loudly, not fall back to a default.

// Stable lowercase channel names ("email", "sms", "call").
const char* VocChannelName(VocChannel channel);
bool VocChannelFromName(std::string_view name, VocChannel* out);

// Query request body of POST /v1/query:
//   {"class":"relevancy","key":"outcome/reservation",
//    "prefix":"intent/","limit":20,"min_count":3,
//    "row_keys":[...],"col_keys":[...]}
// Only "class" is required; the rest default like QueryRequest does.
JsonValue QueryRequestToJson(const QueryRequest& req);
Result<QueryRequest> QueryRequestFromJson(const JsonValue& v);

// Query response body: class/generation/num_documents/from_cache plus
// exactly the payload member matching the class. Shard-mode results
// additionally carry "shard_mode":true and a "merge" object with the
// additive support data (ShardMergeInfo).
JsonValue ReportResultToJson(const ReportResult& result, bool from_cache);

// Decoded query response — what the cluster router reads back from a
// shard's gateway before merging. `from_cache` reports the shard's
// cache, not the router's.
struct WireReport {
  ReportResult report;
  bool from_cache = false;
};
Result<WireReport> ReportResultFromJson(const JsonValue& v);

// Ingest batch body of POST /v1/ingest:
//   {"items":[{"channel":"email","payload":"...","time_bucket":3,
//              "structured_keys":["plan/..."]}]}
JsonValue IngestItemsToJson(const std::vector<IngestItem>& items);
Result<std::vector<IngestItem>> IngestItemsFromJson(const JsonValue& v);

// Rebalance data-plane body (POST /v1/admin/export response and
// /v1/admin/stage request):
//   {"docs":[{"route":"customer/7","keys":["product/gprs",...],
//             "bucket":3}]}
JsonValue ExportedDocsToJson(const std::vector<ExportedDoc>& docs);
Result<std::vector<ExportedDoc>> ExportedDocsFromJson(const JsonValue& v);

// One page of a chunked export (POST /v1/admin/export with
// {"cursor":C,"limit":N}): the docs array plus resume bookkeeping.
//   {"docs":[...],"next":C',"total":T,"done":false}
struct ExportChunkWire {
  std::vector<ExportedDoc> docs;
  uint64_t next = 0;
  uint64_t total = 0;
  bool done = false;
};
Result<ExportChunkWire> ExportChunkFromJson(const JsonValue& v);

// Streaming utterance body of POST /v1/stream/utterance:
//   {"conversation_id":"call-17","text":"i want a refund",
//    "time_bucket":42,"close":false}
// Only "conversation_id" is required ("text" may be omitted when
// closing a conversation).
JsonValue UtteranceAppendToJson(const UtteranceAppend& utterance);
Result<UtteranceAppend> UtteranceAppendFromJson(const JsonValue& v);

// Its response body: utterance accounting plus current link state and
// any alerts this append fired.
JsonValue AppendResultToJson(const AppendResult& result);

// Payload of one SSE "burst" event on GET /v1/stream/alerts.
JsonValue BurstAlertToJson(const BurstAlert& alert);

}  // namespace bivoc

#endif  // BIVOC_NET_WIRE_H_
