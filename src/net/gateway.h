#ifndef BIVOC_NET_GATEWAY_H_
#define BIVOC_NET_GATEWAY_H_

#include <array>
#include <cstdint>
#include <string>

#include "core/bivoc.h"
#include "net/http.h"
#include "net/http_server.h"
#include "util/metrics.h"
#include "util/status.h"

namespace bivoc {

struct GatewayOptions {
  HttpServerOptions server;
};

// The HTTP face of a BivocEngine (DESIGN.md §11). Four routes:
//
//   POST /v1/query   JSON QueryRequest -> ReportServer::Execute.
//                    Overload shedding (kUnavailable) maps to 503 with
//                    a Retry-After header derived from the serve
//                    options' retry hint; other Status codes map
//                    through HttpStatusForCode.
//   POST /v1/ingest  JSON batch -> BivocEngine::IngestBatch; answers
//                    with that batch's HealthReport.
//   GET  /healthz    Cumulative HealthReport as JSON.
//   GET  /metrics    The engine registry's Prometheus-style text dump
//                    (which includes this gateway's own instruments).
//
// Routing and serialization live in Handle(), which is public so tests
// can exercise the gateway without sockets; Start() binds the real
// HttpServer on top. Per-route counters and latency histograms are
// registered in the engine's MetricsRegistry as
// gateway_requests_total_<route>, gateway_latency_ms_<route> and
// gateway_responses_total_<route>_<status>.
//
// The gateway does not own the engine and must be stopped (or
// destroyed) before it.
class Gateway {
 public:
  explicit Gateway(BivocEngine* engine, GatewayOptions options = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  Status Start();
  // Graceful: completes in-flight requests, then joins. Idempotent.
  void Stop();

  // Bound port (options.server.port, or the kernel's pick for 0).
  uint16_t port() const { return server_.port(); }

  // The full request -> response mapping, sockets excluded.
  HttpResponse Handle(const HttpRequest& request);

  HttpServer* server() { return &server_; }

  // Routes indexed for the metric arrays; kOther covers 404/405 noise
  // so scans of unknown paths are visible but unlabeled.
  enum Route : std::size_t {
    kQuery = 0,
    kIngest,
    kHealthz,
    kMetrics,
    kOther,
    kNumRoutes,
  };

 private:
  HttpResponse Dispatch(const HttpRequest& request, Route* route);
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleHealthz();
  HttpResponse HandleMetrics();
  // 503 + Retry-After for a shed query, plain mapped error otherwise.
  HttpResponse StatusResponse(const Status& status);
  void CountResponse(Route route, int status);

  BivocEngine* engine_;  // not owned
  GatewayOptions opts_;
  std::array<Counter*, kNumRoutes> route_requests_{};
  std::array<Histogram*, kNumRoutes> route_latency_{};
  HttpServer server_;
};

// Stable route names ("query", "ingest", "healthz", "metrics",
// "other") used as metric-name suffixes.
const char* GatewayRouteName(std::size_t route);

}  // namespace bivoc

#endif  // BIVOC_NET_GATEWAY_H_
