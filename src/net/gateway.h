#ifndef BIVOC_NET_GATEWAY_H_
#define BIVOC_NET_GATEWAY_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/bivoc.h"
#include "net/http.h"
#include "net/http_server.h"
#include "net/json.h"
#include "serve/query.h"
#include "util/metrics.h"
#include "util/status.h"

namespace bivoc {

class AlertBus;  // stream/burst.h

struct GatewayOptions {
  HttpServerOptions server;
  // When non-empty, every /v1/admin/* request must present this key
  // (Authorization: Bearer <key> or X-Api-Key) or is refused with 401;
  // comparison is constant-time and failures count in the backend
  // registry's gateway_auth_failures_total. Empty = open admin plane
  // (trusted-network deployments, in-process cluster handles, tests).
  std::string admin_api_key;
};

// The service behind the gateway's routes, with HTTP and JSON framing
// already stripped. Two implementations exist: the single-engine
// backend wrapping a BivocEngine (internal to gateway.cc, what the
// BivocEngine* constructor below builds), and the cluster ShardRouter
// (cluster/router.h) which scatter-gathers over N engines. Keeping the
// interface here — not in cluster/ — is what lets bivoc_cluster depend
// on bivoc_net and not the other way around.
class GatewayBackend {
 public:
  virtual ~GatewayBackend() = default;

  struct HealthSnapshot {
    // 200 while the backend can serve (including degraded cluster
    // states); 503 when it cannot.
    int http_status = 200;
    JsonValue body;
  };

  // Parsed /v1/query body -> response JSON body. An error Status maps
  // through HttpStatusForCode (kUnavailable additionally carries a
  // Retry-After derived from retry_after_hint_ms).
  virtual Result<JsonValue> ExecuteQuery(QueryRequest request) = 0;
  // Parsed /v1/ingest batch -> response JSON body.
  virtual Result<JsonValue> ExecuteIngest(std::vector<IngestItem> items) = 0;
  // Parsed POST /v1/admin/<action> body -> response JSON body. The
  // cluster control plane (DESIGN.md §14): engines expose the
  // rebalance data-plane verbs (export/stage/apply/abort/drop) plus
  // the anti-entropy "checksum"; the router adds "ring" (live ring
  // change) and "audit". Backends that serve no admin verbs keep the
  // default.
  virtual Result<JsonValue> ExecuteAdmin(const std::string& action,
                                         const JsonValue& body) {
    (void)body;
    return Status::Unimplemented("no admin action \"" + action + "\"");
  }
  // Streaming VoC (DESIGN.md §15). Parsed POST /v1/stream/utterance
  // body -> AppendResult JSON. The single-engine backend forwards to
  // the engine's StreamIngestor when EnableStreaming was called;
  // backends without streaming keep the defaults (412 / no SSE).
  virtual Result<JsonValue> ExecuteStreamUtterance(const JsonValue& body) {
    (void)body;
    return Status::FailedPrecondition(
        "streaming is not enabled on this backend");
  }
  // Alert fan-out behind GET /v1/stream/alerts; nullptr disables the
  // route.
  virtual AlertBus* alert_bus() { return nullptr; }
  virtual HealthSnapshot Healthz() = 0;
  virtual std::string MetricsText() = 0;
  // Registry the gateway's per-route instruments are created in.
  virtual MetricsRegistry* metrics() = 0;
  // Hint (ms) for the Retry-After header on kUnavailable responses.
  virtual int64_t retry_after_hint_ms() { return 0; }
};

// The HTTP face of a GatewayBackend (DESIGN.md §11, §15). Routes:
//
//   POST /v1/query   JSON QueryRequest -> backend ExecuteQuery.
//                    Overload shedding (kUnavailable) maps to 503 with
//                    a Retry-After header from the backend's hint;
//                    other Status codes map through HttpStatusForCode.
//   POST /v1/ingest  JSON batch -> backend ExecuteIngest; answers with
//                    that batch's HealthReport (or the router's
//                    per-shard routing summary).
//   POST /v1/admin/<action>
//                    Cluster control plane -> backend ExecuteAdmin
//                    (rebalance data-plane verbs on engines, "ring"
//                    and "audit" on the router). An empty body reads
//                    as {}.
//   POST /v1/stream/utterance
//                    Streaming VoC append -> backend
//                    ExecuteStreamUtterance (412 when streaming is not
//                    enabled).
//   GET  /v1/stream/alerts
//                    Server-Sent-Events burst alert feed: a chunked
//                    keep-alive response carrying one "burst" event
//                    per alert, heartbeat comments while quiet, and a
//                    clean terminating chunk on server drain.
//   GET  /healthz    Backend health as JSON; 503 when unavailable.
//   GET  /metrics    The backend registry's Prometheus-style text dump
//                    (which includes this gateway's own instruments).
//
// Routing and serialization live in Handle(), which is public so tests
// can exercise the gateway without sockets; Start() binds the real
// HttpServer on top. Per-route counters and latency histograms are
// registered in the backend's MetricsRegistry as
// gateway_requests_total_<route>, gateway_latency_ms_<route> and
// gateway_responses_total_<route>_<status>.
//
// The gateway does not own an externally supplied backend (or the
// engine behind the convenience constructor) and must be stopped (or
// destroyed) before it.
class Gateway {
 public:
  // Serve an externally owned backend (e.g. a cluster ShardRouter).
  Gateway(GatewayBackend* backend, GatewayOptions options);
  // Single-engine deployment: builds and owns an engine-wrapping
  // backend internally.
  explicit Gateway(BivocEngine* engine, GatewayOptions options = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  Status Start();
  // Graceful: completes in-flight requests, then joins. Idempotent.
  void Stop();

  // Bound port (options.server.port, or the kernel's pick for 0).
  uint16_t port() const { return server_.port(); }

  // The full request -> response mapping, sockets excluded.
  HttpResponse Handle(const HttpRequest& request);

  HttpServer* server() { return &server_; }

  // Routes indexed for the metric arrays; kOther covers 404/405 noise
  // so scans of unknown paths are visible but unlabeled.
  enum Route : std::size_t {
    kQuery = 0,
    kIngest,
    kAdmin,
    kStreamUtterance,
    kStreamAlerts,
    kHealthz,
    kMetrics,
    kOther,
    kNumRoutes,
  };

 private:
  Gateway(std::unique_ptr<GatewayBackend> owned, GatewayBackend* backend,
          GatewayOptions options);

  HttpResponse Dispatch(const HttpRequest& request, Route* route);
  // True when `request` presents options.admin_api_key (trivially true
  // with no key configured).
  bool AdminAuthorized(const HttpRequest& request) const;
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleAdmin(const HttpRequest& request,
                           const std::string& action);
  HttpResponse HandleStreamUtterance(const HttpRequest& request);
  HttpResponse HandleStreamAlerts();
  HttpResponse HandleHealthz();
  HttpResponse HandleMetrics();
  // 503 + Retry-After for a shed query, plain mapped error otherwise.
  HttpResponse StatusResponse(const Status& status);
  void CountResponse(Route route, int status);

  std::unique_ptr<GatewayBackend> owned_backend_;  // engine ctor only
  GatewayBackend* backend_;  // always valid; == owned_backend_ when owned
  GatewayOptions opts_;
  std::array<Counter*, kNumRoutes> route_requests_{};
  std::array<Histogram*, kNumRoutes> route_latency_{};
  Counter* auth_failures_ = nullptr;
  HttpServer server_;
};

// Stable route names ("query", "ingest", "admin", "healthz",
// "metrics", "other") used as metric-name suffixes.
const char* GatewayRouteName(std::size_t route);

// The API key a request presents: the "Authorization: Bearer <key>"
// value when that header exists (empty on any other Authorization
// scheme), else the "X-Api-Key" value, else empty. Shared by the
// gateway's admin check and the multi-tenant service's key resolution.
std::string_view ExtractApiKey(const HttpRequest& request);

// The engine-side admin verbs, shared by the single-engine gateway
// backend and the cluster's in-process shard handles so both speak the
// exact dialect HttpShardHandle POSTs to /v1/admin/<action>:
//   export    {}                      -> {"docs":[...]} (ExportedDocs)
//   export    {"cursor":C,"limit":N}  -> {"docs":[...],"next":C',
//                                         "total":T,"done":bool}
//                                        (one bounded page; resume by
//                                        re-sending the same cursor)
//   stage     {"docs":[...]}          -> {"staged":N}
//   apply     {}                      -> {"applied":N}
//   abort     {}                      -> {"aborted":N}
//   drop      {"routes":["k",...]}    -> {"dropped":N}
//   checksum  {}                      -> {"docs":N,"checksum":"<hex>"}
// Unknown actions are kUnimplemented; malformed bodies kInvalidArgument.
Result<JsonValue> EngineAdmin(BivocEngine* engine, const std::string& action,
                              const JsonValue& body);

}  // namespace bivoc

#endif  // BIVOC_NET_GATEWAY_H_
