#ifndef BIVOC_NET_JSON_H_
#define BIVOC_NET_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace bivoc {

// Dependency-free JSON layer for the wire formats (DESIGN.md §11): a
// DOM value type, a strict parser hardened against hostile input
// (depth bombs, oversized documents, invalid UTF-8, malformed
// escapes), and a writer. This is the single serialization substrate
// for /v1/query, /v1/ingest, /healthz and HealthReport::ToString —
// nothing in the system assembles JSON by string concatenation.

struct JsonMember;  // key/value pair; defined below JsonValue

// A JSON document value. Numbers remember whether they were written
// as integers so counters round-trip exactly (int64 range) while
// ratios keep full double precision.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Member = JsonMember;
  // Insertion-ordered: dumps are deterministic and match the order
  // the producer chose (counts first, nested detail later).
  using Object = std::vector<JsonMember>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  JsonValue(int v) : JsonValue(static_cast<int64_t>(v)) {}  // NOLINT
  JsonValue(int64_t v) : type_(Type::kNumber), int_(v), is_int_(true) {  // NOLINT
    num_ = static_cast<double>(v);
  }
  JsonValue(uint64_t v)  // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(v)) {
    if (v <= static_cast<uint64_t>(INT64_MAX)) {
      int_ = static_cast<int64_t>(v);
      is_int_ = true;
    }
  }
  JsonValue(double v) : type_(Type::kNumber), num_(v) {}  // NOLINT
  JsonValue(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  JsonValue(std::string_view s) : type_(Type::kString), str_(s) {}  // NOLINT
  JsonValue(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT

  static JsonValue MakeArray() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  // True for numbers written without fraction/exponent that fit int64.
  bool is_integer() const { return type_ == Type::kNumber && is_int_; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool GetBool() const { return bool_; }
  double GetDouble() const { return num_; }
  int64_t GetInt64() const {
    return is_int_ ? int_ : static_cast<int64_t>(num_);
  }
  const std::string& GetString() const { return str_; }
  const Array& GetArray() const { return array_; }
  Array& GetArray() { return array_; }
  const Object& GetObject() const { return object_; }
  Object& GetObject() { return object_; }

  // Array append (value must be an array).
  JsonValue& Append(JsonValue v) {
    array_.push_back(std::move(v));
    return array_.back();
  }

  // Object member write: replaces an existing key, appends otherwise.
  JsonValue& Set(std::string_view key, JsonValue v);
  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Structural equality. Numbers compare by numeric value (1 == 1.0).
  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  Array array_;
  Object object_;
};

struct JsonMember {
  std::string key;
  JsonValue value;
};

inline bool operator==(const JsonMember& a, const JsonMember& b) {
  return a.key == b.key && a.value == b.value;
}
inline bool operator!=(const JsonMember& a, const JsonMember& b) {
  return !(a == b);
}

struct JsonParseOptions {
  // Maximum container nesting; a depth bomb fails fast instead of
  // exhausting the stack.
  std::size_t max_depth = 64;
  // Maximum document size in bytes (0 = unlimited). The gateway sets
  // this from its per-route body limits.
  std::size_t max_bytes = 8u << 20;
};

// Strict RFC 8259 parsing: exactly one value, no trailing garbage, no
// comments, no NaN/Infinity, no leading zeros, strings must be valid
// UTF-8 (escapes included, surrogate pairs validated). Errors report
// the byte offset.
Result<JsonValue> ParseJson(std::string_view text,
                            JsonParseOptions options = {});

// Compact serialization (no insignificant whitespace). Integers print
// as integers; other doubles print shortest-round-trip.
std::string DumpJson(const JsonValue& value);
// Pretty-printed with `indent` spaces per level (for logs and docs).
std::string DumpJson(const JsonValue& value, int indent);

}  // namespace bivoc

#endif  // BIVOC_NET_JSON_H_
