#ifndef BIVOC_NET_HTTP_CLIENT_H_
#define BIVOC_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/http.h"
#include "util/result.h"

namespace bivoc {

struct HttpClientOptions {
  // Default budget for every phase a dedicated knob below leaves at 0:
  // connecting, sending a request, awaiting/reading its response.
  int64_t timeout_ms = 5000;
  // TCP connect must complete within this window (0 = timeout_ms). The
  // scatter path keeps this tight so a black-holed shard costs
  // milliseconds, not a kernel SYN-retry eternity.
  int64_t connect_timeout_ms = 0;
  // The full response must arrive within this window after the request
  // was sent (0 = timeout_ms) — the knob a slow or hung server hits.
  int64_t read_timeout_ms = 0;
  HttpParserLimits parser_limits;
};

// Minimal blocking HTTP/1.1 client with keep-alive reuse. This exists
// for the loopback consumers inside this repo — tests, bench_throughput
// and examples/serve_http — not as a general-purpose client. One
// client drives one connection; it is not thread-safe (each load
// generator thread owns its own client, which is also how keep-alive
// benchmarking should be shaped).
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port, HttpClientOptions options = {});
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Sends and waits for the full response. Reconnects transparently
  // when the server closed the kept-alive connection.
  Result<HttpResponse> Request(const std::string& method,
                               const std::string& target,
                               const std::vector<HttpHeader>& headers,
                               std::string body);
  Result<HttpResponse> Get(const std::string& target);
  Result<HttpResponse> Post(const std::string& target, std::string body,
                            const std::string& content_type =
                                "application/json");

  // Raw escape hatch for hostile-input tests: sends exactly `bytes`
  // on the (re)connected socket without any framing.
  Status SendRaw(const std::string& bytes);
  // Reads until the peer closes or the timeout expires; returns the
  // bytes seen (possibly empty).
  Result<std::string> ReadUntilClose();
  // One read of whatever is available within `wait_ms` (possibly empty
  // on timeout; empty + !connected() means the peer closed). The SSE
  // consumption primitive: frames arrive incrementally on a connection
  // that stays open.
  Result<std::string> ReadSome(int64_t wait_ms);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Status EnsureConnected();
  Result<HttpResponse> RoundTrip(const std::string& wire);
  int64_t ConnectTimeoutMs() const {
    return opts_.connect_timeout_ms > 0 ? opts_.connect_timeout_ms
                                        : opts_.timeout_ms;
  }
  int64_t ReadTimeoutMs() const {
    return opts_.read_timeout_ms > 0 ? opts_.read_timeout_ms
                                     : opts_.timeout_ms;
  }

  std::string host_;
  uint16_t port_;
  HttpClientOptions opts_;
  int fd_ = -1;
};

}  // namespace bivoc

#endif  // BIVOC_NET_HTTP_CLIENT_H_
