#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace bivoc {

namespace {

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool IsTokenChar(char c) {
  // RFC 9110 tchar.
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9')) {
    return true;
  }
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
      return true;
    default:
      return false;
  }
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Case-insensitive "does this comma-separated header list contain
// `token`" (Connection / Transfer-Encoding handling).
bool ListContains(std::string_view value, std::string_view token) {
  std::size_t start = 0;
  while (start <= value.size()) {
    std::size_t comma = value.find(',', start);
    std::string_view item = value.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    if (HeaderNameEquals(TrimOws(item), token)) return true;
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return false;
}

const std::string* FindIn(const std::vector<HttpHeader>& headers,
                          std::string_view name) {
  for (const HttpHeader& h : headers) {
    if (HeaderNameEquals(h.name, name)) return &h.value;
  }
  return nullptr;
}

}  // namespace

bool HeaderNameEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

std::string_view HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 413: return "Content Too Large";
    case 416: return "Range Not Satisfiable";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

// ---------------------------------------------------------------------------
// Messages

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

std::string HttpRequest::Path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = FindHeader("Connection");
  if (version == "HTTP/1.0") {
    return connection != nullptr && ListContains(*connection, "keep-alive");
  }
  return connection == nullptr || !ListContains(*connection, "close");
}

const std::string* HttpResponse::FindHeader(std::string_view name) const {
  return FindIn(headers, name);
}

void HttpResponse::SetHeader(std::string_view name, std::string_view value) {
  for (HttpHeader& h : headers) {
    if (HeaderNameEquals(h.name, name)) {
      h.value = std::string(value);
      return;
    }
  }
  headers.push_back({std::string(name), std::string(value)});
}

std::string HttpResponse::Serialize(bool keep_alive) const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    (reason.empty() ? std::string(HttpReasonPhrase(status))
                                    : reason) +
                    "\r\n";
  bool have_length = false;
  for (const HttpHeader& h : headers) {
    if (HeaderNameEquals(h.name, "Content-Length")) have_length = true;
    if (HeaderNameEquals(h.name, "Connection")) continue;  // we own it
    out += h.name + ": " + h.value + "\r\n";
  }
  if (!have_length) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  if (!keep_alive) out += "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

std::string HttpResponse::SerializeChunkedHead() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    (reason.empty() ? std::string(HttpReasonPhrase(status))
                                    : reason) +
                    "\r\n";
  for (const HttpHeader& h : headers) {
    // Framing headers are owned by the streaming writer.
    if (HeaderNameEquals(h.name, "Content-Length")) continue;
    if (HeaderNameEquals(h.name, "Transfer-Encoding")) continue;
    if (HeaderNameEquals(h.name, "Connection")) continue;
    out += h.name + ": " + h.value + "\r\n";
  }
  out += "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  return out;
}

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.SetHeader("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.SetHeader("Content-Type", "text/plain; charset=utf-8");
  response.body = std::move(body);
  return response;
}

HttpResponse ErrorResponse(int status, std::string_view code,
                           std::string_view message) {
  // Assembled by hand here (not via JsonValue) so the error path has
  // zero dependencies; both fields are escaped minimally.
  auto escape = [](std::string_view s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out.push_back(' ');
      } else {
        out.push_back(c);
      }
    }
    return out;
  };
  return JsonResponse(status, "{\"error\":{\"code\":\"" + escape(code) +
                                  "\",\"message\":\"" + escape(message) +
                                  "\"}}");
}

HttpResponse SseResponse(std::shared_ptr<ResponseStream> stream) {
  HttpResponse response;
  response.status = 200;
  response.SetHeader("Content-Type", "text/event-stream");
  response.SetHeader("Cache-Control", "no-store");
  // An opening comment flushes intermediaries and lets clients detect
  // liveness before the first real event.
  response.body = ": stream opened\n\n";
  response.stream = std::move(stream);
  return response;
}

std::string FormatSseEvent(std::string_view event, std::string_view data,
                           uint64_t id) {
  std::string out;
  if (id != 0) {
    out += "id: ";
    out += std::to_string(id);
    out += "\n";
  }
  if (!event.empty()) {
    out += "event: ";
    out += event;
    out += "\n";
  }
  // One data: line per payload line keeps multi-line data well-formed.
  std::size_t start = 0;
  while (start <= data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    out += "data: ";
    out += data.substr(start, end - start);
    out += "\n";
    start = end + 1;
  }
  out += "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parser

HttpParser::HttpParser(Mode mode, HttpParserLimits limits)
    : mode_(mode), limits_(limits) {}

void HttpParser::Reset() {
  phase_ = Phase::kStartLine;
  state_ = State::kNeedMore;
  started_ = false;
  line_.clear();
  header_bytes_ = 0;
  body_remaining_ = 0;
  request_ = HttpRequest();
  response_ = HttpResponse();
  error_ = Status::OK();
  http_status_ = 400;
}

HttpParser::State HttpParser::Error(int http_status,
                                    const std::string& message) {
  state_ = State::kError;
  error_ = Status::InvalidArgument(message);
  http_status_ = http_status;
  phase_ = Phase::kDone;
  return state_;
}

Status HttpParser::ParseStartLine(std::string_view line) {
  if (mode_ == Mode::kRequest) {
    // method SP request-target SP HTTP-version
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos || sp1 == 0) {
      return Status::InvalidArgument("malformed request line");
    }
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos || sp2 == sp1 + 1 ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
      return Status::InvalidArgument("malformed request line");
    }
    std::string_view method = line.substr(0, sp1);
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string_view version = line.substr(sp2 + 1);
    if (method.size() > 16 ||
        !std::all_of(method.begin(), method.end(), IsTokenChar)) {
      return Status::InvalidArgument("invalid method token");
    }
    for (char c : target) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (u <= 0x20 || u == 0x7F) {
        return Status::InvalidArgument("control byte in request target");
      }
    }
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
      // A real-but-unsupported version earns 505; random garbage in
      // the version slot is just a malformed request (400).
      if (version.substr(0, 5) == "HTTP/") {
        return Status::InvalidArgument("unsupported HTTP version");
      }
      return Status::InvalidArgument("malformed protocol in request line");
    }
    request_.method = std::string(method);
    request_.target = std::string(target);
    request_.version = std::string(version);
    return Status::OK();
  }
  // HTTP-version SP status-code SP reason-phrase
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return Status::InvalidArgument("malformed status line");
  }
  std::string_view version = line.substr(0, sp1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version");
  }
  std::string_view rest = line.substr(sp1 + 1);
  const std::size_t sp2 = rest.find(' ');
  std::string_view code =
      sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
  if (code.size() != 3 || !std::all_of(code.begin(), code.end(), [](char c) {
        return c >= '0' && c <= '9';
      })) {
    return Status::InvalidArgument("malformed status code");
  }
  response_.status =
      (code[0] - '0') * 100 + (code[1] - '0') * 10 + (code[2] - '0');
  if (sp2 != std::string_view::npos) {
    response_.reason = std::string(rest.substr(sp2 + 1));
  }
  return Status::OK();
}

Status HttpParser::ParseHeaderLine(std::string_view line) {
  if (line.front() == ' ' || line.front() == '\t') {
    // Deprecated obs-fold continuation: a smuggling vector; reject.
    return Status::InvalidArgument("folded header line");
  }
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return Status::InvalidArgument("header line without name");
  }
  std::string_view name = line.substr(0, colon);
  if (!std::all_of(name.begin(), name.end(), IsTokenChar)) {
    // Space before the colon is another classic smuggling trick.
    return Status::InvalidArgument("invalid header name");
  }
  std::string_view value = TrimOws(line.substr(colon + 1));
  for (char c : value) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u == 0 || u == '\r' || u == '\n') {
      return Status::InvalidArgument("control byte in header value");
    }
  }
  auto& headers =
      mode_ == Mode::kRequest ? request_.headers : response_.headers;
  if (headers.size() >= limits_.max_headers) {
    // kOutOfRange so the caller maps this to 431, not plain 400.
    return Status::OutOfRange("too many headers");
  }
  headers.push_back({std::string(name), std::string(value)});
  return Status::OK();
}

Status HttpParser::BeginBody() {
  const auto& headers =
      mode_ == Mode::kRequest ? request_.headers : response_.headers;
  const std::string* te = FindIn(headers, "Transfer-Encoding");
  const std::string* cl = FindIn(headers, "Content-Length");
  // Repeated framing headers are the other classic smuggling vehicle:
  // two Content-Length (or Transfer-Encoding) fields mean two proxies
  // can disagree about where the message ends. Reject outright.
  std::size_t cl_count = 0;
  std::size_t te_count = 0;
  for (const HttpHeader& h : headers) {
    if (HeaderNameEquals(h.name, "Content-Length")) ++cl_count;
    if (HeaderNameEquals(h.name, "Transfer-Encoding")) ++te_count;
  }
  if (cl_count > 1 || te_count > 1) {
    return Status::InvalidArgument("repeated message-framing header");
  }
  if (te != nullptr) {
    if (cl != nullptr) {
      // RFC 9112 §6.1: a message with both is a request-smuggling
      // vehicle; a strict server drops it.
      return Status::InvalidArgument(
          "both Content-Length and Transfer-Encoding present");
    }
    if (!HeaderNameEquals(TrimOws(*te), "chunked")) {
      return Status::Unimplemented("unsupported transfer coding: " + *te);
    }
    phase_ = Phase::kChunkSize;
    return Status::OK();
  }
  if (cl != nullptr) {
    const std::string_view text = TrimOws(*cl);
    if (text.empty() || text.size() > 15 ||
        !std::all_of(text.begin(), text.end(),
                     [](char c) { return c >= '0' && c <= '9'; })) {
      return Status::InvalidArgument("malformed Content-Length");
    }
    std::size_t length = 0;
    for (char c : text) length = length * 10 + static_cast<std::size_t>(c - '0');
    if (length > limits_.max_body_bytes) {
      return Status::OutOfRange("declared body of " + std::to_string(length) +
                                " bytes exceeds limit");
    }
    if (length == 0) {
      phase_ = Phase::kDone;
      return Status::OK();
    }
    body_remaining_ = length;
    phase_ = Phase::kFixedBody;
    return Status::OK();
  }
  if (mode_ == Mode::kRequest) {
    // No framing headers: no body (GET/DELETE and friends).
    phase_ = Phase::kDone;
  } else {
    // A response without framing is delimited by connection close.
    phase_ = Phase::kUntilClose;
  }
  return Status::OK();
}

HttpParser::State HttpParser::Feed(std::string_view data,
                                   std::size_t* consumed) {
  if (state_ != State::kNeedMore) return state_;
  std::string& body = mode_ == Mode::kRequest ? request_.body : response_.body;

  while (*consumed < data.size()) {
    const std::string_view rest = data.substr(*consumed);
    switch (phase_) {
      case Phase::kStartLine:
      case Phase::kHeaders:
      case Phase::kTrailers:
      case Phase::kChunkSize: {
        // Line-oriented phases: accumulate until CRLF, byte by byte —
        // header sections are small by limit, so this is never hot.
        const char c = rest.front();
        ++*consumed;
        started_ = true;
        line_.push_back(c);
        const bool is_header_phase =
            phase_ == Phase::kStartLine || phase_ == Phase::kHeaders ||
            phase_ == Phase::kTrailers;
        if (is_header_phase) {
          ++header_bytes_;
          if (header_bytes_ > limits_.max_header_bytes) {
            return Error(431, "header section exceeds " +
                                  std::to_string(limits_.max_header_bytes) +
                                  " bytes");
          }
        } else if (line_.size() > limits_.max_chunk_line_bytes) {
          return Error(400, "chunk-size line too long");
        }
        if (phase_ == Phase::kStartLine &&
            line_.size() > limits_.max_start_line_bytes) {
          return Error(431, "start line too long");
        }
        if (c != '\n') break;
        if (line_.size() < 2 || line_[line_.size() - 2] != '\r') {
          return Error(400, "bare LF in message framing");
        }
        std::string_view line(line_.data(), line_.size() - 2);
        if (phase_ == Phase::kStartLine) {
          if (line.empty()) {
            // Tolerate one empty line before the start line (robust
            // servers skip a stray CRLF between pipelined requests).
            line_.clear();
            break;
          }
          Status st = ParseStartLine(line);
          if (!st.ok()) {
            const int code =
                st.message().find("version") != std::string::npos ? 505 : 400;
            return Error(code, st.message());
          }
          phase_ = Phase::kHeaders;
        } else if (phase_ == Phase::kHeaders) {
          if (line.empty()) {
            Status st = BeginBody();
            if (!st.ok()) {
              int code = 400;
              if (st.code() == StatusCode::kOutOfRange) code = 413;
              if (st.code() == StatusCode::kUnimplemented) code = 501;
              return Error(code, st.message());
            }
          } else {
            Status st = ParseHeaderLine(line);
            if (!st.ok()) {
              return Error(st.code() == StatusCode::kOutOfRange ? 431 : 400,
                           st.message());
            }
          }
        } else if (phase_ == Phase::kTrailers) {
          // Trailer fields are framing we must walk past, not data we
          // trust: validate shape, then discard.
          if (line.empty()) {
            phase_ = Phase::kDone;
          } else if (line.front() == ' ' || line.front() == '\t' ||
                     line.find(':') == std::string_view::npos) {
            return Error(400, "malformed trailer line");
          }
        } else {  // kChunkSize
          std::string_view size_text = line;
          const std::size_t semi = size_text.find(';');
          if (semi != std::string_view::npos) {
            size_text = size_text.substr(0, semi);  // drop extensions
          }
          size_text = TrimOws(size_text);
          if (size_text.empty() || size_text.size() > 8) {
            return Error(400, "malformed chunk size");
          }
          std::size_t size = 0;
          for (char h : size_text) {
            size <<= 4;
            if (h >= '0' && h <= '9') {
              size |= static_cast<std::size_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              size |= static_cast<std::size_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              size |= static_cast<std::size_t>(h - 'A' + 10);
            } else {
              return Error(400, "invalid chunk-size hex digit");
            }
          }
          if (size == 0) {
            phase_ = Phase::kTrailers;
          } else if (body.size() + size > limits_.max_body_bytes) {
            return Error(413, "chunked body exceeds limit");
          } else {
            body_remaining_ = size;
            phase_ = Phase::kChunkData;
          }
        }
        line_.clear();
        break;
      }
      case Phase::kFixedBody:
      case Phase::kChunkData: {
        const std::size_t take = std::min(body_remaining_, rest.size());
        body.append(rest.substr(0, take));
        *consumed += take;
        body_remaining_ -= take;
        if (body_remaining_ == 0) {
          phase_ = phase_ == Phase::kFixedBody ? Phase::kDone
                                               : Phase::kChunkDataEnd;
        }
        break;
      }
      case Phase::kChunkDataEnd: {
        // Exactly CRLF after each chunk's data.
        line_.push_back(rest.front());
        ++*consumed;
        if (line_.size() == 1) {
          if (line_[0] != '\r') return Error(400, "chunk data not CRLF-terminated");
        } else {
          if (line_[1] != '\n') return Error(400, "chunk data not CRLF-terminated");
          line_.clear();
          phase_ = Phase::kChunkSize;
        }
        break;
      }
      case Phase::kUntilClose: {
        if (body.size() + rest.size() > limits_.max_body_bytes) {
          return Error(413, "body exceeds limit");
        }
        body.append(rest);
        *consumed += rest.size();
        break;
      }
      case Phase::kDone:
        state_ = State::kComplete;
        return state_;
    }
    if (phase_ == Phase::kDone && state_ == State::kNeedMore) {
      state_ = State::kComplete;
      return state_;
    }
  }
  if (phase_ == Phase::kDone && state_ == State::kNeedMore) {
    state_ = State::kComplete;
  }
  return state_;
}

HttpParser::State HttpParser::FinishEof() {
  if (state_ != State::kNeedMore) return state_;
  if (phase_ == Phase::kUntilClose) {
    phase_ = Phase::kDone;
    state_ = State::kComplete;
    return state_;
  }
  if (!started_) {
    // Clean close between messages.
    return Error(400, "connection closed before any request bytes");
  }
  return Error(400, "connection closed mid-message");
}

}  // namespace bivoc
