#include "net/gateway.h"

#include <memory>
#include <string>
#include <utility>

#include "net/json.h"
#include "net/wire.h"
#include "util/logging.h"
#include "util/timer.h"

namespace bivoc {

const char* GatewayRouteName(std::size_t route) {
  switch (route) {
    case Gateway::kQuery:
      return "query";
    case Gateway::kIngest:
      return "ingest";
    case Gateway::kHealthz:
      return "healthz";
    case Gateway::kMetrics:
      return "metrics";
    default:
      return "other";
  }
}

Gateway::Gateway(BivocEngine* engine, GatewayOptions options)
    : engine_(engine),
      opts_(std::move(options)),
      server_([this](const HttpRequest& request) { return Handle(request); },
              opts_.server, engine->metrics()) {
  // serve() and ingest() lazily construct their subsystems and are not
  // thread-safe on first call; warm both here, before any worker
  // thread exists, so handlers only ever read initialized pointers.
  engine_->serve();
  engine_->ingest();
  MetricsRegistry* metrics = engine_->metrics();
  for (std::size_t r = 0; r < kNumRoutes; ++r) {
    const std::string name = GatewayRouteName(r);
    route_requests_[r] =
        metrics->GetCounter("gateway_requests_total_" + name);
    route_latency_[r] = metrics->GetHistogram("gateway_latency_ms_" + name);
  }
}

Gateway::~Gateway() { Stop(); }

Status Gateway::Start() {
  BIVOC_RETURN_NOT_OK(server_.Start());
  BIVOC_LOG(Info) << "gateway listening on " << opts_.server.host << ":"
                  << server_.port();
  return Status::OK();
}

void Gateway::Stop() { server_.Stop(); }

void Gateway::CountResponse(Route route, int status) {
  engine_->metrics()->GetCounter(
      std::string("gateway_responses_total_") + GatewayRouteName(route) +
      "_" + std::to_string(status))->Increment();
}

HttpResponse Gateway::Handle(const HttpRequest& request) {
  Timer timer;
  Route route = kOther;
  HttpResponse response = Dispatch(request, &route);
  route_requests_[route]->Increment();
  route_latency_[route]->Observe(timer.ElapsedMillis());
  CountResponse(route, response.status);
  return response;
}

HttpResponse Gateway::Dispatch(const HttpRequest& request, Route* route) {
  const std::string path = request.Path();
  if (path == "/v1/query") {
    *route = kQuery;
  } else if (path == "/v1/ingest") {
    *route = kIngest;
  } else if (path == "/healthz") {
    *route = kHealthz;
  } else if (path == "/metrics") {
    *route = kMetrics;
  } else {
    *route = kOther;
    return ErrorResponse(404, "not_found", "no route for " + path);
  }

  const bool wants_post = (*route == kQuery || *route == kIngest);
  const std::string& allowed = wants_post ? "POST" : "GET";
  // HEAD intentionally not special-cased: this is an API server, not a
  // document server.
  if (request.method != allowed) {
    HttpResponse response = ErrorResponse(
        405, "method_not_allowed",
        request.method + " not allowed on " + path);
    response.SetHeader("Allow", allowed);
    return response;
  }

  switch (*route) {
    case kQuery:
      return HandleQuery(request);
    case kIngest:
      return HandleIngest(request);
    case kHealthz:
      return HandleHealthz();
    case kMetrics:
      return HandleMetrics();
    default:
      break;
  }
  return ErrorResponse(500, "internal", "unroutable route");  // unreachable
}

HttpResponse Gateway::StatusResponse(const Status& status) {
  HttpResponse response =
      ErrorResponse(HttpStatusForCode(status.code()),
                    std::string(StatusCodeName(status.code())),
                    status.message());
  if (status.code() == StatusCode::kUnavailable) {
    // The shed message carries "retry after N ms"; the header speaks
    // seconds. Round up so clients never come back too early.
    const int64_t hint_ms = engine_->serve()->options().retry_after_ms;
    const int64_t seconds = hint_ms <= 0 ? 1 : (hint_ms + 999) / 1000;
    response.SetHeader("Retry-After", std::to_string(seconds));
  }
  return response;
}

HttpResponse Gateway::HandleQuery(const HttpRequest& request) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) {
    return ErrorResponse(400, "bad_json", body.status().message());
  }
  Result<QueryRequest> query = QueryRequestFromJson(body.value());
  if (!query.ok()) {
    return ErrorResponse(400, "bad_query", query.status().message());
  }
  Result<ReportServer::ReportResponse> result =
      engine_->serve()->Execute(query.MoveValue());
  if (!result.ok()) {
    return StatusResponse(result.status());
  }
  return JsonResponse(
      200, DumpJson(ReportResultToJson(*result.value().report,
                                       result.value().from_cache)));
}

HttpResponse Gateway::HandleIngest(const HttpRequest& request) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) {
    return ErrorResponse(400, "bad_json", body.status().message());
  }
  Result<std::vector<IngestItem>> items = IngestItemsFromJson(body.value());
  if (!items.ok()) {
    return ErrorResponse(400, "bad_batch", items.status().message());
  }
  const HealthReport report = engine_->IngestBatch(items.value());
  return JsonResponse(200, DumpJson(HealthReportToJson(report)));
}

HttpResponse Gateway::HandleHealthz() {
  return JsonResponse(200, DumpJson(HealthReportToJson(engine_->Health())));
}

HttpResponse Gateway::HandleMetrics() {
  return TextResponse(200, engine_->MetricsText());
}

// ---------------------------------------------------------------------------
// BivocEngine gateway hooks. Defined here — not in bivoc.cc — so
// bivoc_core never depends on bivoc_net; any binary that calls
// StartGateway already links the gateway. The engine stores the
// gateway behind shared_ptr<void>, whose captured deleter makes
// destruction work without the complete type.

Result<uint16_t> BivocEngine::StartGateway(GatewayOptions options) {
  if (gateway_ptr_ != nullptr) {
    return Status::FailedPrecondition("gateway already running");
  }
  auto gateway = std::make_shared<Gateway>(this, std::move(options));
  BIVOC_RETURN_NOT_OK(gateway->Start());
  gateway_ptr_ = gateway.get();
  gateway_ = std::move(gateway);
  return gateway_ptr_->port();
}

Result<uint16_t> BivocEngine::StartGateway() {
  return StartGateway(GatewayOptions{});
}

void BivocEngine::StopGateway() {
  if (gateway_ptr_ == nullptr) return;
  gateway_ptr_->Stop();
  gateway_ptr_ = nullptr;
  gateway_.reset();
}

Gateway* BivocEngine::gateway() { return gateway_ptr_; }

}  // namespace bivoc
