#include "net/gateway.h"

#include <memory>
#include <string>
#include <utility>

#include "net/json.h"
#include "net/wire.h"
#include "stream/burst.h"
#include "stream/ingestor.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace bivoc {

namespace {

// Adapts an AlertBus subscription to the HTTP server's pull-based
// streaming interface: each alert becomes one SSE "burst" event; the
// subscription's bounded queue is the per-connection backpressure
// boundary (a slow client sheds its own alerts, never ingest).
class AlertSseStream : public ResponseStream {
 public:
  explicit AlertSseStream(std::shared_ptr<AlertBus::Subscription> sub)
      : sub_(std::move(sub)) {}

  Poll Next(std::string* out, int64_t wait_ms) override {
    BurstAlert alert;
    if (!sub_->Poll(&alert, wait_ms)) return Poll::kIdle;
    *out = FormatSseEvent("burst", DumpJson(BurstAlertToJson(alert)),
                          alert.sequence);
    return Poll::kChunk;
  }

 private:
  std::shared_ptr<AlertBus::Subscription> sub_;
};

// The single-engine backend: routes map 1:1 onto BivocEngine calls.
class EngineGatewayBackend : public GatewayBackend {
 public:
  explicit EngineGatewayBackend(BivocEngine* engine) : engine_(engine) {
    // serve() and ingest() lazily construct their subsystems and are
    // not thread-safe on first call; warm both here, before any worker
    // thread exists, so handlers only ever read initialized pointers.
    engine_->serve();
    engine_->ingest();
  }

  Result<JsonValue> ExecuteQuery(QueryRequest request) override {
    if (request.window) return ExecuteWindowQuery(request);
    Result<ReportServer::ReportResponse> result =
        engine_->serve()->Execute(std::move(request));
    if (!result.ok()) return result.status();
    return ReportResultToJson(*result.value().report,
                              result.value().from_cache);
  }

  // Window-scoped trends bypass the report server: the window snapshot
  // regenerates on every append, so caching would never hit, and
  // evaluation is an O(window concepts) aggregate read.
  Result<JsonValue> ExecuteWindowQuery(const QueryRequest& request) {
    StreamIngestor* stream = engine_->stream();
    if (stream == nullptr) {
      return Status::FailedPrecondition(
          "window queries need streaming enabled on this engine");
    }
    BIVOC_RETURN_NOT_OK(ValidateQuery(request));
    std::shared_ptr<const WindowSnapshot> snapshot = stream->Window();
    ReportResult result;
    result.cls = request.cls;
    result.generation = snapshot->generation();
    result.num_documents = snapshot->num_documents();
    result.trends =
        stream->WindowTrend(request.prefix, request.limit, request.min_count);
    return ReportResultToJson(result, /*from_cache=*/false);
  }

  Result<JsonValue> ExecuteIngest(std::vector<IngestItem> items) override {
    return HealthReportToJson(engine_->IngestBatch(items));
  }

  Result<JsonValue> ExecuteAdmin(const std::string& action,
                                 const JsonValue& body) override {
    return EngineAdmin(engine_, action, body);
  }

  Result<JsonValue> ExecuteStreamUtterance(const JsonValue& body) override {
    StreamIngestor* stream = engine_->stream();
    if (stream == nullptr) {
      return Status::FailedPrecondition(
          "streaming is not enabled on this engine");
    }
    BIVOC_ASSIGN_OR_RETURN(UtteranceAppend utterance,
                           UtteranceAppendFromJson(body));
    BIVOC_ASSIGN_OR_RETURN(AppendResult result, stream->Append(utterance));
    return AppendResultToJson(result);
  }

  AlertBus* alert_bus() override {
    StreamIngestor* stream = engine_->stream();
    return stream == nullptr ? nullptr : stream->alerts();
  }

  HealthSnapshot Healthz() override {
    return {200, HealthReportToJson(engine_->Health())};
  }

  std::string MetricsText() override { return engine_->MetricsText(); }

  MetricsRegistry* metrics() override { return engine_->metrics(); }

  int64_t retry_after_hint_ms() override {
    return engine_->serve()->options().retry_after_ms;
  }

 private:
  BivocEngine* engine_;  // not owned
};

}  // namespace

const char* GatewayRouteName(std::size_t route) {
  switch (route) {
    case Gateway::kQuery:
      return "query";
    case Gateway::kIngest:
      return "ingest";
    case Gateway::kAdmin:
      return "admin";
    case Gateway::kStreamUtterance:
      return "stream_utterance";
    case Gateway::kStreamAlerts:
      return "stream_alerts";
    case Gateway::kHealthz:
      return "healthz";
    case Gateway::kMetrics:
      return "metrics";
    default:
      return "other";
  }
}

Gateway::Gateway(std::unique_ptr<GatewayBackend> owned,
                 GatewayBackend* backend, GatewayOptions options)
    : owned_backend_(std::move(owned)),
      backend_(owned_backend_ ? owned_backend_.get() : backend),
      opts_(std::move(options)),
      server_([this](const HttpRequest& request) { return Handle(request); },
              opts_.server, backend_->metrics()) {
  MetricsRegistry* metrics = backend_->metrics();
  for (std::size_t r = 0; r < kNumRoutes; ++r) {
    const std::string name = GatewayRouteName(r);
    route_requests_[r] =
        metrics->GetCounter("gateway_requests_total_" + name);
    route_latency_[r] = metrics->GetHistogram("gateway_latency_ms_" + name);
  }
  auth_failures_ = metrics->GetCounter("gateway_auth_failures_total");
}

Gateway::Gateway(GatewayBackend* backend, GatewayOptions options)
    : Gateway(nullptr, backend, std::move(options)) {}

Gateway::Gateway(BivocEngine* engine, GatewayOptions options)
    : Gateway(std::make_unique<EngineGatewayBackend>(engine), nullptr,
              std::move(options)) {}

Gateway::~Gateway() { Stop(); }

Status Gateway::Start() {
  BIVOC_RETURN_NOT_OK(server_.Start());
  BIVOC_LOG(Info) << "gateway listening on " << opts_.server.host << ":"
                  << server_.port();
  return Status::OK();
}

void Gateway::Stop() { server_.Stop(); }

void Gateway::CountResponse(Route route, int status) {
  backend_->metrics()->GetCounter(
      std::string("gateway_responses_total_") + GatewayRouteName(route) +
      "_" + std::to_string(status))->Increment();
}

HttpResponse Gateway::Handle(const HttpRequest& request) {
  Timer timer;
  Route route = kOther;
  HttpResponse response = Dispatch(request, &route);
  route_requests_[route]->Increment();
  route_latency_[route]->Observe(timer.ElapsedMillis());
  CountResponse(route, response.status);
  return response;
}

HttpResponse Gateway::Dispatch(const HttpRequest& request, Route* route) {
  const std::string path = request.Path();
  static const std::string kAdminPrefix = "/v1/admin/";
  std::string admin_action;
  if (path == "/v1/query") {
    *route = kQuery;
  } else if (path == "/v1/ingest") {
    *route = kIngest;
  } else if (path.size() > kAdminPrefix.size() &&
             path.compare(0, kAdminPrefix.size(), kAdminPrefix) == 0) {
    *route = kAdmin;
    admin_action = path.substr(kAdminPrefix.size());
  } else if (path == "/v1/stream/utterance") {
    *route = kStreamUtterance;
  } else if (path == "/v1/stream/alerts") {
    *route = kStreamAlerts;
  } else if (path == "/healthz") {
    *route = kHealthz;
  } else if (path == "/metrics") {
    *route = kMetrics;
  } else {
    *route = kOther;
    return ErrorResponse(404, "not_found", "no route for " + path);
  }

  const bool wants_post =
      (*route == kQuery || *route == kIngest || *route == kAdmin ||
       *route == kStreamUtterance);
  const std::string& allowed = wants_post ? "POST" : "GET";
  // HEAD intentionally not special-cased: this is an API server, not a
  // document server.
  if (request.method != allowed) {
    HttpResponse response = ErrorResponse(
        405, "method_not_allowed",
        request.method + " not allowed on " + path);
    response.SetHeader("Allow", allowed);
    return response;
  }

  switch (*route) {
    case kQuery:
      return HandleQuery(request);
    case kIngest:
      return HandleIngest(request);
    case kAdmin:
      if (!AdminAuthorized(request)) {
        auth_failures_->Increment();
        HttpResponse response = ErrorResponse(
            401, "unauthorized", "admin routes require a valid API key");
        response.SetHeader("WWW-Authenticate", "Bearer");
        return response;
      }
      return HandleAdmin(request, admin_action);
    case kStreamUtterance:
      return HandleStreamUtterance(request);
    case kStreamAlerts:
      return HandleStreamAlerts();
    case kHealthz:
      return HandleHealthz();
    case kMetrics:
      return HandleMetrics();
    default:
      break;
  }
  return ErrorResponse(500, "internal", "unroutable route");  // unreachable
}

std::string_view ExtractApiKey(const HttpRequest& request) {
  if (const std::string* auth = request.FindHeader("Authorization")) {
    std::string_view value = *auth;
    static constexpr std::string_view kBearer = "Bearer ";
    if (value.size() > kBearer.size() &&
        value.substr(0, kBearer.size()) == kBearer) {
      return value.substr(kBearer.size());
    }
    return {};
  }
  if (const std::string* key = request.FindHeader("X-Api-Key")) return *key;
  return {};
}

bool Gateway::AdminAuthorized(const HttpRequest& request) const {
  if (opts_.admin_api_key.empty()) return true;
  return ConstantTimeEquals(ExtractApiKey(request), opts_.admin_api_key);
}

HttpResponse Gateway::StatusResponse(const Status& status) {
  HttpResponse response =
      ErrorResponse(HttpStatusForCode(status.code()),
                    std::string(StatusCodeName(status.code())),
                    status.message());
  if (status.code() == StatusCode::kUnavailable) {
    // The shed message carries "retry after N ms"; the header speaks
    // seconds. Round up so clients never come back too early.
    const int64_t hint_ms = backend_->retry_after_hint_ms();
    const int64_t seconds = hint_ms <= 0 ? 1 : (hint_ms + 999) / 1000;
    response.SetHeader("Retry-After", std::to_string(seconds));
  }
  return response;
}

HttpResponse Gateway::HandleQuery(const HttpRequest& request) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) {
    return ErrorResponse(400, "bad_json", body.status().message());
  }
  Result<QueryRequest> query = QueryRequestFromJson(body.value());
  if (!query.ok()) {
    return ErrorResponse(400, "bad_query", query.status().message());
  }
  Result<JsonValue> report = backend_->ExecuteQuery(query.MoveValue());
  if (!report.ok()) {
    return StatusResponse(report.status());
  }
  return JsonResponse(200, DumpJson(report.value()));
}

HttpResponse Gateway::HandleIngest(const HttpRequest& request) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) {
    return ErrorResponse(400, "bad_json", body.status().message());
  }
  Result<std::vector<IngestItem>> items = IngestItemsFromJson(body.value());
  if (!items.ok()) {
    return ErrorResponse(400, "bad_batch", items.status().message());
  }
  Result<JsonValue> report = backend_->ExecuteIngest(items.MoveValue());
  if (!report.ok()) {
    return StatusResponse(report.status());
  }
  return JsonResponse(200, DumpJson(report.value()));
}

HttpResponse Gateway::HandleStreamUtterance(const HttpRequest& request) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) {
    return ErrorResponse(400, "bad_json", body.status().message());
  }
  Result<JsonValue> result = backend_->ExecuteStreamUtterance(body.value());
  if (!result.ok()) {
    return StatusResponse(result.status());
  }
  return JsonResponse(200, DumpJson(result.value()));
}

HttpResponse Gateway::HandleStreamAlerts() {
  AlertBus* bus = backend_->alert_bus();
  if (bus == nullptr) {
    return ErrorResponse(412, "FailedPrecondition",
                         "streaming is not enabled on this backend");
  }
  return SseResponse(std::make_shared<AlertSseStream>(bus->Subscribe()));
}

HttpResponse Gateway::HandleAdmin(const HttpRequest& request,
                                  const std::string& action) {
  JsonValue body = JsonValue::MakeObject();
  if (!request.body.empty()) {
    Result<JsonValue> parsed = ParseJson(request.body);
    if (!parsed.ok()) {
      return ErrorResponse(400, "bad_json", parsed.status().message());
    }
    body = parsed.MoveValue();
  }
  Result<JsonValue> reply = backend_->ExecuteAdmin(action, body);
  if (!reply.ok()) {
    return StatusResponse(reply.status());
  }
  return JsonResponse(200, DumpJson(reply.value()));
}

HttpResponse Gateway::HandleHealthz() {
  GatewayBackend::HealthSnapshot health = backend_->Healthz();
  return JsonResponse(health.http_status, DumpJson(health.body));
}

HttpResponse Gateway::HandleMetrics() {
  return TextResponse(200, backend_->MetricsText());
}

namespace {

std::string Uint64Hex(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

struct ExportPage {
  std::size_t cursor = 0;
  std::size_t limit = 0;
};

Result<ExportPage> ExportPageFromBody(const JsonValue& body) {
  ExportPage page;
  bool saw_limit = false;
  for (const JsonValue::Member& m : body.GetObject()) {
    if (m.key == "cursor") {
      if (!m.value.is_integer() || m.value.GetInt64() < 0) {
        return Status::InvalidArgument(
            "export \"cursor\" must be a non-negative integer");
      }
      page.cursor = static_cast<std::size_t>(m.value.GetInt64());
    } else if (m.key == "limit") {
      if (!m.value.is_integer() || m.value.GetInt64() <= 0) {
        return Status::InvalidArgument(
            "export \"limit\" must be a positive integer");
      }
      page.limit = static_cast<std::size_t>(m.value.GetInt64());
      saw_limit = true;
    } else {
      return Status::InvalidArgument("unknown export field \"" + m.key +
                                     "\"");
    }
  }
  if (!saw_limit) {
    return Status::InvalidArgument("chunked export needs a \"limit\" field");
  }
  return page;
}

Result<std::vector<std::string>> RoutesFromDropBody(const JsonValue& body) {
  if (!body.is_object()) {
    return Status::InvalidArgument("drop body must be a JSON object");
  }
  const JsonValue* routes = body.Find("routes");
  if (routes == nullptr || !routes->is_array()) {
    return Status::InvalidArgument("drop body needs a \"routes\" array");
  }
  if (body.GetObject().size() != 1) {
    return Status::InvalidArgument(
        "drop body has fields other than \"routes\"");
  }
  std::vector<std::string> out;
  out.reserve(routes->GetArray().size());
  for (std::size_t i = 0; i < routes->GetArray().size(); ++i) {
    const JsonValue& entry = routes->GetArray()[i];
    if (!entry.is_string()) {
      return Status::InvalidArgument("routes[" + std::to_string(i) +
                                     "]: expected a string");
    }
    out.push_back(entry.GetString());
  }
  return out;
}

}  // namespace

Result<JsonValue> EngineAdmin(BivocEngine* engine, const std::string& action,
                              const JsonValue& body) {
  if (action == "export") {
    if (!body.is_object()) {
      return Status::InvalidArgument("export body must be a JSON object");
    }
    if (body.GetObject().empty()) {
      // Legacy single-shot export: the whole shard in one reply.
      return ExportedDocsToJson(engine->ExportDocuments());
    }
    BIVOC_ASSIGN_OR_RETURN(ExportPage page, ExportPageFromBody(body));
    const BivocEngine::ExportChunk chunk =
        engine->ExportDocumentsChunk(page.cursor, page.limit);
    JsonValue reply = ExportedDocsToJson(chunk.docs);
    reply.Set("next", JsonValue(static_cast<uint64_t>(chunk.next)));
    reply.Set("total", JsonValue(static_cast<uint64_t>(chunk.total)));
    reply.Set("done", JsonValue(chunk.done));
    return reply;
  }
  if (action == "stage") {
    BIVOC_ASSIGN_OR_RETURN(std::vector<ExportedDoc> docs,
                           ExportedDocsFromJson(body));
    const std::size_t staged = docs.size();
    BIVOC_RETURN_NOT_OK(engine->StageDocuments(std::move(docs)));
    JsonValue reply = JsonValue::MakeObject();
    reply.Set("staged", JsonValue(static_cast<uint64_t>(staged)));
    return reply;
  }
  if (action == "apply") {
    BIVOC_ASSIGN_OR_RETURN(std::size_t applied, engine->ApplyStaged());
    JsonValue reply = JsonValue::MakeObject();
    reply.Set("applied", JsonValue(static_cast<uint64_t>(applied)));
    return reply;
  }
  if (action == "abort") {
    JsonValue reply = JsonValue::MakeObject();
    reply.Set("aborted",
              JsonValue(static_cast<uint64_t>(engine->AbortStaged())));
    return reply;
  }
  if (action == "drop") {
    BIVOC_ASSIGN_OR_RETURN(std::vector<std::string> routes,
                           RoutesFromDropBody(body));
    BIVOC_ASSIGN_OR_RETURN(std::size_t dropped,
                           engine->DropByRouteKeys(routes));
    JsonValue reply = JsonValue::MakeObject();
    reply.Set("dropped", JsonValue(static_cast<uint64_t>(dropped)));
    return reply;
  }
  if (action == "checksum") {
    const BivocEngine::ContentSummary summary = engine->ContentChecksum();
    JsonValue reply = JsonValue::MakeObject();
    reply.Set("docs", JsonValue(static_cast<uint64_t>(summary.num_documents)));
    // Hex string: the wrapping uint64 sum routinely exceeds int64 and
    // JSON numbers would lose it.
    reply.Set("checksum", JsonValue(Uint64Hex(summary.checksum)));
    return reply;
  }
  return Status::Unimplemented("no admin action \"" + action + "\"");
}

// ---------------------------------------------------------------------------
// BivocEngine gateway hooks. Defined here — not in bivoc.cc — so
// bivoc_core never depends on bivoc_net; any binary that calls
// StartGateway already links the gateway. The engine stores the
// gateway behind shared_ptr<void>, whose captured deleter makes
// destruction work without the complete type.

Result<uint16_t> BivocEngine::StartGateway(GatewayOptions options) {
  if (gateway_ptr_ != nullptr) {
    return Status::FailedPrecondition("gateway already running");
  }
  auto gateway = std::make_shared<Gateway>(this, std::move(options));
  BIVOC_RETURN_NOT_OK(gateway->Start());
  gateway_ptr_ = gateway.get();
  gateway_ = std::move(gateway);
  return gateway_ptr_->port();
}

Result<uint16_t> BivocEngine::StartGateway() {
  return StartGateway(GatewayOptions{});
}

void BivocEngine::StopGateway() {
  if (gateway_ptr_ == nullptr) return;
  gateway_ptr_->Stop();
  gateway_ptr_ = nullptr;
  gateway_.reset();
}

Gateway* BivocEngine::gateway() { return gateway_ptr_; }

}  // namespace bivoc
