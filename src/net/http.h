#ifndef BIVOC_NET_HTTP_H_
#define BIVOC_NET_HTTP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace bivoc {

// HTTP/1.1 message model and incremental parser (DESIGN.md §11). The
// parser is the trust boundary of the gateway: it is fed raw bytes
// from the socket and must stay correct and bounded under truncated,
// oversized, pipelined and actively malicious input. It never throws,
// never allocates proportionally to anything but the (limited) message
// size, and consumes input byte-exactly so pipelined messages are
// delimited correctly.

struct HttpHeader {
  std::string name;
  std::string value;
};

// Case-insensitive ASCII compare for header names.
bool HeaderNameEquals(std::string_view a, std::string_view b);

// Standard reason phrase for a status code ("OK", "Not Found", ...);
// "Unknown" for codes we never emit.
std::string_view HttpReasonPhrase(int status);

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // origin-form, e.g. "/v1/query?limit=5"
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::vector<HttpHeader> headers;
  std::string body;

  // First matching header value (case-insensitive name) or nullptr.
  const std::string* FindHeader(std::string_view name) const;
  // Target path without the query string ("/v1/query").
  std::string Path() const;
  // Connection persistence per RFC 9112: HTTP/1.1 defaults to
  // keep-alive unless "Connection: close"; HTTP/1.0 defaults to close
  // unless "Connection: keep-alive".
  bool KeepAlive() const;
};

// Pull-based body source for long-lived streaming responses (SSE).
// The server writes the response head with "Transfer-Encoding:
// chunked", then repeatedly calls Next(): each returned chunk goes on
// the wire immediately; kIdle lets the server interleave heartbeats
// and notice shutdown; kDone closes the stream (terminating chunk,
// then the connection). Implementations block inside Next for at most
// `wait_ms` — the server's drain depends on it.
class ResponseStream {
 public:
  enum class Poll { kChunk, kIdle, kDone };

  virtual ~ResponseStream() = default;

  // Waits up to `wait_ms` for the next chunk. On kChunk, `*out` is the
  // payload to write (must be non-empty — an empty chunk would
  // terminate the chunked body).
  virtual Poll Next(std::string* out, int64_t wait_ms) = 0;

  // Bytes the server writes as a chunk when the stream has been idle
  // for a heartbeat interval — keeps proxies and clients convinced the
  // connection is alive. Default is an SSE comment line.
  virtual std::string Heartbeat() const { return ": heartbeat\n\n"; }
};

struct HttpResponse {
  int status = 200;
  std::string reason;  // empty -> HttpReasonPhrase(status)
  std::vector<HttpHeader> headers;
  std::string body;
  // Non-null switches the server to streaming delivery: `body` (if
  // any) becomes the first chunk, then the stream is drained until
  // kDone or shutdown. Streaming responses always close the
  // connection. Ignored by Serialize().
  std::shared_ptr<ResponseStream> stream;

  const std::string* FindHeader(std::string_view name) const;
  // Replaces an existing header (case-insensitive) or appends.
  void SetHeader(std::string_view name, std::string_view value);

  // Full HTTP/1.1 wire form. Always emits Content-Length, and a
  // "Connection: close" header when `keep_alive` is false.
  std::string Serialize(bool keep_alive) const;

  // Head-only wire form for streaming delivery: no Content-Length,
  // "Transfer-Encoding: chunked" and "Connection: close" instead.
  std::string SerializeChunkedHead() const;
};

// Convenience constructors used by the gateway and tests.
HttpResponse JsonResponse(int status, std::string body);
HttpResponse TextResponse(int status, std::string body);
// {"error":{"code":...,"message":...}} with Content-Type set.
HttpResponse ErrorResponse(int status, std::string_view code,
                           std::string_view message);
// 200 "text/event-stream" response delivered through `stream`.
HttpResponse SseResponse(std::shared_ptr<ResponseStream> stream);
// One SSE frame: optional "id:"/"event:" lines plus a "data:" line per
// line of `data`, blank-line terminated.
std::string FormatSseEvent(std::string_view event, std::string_view data,
                           uint64_t id = 0);

struct HttpParserLimits {
  std::size_t max_start_line_bytes = 8 * 1024;
  // Start line + all header lines together.
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_headers = 100;
  std::size_t max_body_bytes = 8u << 20;
  // A chunk-size line ("1a2f;ext=1\r\n") longer than this is hostile.
  std::size_t max_chunk_line_bytes = 128;
};

// Incremental HTTP/1.x message parser. Feed() consumes as many bytes
// as belong to the current message and stops exactly at its end, so
// the caller's buffer position doubles as the start of the next
// pipelined message. Parses requests (server side) and responses
// (client side); handles Content-Length and chunked bodies, rejects
// smuggling-prone combinations (Content-Length together with
// Transfer-Encoding, unknown transfer codings, oversized anything).
class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };
  enum class State { kNeedMore, kComplete, kError };

  explicit HttpParser(Mode mode = Mode::kRequest,
                      HttpParserLimits limits = {});

  // Consumes from `data`, advancing `*consumed` (bytes used from the
  // front). Returns kComplete with possibly unconsumed trailing bytes
  // (the next pipelined message), kNeedMore when the message is still
  // incomplete, or kError (error()/http_status() describe it).
  State Feed(std::string_view data, std::size_t* consumed);

  // Client side: signals end-of-stream. A response without
  // Content-Length or chunked framing is delimited by connection
  // close; this completes it. Anything else mid-message is an error.
  State FinishEof();

  // Valid after kComplete.
  const HttpRequest& request() const { return request_; }
  HttpResponse& response() { return response_; }
  const HttpResponse& response() const { return response_; }

  // Valid after kError: what went wrong, and the HTTP status a server
  // should answer with (400/408/413/431/501/505).
  const Status& error() const { return error_; }
  int http_status() const { return http_status_; }

  // True once any byte of the current message has been consumed —
  // distinguishes an idle keep-alive connection from a slow-loris
  // half-request when a read deadline expires.
  bool started() const { return started_; }

  State state() const { return state_; }

  // Prepares for the next message on the same connection.
  void Reset();

 private:
  enum class Phase {
    kStartLine,
    kHeaders,
    kFixedBody,
    kChunkSize,
    kChunkData,
    kChunkDataEnd,
    kTrailers,
    kUntilClose,
    kDone,
  };

  State Error(int http_status, const std::string& message);
  Status ParseStartLine(std::string_view line);
  Status ParseHeaderLine(std::string_view line);
  // Decides body framing from the collected headers.
  Status BeginBody();

  Mode mode_;
  HttpParserLimits limits_;
  Phase phase_ = Phase::kStartLine;
  State state_ = State::kNeedMore;
  bool started_ = false;
  std::string line_;          // start line / header line accumulator
  std::size_t header_bytes_ = 0;
  std::size_t body_remaining_ = 0;
  HttpRequest request_;
  HttpResponse response_;
  Status error_;
  int http_status_ = 400;
};

}  // namespace bivoc

#endif  // BIVOC_NET_HTTP_H_
