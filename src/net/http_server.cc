#include "net/http_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "util/fault_injection.h"
#include "util/logging.h"

namespace bivoc {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Poll slice: deadlines are enforced by polling in short slices so a
// stop request is noticed promptly even under an idle connection.
constexpr int64_t kPollSliceMs = 50;

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerOptions options,
                       MetricsRegistry* metrics)
    : handler_(std::move(handler)), opts_(std::move(options)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  accepted_ = metrics_->GetCounter("net_connections_accepted_total");
  rejected_ = metrics_->GetCounter("net_connections_rejected_total");
  requests_ = metrics_->GetCounter("net_requests_total");
  parse_errors_ = metrics_->GetCounter("net_parse_errors_total");
  timeouts_ = metrics_->GetCounter("net_timeouts_total");
  io_errors_ = metrics_->GetCounter("net_io_errors_total");
  streams_ = metrics_->GetCounter("net_stream_responses_total");
  stream_chunks_ = metrics_->GetCounter("net_stream_chunks_total");
  active_ = metrics_->GetGauge("net_active_connections");
  if (opts_.num_workers == 0) opts_.num_workers = 1;
  if (opts_.max_connections == 0) opts_.max_connections = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  stopping_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable listen host: " + opts_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::IoError("bind " + opts_.host + ":" +
                                std::to_string(opts_.port) + ": " +
                                strerror(errno));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status st = Status::IoError(std::string("listen: ") + strerror(errno));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  running_.store(true, std::memory_order_release);
  listener_ = std::thread([this] { ListenLoop(); });
  workers_.reserve(opts_.num_workers);
  for (std::size_t i = 0; i < opts_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  BIVOC_LOG(Info) << "http server listening on " << opts_.host << ":"
                  << port_;
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  cv_.notify_all();
  if (listener_.joinable()) listener_.join();
  // Workers drain: each finishes its in-flight request (the connection
  // loop checks stopping_ between requests), then pops remaining
  // queued connections and rejects them.
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : pending_fds_) {
      RejectConnection(fd, 503, "server shutting down");
      CloseFd(fd);
      --live_connections_;
    }
    pending_fds_.clear();
    active_->Set(static_cast<int64_t>(live_connections_));
  }
  CloseFd(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void HttpServer::ListenLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(kPollSliceMs));
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    Status fault = FaultInjector::Global().MaybeFail(kFaultNetAccept);
    if (!fault.ok()) {
      io_errors_->Increment();
      CloseFd(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (live_connections_ < opts_.max_connections) {
        ++live_connections_;
        pending_fds_.push_back(fd);
        admitted = true;
        active_->Set(static_cast<int64_t>(live_connections_));
      }
    }
    if (admitted) {
      accepted_->Increment();
      cv_.notify_one();
    } else {
      rejected_->Increment();
      RejectConnection(fd, 503, "connection limit reached");
      CloseFd(fd);
    }
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return !pending_fds_.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (pending_fds_.empty()) return;  // stopping and drained
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    ServeConnection(fd);
    CloseFd(fd);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --live_connections_;
      active_->Set(static_cast<int64_t>(live_connections_));
    }
  }
}

void HttpServer::RejectConnection(int fd, int status,
                                  const std::string& message) {
  HttpResponse response = ErrorResponse(status, "Unavailable", message);
  if (status == 503) response.SetHeader("Retry-After", "1");
  const std::string wire = response.Serialize(/*keep_alive=*/false);
  // Single best-effort non-blocking write: a client that refuses to
  // read its rejection must not be able to wedge the listener.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
}

bool HttpServer::WriteAll(int fd, std::string_view data) {
  const int64_t deadline = NowMs() + opts_.write_timeout_ms;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) {
      timeouts_->Increment();
      return false;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(
        &pfd, 1, static_cast<int>(std::min(remaining, kPollSliceMs)));
    if (ready < 0 && errno != EINTR) {
      io_errors_->Increment();
      return false;
    }
    if (ready <= 0 || !(pfd.revents & POLLOUT)) continue;
    Status fault = FaultInjector::Global().MaybeFail(kFaultNetWrite);
    if (!fault.ok()) {
      io_errors_->Increment();
      return false;
    }
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      io_errors_->Increment();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void HttpServer::ServeConnection(int fd) {
  HttpParser parser(HttpParser::Mode::kRequest, opts_.parser_limits);
  std::string pending;  // unconsumed bytes (pipelined next request)
  std::size_t served = 0;
  char buf[8192];

  for (;;) {
    parser.Reset();
    // The read deadline starts from the first byte of *this* request;
    // until then the (longer) idle timeout governs.
    int64_t idle_deadline = NowMs() + opts_.idle_timeout_ms;
    int64_t read_deadline = 0;

    if (!pending.empty()) {
      std::size_t consumed = 0;
      parser.Feed(pending, &consumed);
      pending.erase(0, consumed);
      if (parser.started()) read_deadline = NowMs() + opts_.read_timeout_ms;
    }

    while (parser.state() == HttpParser::State::kNeedMore) {
      const bool stop = stopping_.load(std::memory_order_acquire);
      if (stop && !parser.started()) {
        // Drain: a connection whose request bytes already arrived is
        // effectively in flight and still gets served; a truly idle
        // one closes now.
        pollfd probe{fd, POLLIN, 0};
        if (::poll(&probe, 1, 0) <= 0 || !(probe.revents & POLLIN)) {
          return;
        }
      }
      const int64_t deadline =
          parser.started() ? read_deadline : idle_deadline;
      const int64_t remaining = deadline - NowMs();
      if (remaining <= 0) {
        timeouts_->Increment();
        if (parser.started()) {
          // Slow-loris: a half-sent request is answered (best effort)
          // and the connection is reaped.
          WriteAll(fd, ErrorResponse(408, "Timeout",
                                     "request not completed in time")
                           .Serialize(false));
        }
        return;
      }
      pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(
          &pfd, 1, static_cast<int>(std::min(remaining, kPollSliceMs)));
      if (ready < 0 && errno != EINTR) {
        io_errors_->Increment();
        return;
      }
      if (ready <= 0) continue;
      if (pfd.revents & (POLLERR | POLLNVAL)) return;
      if (!(pfd.revents & (POLLIN | POLLHUP))) continue;
      Status fault = FaultInjector::Global().MaybeFail(kFaultNetRead);
      if (!fault.ok()) {
        io_errors_->Increment();
        return;
      }
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return;  // peer closed
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        io_errors_->Increment();
        return;
      }
      if (!parser.started()) {
        read_deadline = NowMs() + opts_.read_timeout_ms;
      }
      std::size_t consumed = 0;
      std::string_view data(buf, static_cast<std::size_t>(n));
      parser.Feed(data, &consumed);
      pending.append(data.substr(consumed));
    }

    if (parser.state() == HttpParser::State::kError) {
      parse_errors_->Increment();
      WriteAll(fd, ErrorResponse(parser.http_status(), "BadRequest",
                                 parser.error().message())
                       .Serialize(false));
      return;
    }

    requests_->Increment();
    ++served;
    const HttpRequest& request = parser.request();
    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response = ErrorResponse(500, "Internal", e.what());
    } catch (...) {
      response = ErrorResponse(500, "Internal", "handler threw");
    }
    if (response.stream != nullptr) {
      // Long-lived streaming response: the connection is dedicated to
      // it and closes when it ends.
      ServeStream(fd, response);
      return;
    }
    const bool stop = stopping_.load(std::memory_order_acquire);
    const bool keep_alive = request.KeepAlive() && !stop &&
                            served < opts_.max_requests_per_connection;
    if (!WriteAll(fd, response.Serialize(keep_alive))) return;
    if (!keep_alive) return;
  }
}

void HttpServer::ServeStream(int fd, const HttpResponse& response) {
  streams_->Increment();
  auto chunk_wire = [](std::string_view payload) {
    char size_line[32];
    const int n = snprintf(size_line, sizeof(size_line), "%zx\r\n",
                           payload.size());
    std::string out(size_line, static_cast<std::size_t>(n));
    out += payload;
    out += "\r\n";
    return out;
  };

  std::string head = response.SerializeChunkedHead();
  if (!response.body.empty()) head += chunk_wire(response.body);
  if (!WriteAll(fd, head)) return;

  int64_t last_write = NowMs();
  bool peer_alive = true;
  while (peer_alive) {
    if (stopping_.load(std::memory_order_acquire)) break;
    // The producer blocks for at most a poll slice so shutdown and
    // peer-close are noticed promptly.
    std::string payload;
    ResponseStream::Poll verdict =
        response.stream->Next(&payload, kPollSliceMs);
    if (verdict == ResponseStream::Poll::kDone) break;
    if (verdict == ResponseStream::Poll::kChunk && !payload.empty()) {
      if (!WriteAll(fd, chunk_wire(payload))) return;
      stream_chunks_->Increment();
      last_write = NowMs();
      continue;
    }
    // Idle: detect a closed peer (SSE clients never send mid-stream;
    // readable + 0-byte recv means they hung up) and keep the
    // connection warm with heartbeats.
    pollfd probe{fd, POLLIN, 0};
    if (::poll(&probe, 1, 0) > 0 &&
        (probe.revents & (POLLIN | POLLHUP | POLLERR))) {
      char drain[256];
      const ssize_t n = ::recv(fd, drain, sizeof(drain), MSG_DONTWAIT);
      if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN &&
                     errno != EWOULDBLOCK)) {
        peer_alive = false;
        break;
      }
    }
    if (NowMs() - last_write >= opts_.stream_heartbeat_ms) {
      if (!WriteAll(fd, chunk_wire(response.stream->Heartbeat()))) return;
      last_write = NowMs();
    }
  }
  // Graceful drain: the terminating chunk tells the client the stream
  // ended on purpose (shutdown or producer kDone), not mid-event.
  if (peer_alive) WriteAll(fd, "0\r\n\r\n");
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.accepted = accepted_->Value();
  s.rejected_over_cap = rejected_->Value();
  s.requests = requests_->Value();
  s.parse_errors = parse_errors_->Value();
  s.timeouts = timeouts_->Value();
  s.io_errors = io_errors_->Value();
  s.active_connections = static_cast<std::size_t>(active_->Value());
  return s;
}

}  // namespace bivoc
