#ifndef BIVOC_NET_HTTP_SERVER_H_
#define BIVOC_NET_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/http.h"
#include "util/metrics.h"
#include "util/status.h"

namespace bivoc {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; port() reports the real one.
  uint16_t port = 0;
  std::size_t num_workers = 4;
  // Accepted connections alive at once (in-flight + queued). The
  // listener answers the overflow with a canned 503 and closes.
  std::size_t max_connections = 64;
  // A request, once its first byte arrives, must be complete within
  // this window — the slow-loris deadline.
  int64_t read_timeout_ms = 5000;
  // Serialized response must be fully written within this window.
  int64_t write_timeout_ms = 5000;
  // Keep-alive connections idle longer than this are closed.
  int64_t idle_timeout_ms = 15000;
  // Requests served on one connection before it is cycled.
  std::size_t max_requests_per_connection = 1000;
  // Streaming (SSE) responses: a heartbeat chunk is written whenever
  // the stream has produced nothing for this long. Read/idle deadlines
  // do not apply to an established stream — heartbeats plus the write
  // deadline per chunk bound a dead peer instead.
  int64_t stream_heartbeat_ms = 1000;
  HttpParserLimits parser_limits;
};

// Cumulative wire-level accounting (also exported as net_* metrics).
struct HttpServerStats {
  std::size_t accepted = 0;
  std::size_t rejected_over_cap = 0;
  std::size_t requests = 0;
  std::size_t parse_errors = 0;
  std::size_t timeouts = 0;        // read or write deadline expired
  std::size_t io_errors = 0;       // recv/send failures (incl. injected)
  std::size_t active_connections = 0;  // instantaneous
};

// A hardened HTTP/1.1 front end (DESIGN.md §11): one listener thread
// accepts connections into a bounded queue; a worker pool runs each
// connection's keep-alive loop — incremental parse under a read
// deadline, dispatch to the handler, deadline-bounded write. Hostile
// input is the parser's problem (bounded and strict); hostile *pacing*
// is handled here: slow-loris requests die at read_timeout_ms, unread
// responses at write_timeout_ms, idle connections at idle_timeout_ms,
// and the connection cap sheds the rest with a 503.
//
// Stop() drains gracefully: the listener closes first, idle keep-alive
// connections close at their next poll slice, and a request already in
// flight (bytes received or handler running) completes and gets its
// response before the connection closes. Stop() joins every thread.
//
// The fault points "net.accept", "net.read" and "net.write" fire at
// the corresponding syscall sites so wire-level failures are testable
// without real network trouble.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // With `metrics` == nullptr the server owns a private registry.
  explicit HttpServer(Handler handler, HttpServerOptions options = {},
                      MetricsRegistry* metrics = nullptr);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens and starts the listener + workers. Fails with
  // kIoError when the address cannot be bound.
  Status Start();

  // Graceful drain; idempotent. Safe to call from any thread (not
  // from a handler).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (after Start), host byte order.
  uint16_t port() const { return port_; }

  HttpServerStats stats() const;
  MetricsRegistry* metrics() { return metrics_; }
  const HttpServerOptions& options() const { return opts_; }

 private:
  void ListenLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  // Drains a streaming response onto the wire (chunked framing,
  // heartbeats, terminating chunk on stream end or server stop).
  void ServeStream(int fd, const HttpResponse& response);
  // Deadline-bounded full write; false on timeout/error.
  bool WriteAll(int fd, std::string_view data);
  // Best-effort canned response for connections we refuse to serve.
  void RejectConnection(int fd, int status, const std::string& message);

  Handler handler_;
  HttpServerOptions opts_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;

  Counter* accepted_;
  Counter* rejected_;
  Counter* requests_;
  Counter* parse_errors_;
  Counter* timeouts_;
  Counter* io_errors_;
  Counter* streams_;
  Counter* stream_chunks_;
  Gauge* active_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> pending_fds_;
  std::size_t live_connections_ = 0;  // queued + being served

  std::thread listener_;
  std::vector<std::thread> workers_;
};

}  // namespace bivoc

#endif  // BIVOC_NET_HTTP_SERVER_H_
