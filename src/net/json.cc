#include "net/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace bivoc {

JsonValue& JsonValue::Set(std::string_view key, JsonValue v) {
  for (Member& m : object_) {
    if (m.key == key) {
      m.value = std::move(v);
      return m.value;
    }
  }
  object_.push_back(Member{std::string(key), std::move(v)});
  return object_.back().value;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.key == key) return &m.value;
  }
  return nullptr;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      if (is_int_ && other.is_int_) return int_ == other.int_;
      return GetDouble() == other.GetDouble();
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

// ---------------------------------------------------------------------------
// Parser

class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& opts)
      : text_(text), opts_(opts) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    BIVOC_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  Status ParseValue(JsonValue* out, std::size_t depth) {
    if (depth > opts_.max_depth) {
      return Fail("nesting exceeds max_depth " +
                  std::to_string(opts_.max_depth));
    }
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        BIVOC_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue(nullptr), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, std::size_t depth) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      BIVOC_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Fail("expected ':' after key");
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      BIVOC_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      // Duplicate keys: last one wins (Set replaces), matching most
      // real-world decoders; hostile duplicates cannot smuggle state.
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::OK();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, std::size_t depth) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      BIVOC_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  // Validates one UTF-8 sequence starting at pos_ and appends it.
  // Rejects overlong encodings, surrogates and values past U+10FFFF.
  Status ConsumeUtf8(std::string* out) {
    const unsigned char first = static_cast<unsigned char>(text_[pos_]);
    std::size_t len;
    uint32_t cp;
    uint32_t min;
    if (first < 0x80) {
      out->push_back(static_cast<char>(first));
      ++pos_;
      return Status::OK();
    } else if ((first & 0xE0) == 0xC0) {
      len = 2;
      cp = first & 0x1F;
      min = 0x80;
    } else if ((first & 0xF0) == 0xE0) {
      len = 3;
      cp = first & 0x0F;
      min = 0x800;
    } else if ((first & 0xF8) == 0xF0) {
      len = 4;
      cp = first & 0x07;
      min = 0x10000;
    } else {
      return Fail("invalid UTF-8 lead byte");
    }
    if (pos_ + len > text_.size()) return Fail("truncated UTF-8 sequence");
    for (std::size_t i = 1; i < len; ++i) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_ + i]);
      if ((c & 0xC0) != 0x80) return Fail("invalid UTF-8 continuation byte");
      cp = (cp << 6) | (c & 0x3F);
    }
    if (cp < min) return Fail("overlong UTF-8 encoding");
    if (cp > 0x10FFFF) return Fail("UTF-8 code point out of range");
    if (cp >= 0xD800 && cp <= 0xDFFF) {
      return Fail("raw surrogate in UTF-8 string");
    }
    out->append(text_.substr(pos_, len));
    pos_ += len;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    for (;;) {
      if (AtEnd()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) return Fail("unterminated escape");
        const char esc = text_[pos_];
        ++pos_;
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp;
            BIVOC_RETURN_NOT_OK(ParseHex4(&cp));
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: a low surrogate escape must follow.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Fail("high surrogate without low surrogate");
              }
              pos_ += 2;
              uint32_t low;
              BIVOC_RETURN_NOT_OK(ParseHex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Fail("unpaired low surrogate");
            }
            AppendUtf8(cp, out);
            break;
          }
          default:
            return Fail("invalid escape character");
        }
        continue;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      BIVOC_RETURN_NOT_OK(ConsumeUtf8(out));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd()) return Fail("truncated number");
    // Integer part: "0" alone or a non-zero digit run (leading zeros
    // are a classic laxness that strict JSON forbids).
    if (Peek() == '0') {
      ++pos_;
    } else if (Peek() >= '1' && Peek() <= '9') {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    } else {
      return Fail("invalid number");
    }
    bool integral = true;
    if (!AtEnd() && Peek() == '.') {
      integral = false;
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digit required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digit required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      int64_t value = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                     value);
      if (ec == std::errc() && p == token.data() + token.size()) {
        *out = JsonValue(value);
        return Status::OK();
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0.0;
    auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || p != token.data() + token.size()) {
      return Fail("unparseable number");
    }
    if (!std::isfinite(value)) return Fail("number overflows double");
    *out = JsonValue(value);
    return Status::OK();
  }

  std::string_view text_;
  const JsonParseOptions& opts_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Writer

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

void NumberTo(const JsonValue& v, std::string* out) {
  if (v.is_integer()) {
    char buf[32];
    auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v.GetInt64());
    out->append(buf, p);
    return;
  }
  const double d = v.GetDouble();
  if (!std::isfinite(d)) {
    // JSON has no NaN/Inf; null is the least-wrong encoding.
    out->append("null");
    return;
  }
  char buf[40];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  out->append(buf, p);
}

void DumpTo(const JsonValue& v, int indent, int depth, std::string* out) {
  const bool pretty = indent > 0;
  auto newline = [&](int level) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      break;
    case JsonValue::Type::kBool:
      out->append(v.GetBool() ? "true" : "false");
      break;
    case JsonValue::Type::kNumber:
      NumberTo(v, out);
      break;
    case JsonValue::Type::kString:
      EscapeTo(v.GetString(), out);
      break;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.GetArray()) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        DumpTo(item, indent, depth + 1, out);
      }
      if (!first) newline(depth);
      out->push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.GetObject()) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        EscapeTo(key, out);
        out->push_back(':');
        if (pretty) out->push_back(' ');
        DumpTo(value, indent, depth + 1, out);
      }
      if (!first) newline(depth);
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view text, JsonParseOptions options) {
  if (options.max_bytes > 0 && text.size() > options.max_bytes) {
    return Status::InvalidArgument(
        "JSON document of " + std::to_string(text.size()) +
        " bytes exceeds limit " + std::to_string(options.max_bytes));
  }
  return Parser(text, options).Parse();
}

std::string DumpJson(const JsonValue& value) {
  std::string out;
  DumpTo(value, 0, 0, &out);
  return out;
}

std::string DumpJson(const JsonValue& value, int indent) {
  std::string out;
  DumpTo(value, indent, 0, &out);
  return out;
}

}  // namespace bivoc
