#include "net/http_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

namespace bivoc {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

HttpClient::HttpClient(std::string host, uint16_t port,
                       HttpClientOptions options)
    : host_(std::move(host)), port_(port), opts_(options) {}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status HttpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("unparseable host: " + host_);
  }
  // Non-blocking connect so the connect deadline is ours, not the
  // kernel's SYN-retransmit schedule (minutes against a black hole).
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    Status st = Status::IoError("connect " + host_ + ":" +
                                std::to_string(port_) + ": " +
                                strerror(errno));
    Close();
    return st;
  }
  const int64_t deadline = NowMs() + ConnectTimeoutMs();
  for (;;) {
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) {
      Close();
      return Status::DeadlineExceeded("connect " + host_ + ":" +
                                      std::to_string(port_) + ": timed out");
    }
    pollfd pfd{fd_, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0 && errno != EINTR) {
      Status st = Status::IoError(std::string("poll: ") + strerror(errno));
      Close();
      return st;
    }
    if (ready <= 0) continue;
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      Status st = Status::IoError("connect " + host_ + ":" +
                                  std::to_string(port_) + ": " +
                                  strerror(err != 0 ? err : errno));
      Close();
      return st;
    }
    break;
  }
  // Back to blocking mode: the request/response paths already pace
  // every recv/send with poll, and blocking sockets keep them simple.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status HttpClient::SendRaw(const std::string& bytes) {
  BIVOC_RETURN_NOT_OK(EnsureConnected());
  const int64_t deadline = NowMs() + opts_.timeout_ms;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) return Status::DeadlineExceeded("send timeout");
    pollfd pfd{fd_, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0 && errno != EINTR) {
      return Status::IoError(std::string("poll: ") + strerror(errno));
    }
    if (ready <= 0) continue;
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::IoError(std::string("send: ") + strerror(errno));
      Close();
      return st;
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<std::string> HttpClient::ReadUntilClose() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string out;
  const int64_t deadline = NowMs() + opts_.timeout_ms;
  char buf[8192];
  for (;;) {
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) return out;  // whatever arrived before timeout
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0 && errno != EINTR) {
      return Status::IoError(std::string("poll: ") + strerror(errno));
    }
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return out;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return out;
    }
    out.append(buf, static_cast<std::size_t>(n));
  }
}

Result<std::string> HttpClient::ReadSome(int64_t wait_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string out;
  char buf[8192];
  const int64_t deadline = NowMs() + wait_ms;
  for (;;) {
    const int64_t remaining = deadline - NowMs();
    pollfd pfd{fd_, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(remaining > 0 ? remaining : 0));
    if (ready < 0 && errno != EINTR) {
      return Status::IoError(std::string("poll: ") + strerror(errno));
    }
    if (ready <= 0) {
      if (remaining <= 0) return out;  // nothing arrived in the window
      continue;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();  // peer finished; out may hold its final bytes
      return out;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::IoError(std::string("recv: ") + strerror(errno));
    }
    out.append(buf, static_cast<std::size_t>(n));
    return out;  // one successful read per call keeps latency visible
  }
}

Result<HttpResponse> HttpClient::RoundTrip(const std::string& wire) {
  BIVOC_RETURN_NOT_OK(SendRaw(wire));
  HttpParser parser(HttpParser::Mode::kResponse, opts_.parser_limits);
  const int64_t deadline = NowMs() + ReadTimeoutMs();
  char buf[8192];
  while (parser.state() == HttpParser::State::kNeedMore) {
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) {
      Close();
      return Status::DeadlineExceeded("response timeout after " +
                                      std::to_string(ReadTimeoutMs()) +
                                      " ms");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0 && errno != EINTR) {
      Close();
      return Status::IoError(std::string("poll: ") + strerror(errno));
    }
    if (ready <= 0) continue;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      parser.FinishEof();
      Close();
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::IoError(std::string("recv: ") + strerror(errno));
    }
    std::size_t consumed = 0;
    parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)),
                &consumed);
    // Trailing unconsumed bytes would belong to a pipelined response
    // we never asked for; drop them with the connection.
  }
  if (parser.state() != HttpParser::State::kComplete) {
    Close();
    return Status::Corruption("unparseable response: " +
                              parser.error().message());
  }
  HttpResponse response = parser.response();
  const std::string* connection = response.FindHeader("Connection");
  if (connection != nullptr && HeaderNameEquals(*connection, "close")) {
    Close();
  }
  return response;
}

Result<HttpResponse> HttpClient::Request(
    const std::string& method, const std::string& target,
    const std::vector<HttpHeader>& headers, std::string body) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  for (const HttpHeader& h : headers) {
    wire += h.name + ": " + h.value + "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;

  const bool was_connected = connected();
  Result<HttpResponse> response = RoundTrip(wire);
  if (!response.ok() && was_connected) {
    // The kept-alive connection likely died under us (server idle
    // timeout, restart); one reconnect covers the benign cases.
    Close();
    return RoundTrip(wire);
  }
  return response;
}

Result<HttpResponse> HttpClient::Get(const std::string& target) {
  return Request("GET", target, {}, "");
}

Result<HttpResponse> HttpClient::Post(const std::string& target,
                                      std::string body,
                                      const std::string& content_type) {
  return Request("POST", target, {{"Content-Type", content_type}},
                 std::move(body));
}

}  // namespace bivoc
