#ifndef BIVOC_STREAM_INGESTOR_H_
#define BIVOC_STREAM_INGESTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.h"
#include "linking/multitype.h"
#include "mining/trend.h"
#include "stream/burst.h"
#include "stream/window.h"
#include "util/metrics.h"
#include "util/result.h"

namespace bivoc {

// --- streaming VoC ingest (DESIGN.md §15) ---------------------------
//
// The real-time counterpart of IngestBatch: utterances of still-open
// conversations are appended one at a time, cleaned/annotated/
// concept-extracted through the same VocPipeline stages as batch
// documents, counted into the SlidingWindowIndex (publishing a fresh
// window snapshot per append), and fed through the BurstDetector whose
// alerts fan out on the AlertBus to SSE subscribers. The conversation's
// central entity is re-identified incrementally: every utterance adds
// annotation evidence, and the link flips when a challenger's
// posterior beats the incumbent's by `relink_margin`. When the caller
// closes a conversation it is finalized into the *main* index as one
// call document carrying the incrementally-established link.

struct StreamOptions {
  SlidingWindowOptions window;
  BurstOptions burst;
  // Re-link when the best candidate differs from the incumbent entity
  // and its posterior (score mass among per-type bests) exceeds the
  // incumbent's current posterior by at least this much.
  double relink_margin = 0.10;
  std::size_t max_open_conversations = 4096;
  // Index closed conversations into the main ConceptIndex (and publish
  // it) so completed calls flow into batch analytics.
  bool finalize_to_main_index = true;
  // Queue capacity per SSE subscriber (see AlertBus).
  std::size_t alert_queue_capacity = 256;
  // Stamped onto every BurstAlert this ingestor emits ("" = none).
  std::string tenant_id;
};

struct UtteranceAppend {
  std::string conversation_id;
  std::string text;
  int64_t time_bucket = 0;
  // Marks this the conversation's final utterance; `text` may be empty
  // to close without new content.
  bool close = false;
};

struct AppendResult {
  std::size_t utterance_index = 0;  // 0-based within the conversation
  std::size_t concepts = 0;         // concept keys this utterance added
  bool linked = false;
  bool relinked = false;  // the central entity changed on this append
  std::string link_table;
  int64_t link_row = 0;
  double link_posterior = 0.0;
  std::size_t alerts_emitted = 0;
  // The utterance's bucket fell behind the window floor (still counts
  // toward the conversation, just not toward window analytics).
  bool window_dropped = false;
  uint64_t window_generation = 0;
  bool closed = false;
  // Main-index DocId of the finalized conversation document (valid
  // when closed && finalize_to_main_index).
  DocId main_doc = 0;
};

class StreamIngestor {
 public:
  // `pipeline` is required; `linker` may be null (no incremental
  // linking). Metrics registration is optional.
  StreamIngestor(VocPipeline* pipeline, MultiTypeLinker* linker,
                 StreamOptions options = {},
                 MetricsRegistry* metrics = nullptr);

  // Appends one utterance (creating the conversation on first sight),
  // runs window indexing + burst detection, publishes the window
  // snapshot, and finalizes the conversation when `close` is set.
  Result<AppendResult> Append(const UtteranceAppend& utterance);

  // Closes a conversation without new content.
  Result<AppendResult> Close(const std::string& conversation_id);

  // Latest published window snapshot (lock-free to read; never null).
  std::shared_ptr<const WindowSnapshot> Window() const {
    return window_.snapshot();
  }

  // Window-scoped trend: identical semantics and arithmetic to
  // RisingConcepts over a batch snapshot of the same utterances — the
  // shared TrendPointsFromCounts/TrendSlope path guarantees bit-for-bit
  // equal slopes.
  std::vector<TrendSummary> WindowTrend(const std::string& prefix,
                                        std::size_t limit,
                                        std::size_t min_count) const;

  AlertBus* alerts() { return &bus_; }
  const SlidingWindowIndex& window_index() const { return window_; }

  std::size_t open_conversations() const;
  const StreamOptions& options() const { return options_; }

 private:
  struct Conversation {
    std::size_t utterances = 0;
    std::vector<Annotation> annotations;  // accumulated evidence
    std::vector<std::string> texts;
    MultiTypeLinker::TypedMatch link;
    double posterior = 0.0;
    int64_t last_bucket = 0;
  };

  // Re-evaluates the conversation's central entity against the
  // accumulated evidence; fills the link fields of `out`.
  void Relink(Conversation* conv, AppendResult* out);
  Result<AppendResult> Finalize(const std::string& id, Conversation conv,
                                AppendResult out);

  VocPipeline* pipeline_;      // not owned
  MultiTypeLinker* linker_;    // not owned
  StreamOptions options_;

  mutable std::mutex mu_;  // conversations + detector (bucket order)
  std::unordered_map<std::string, Conversation> conversations_;
  SlidingWindowIndex window_;  // internally synchronized
  BurstDetector detector_;
  AlertBus bus_;

  Counter* utterances_total_ = nullptr;
  Counter* conversations_closed_total_ = nullptr;
  Counter* relinks_total_ = nullptr;
  Counter* alerts_total_ = nullptr;
  Counter* late_dropped_total_ = nullptr;
  Gauge* open_gauge_ = nullptr;
  Histogram* append_ms_ = nullptr;
  Histogram* window_publish_ms_ = nullptr;
};

}  // namespace bivoc

#endif  // BIVOC_STREAM_INGESTOR_H_
