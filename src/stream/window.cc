#include "stream/window.h"

#include <algorithm>

namespace bivoc {

const WindowSnapshot::Series* WindowSnapshot::Find(
    std::string_view key) const {
  auto it = std::lower_bound(
      series_.begin(), series_.end(), key,
      [](const Series& s, std::string_view k) { return s.key < k; });
  if (it == series_.end() || it->key != key) return nullptr;
  return &*it;
}

std::pair<std::size_t, std::size_t> WindowSnapshot::PrefixRange(
    std::string_view prefix) const {
  auto first = std::lower_bound(
      series_.begin(), series_.end(), prefix,
      [](const Series& s, std::string_view p) { return s.key < p; });
  auto last = first;
  while (last != series_.end() &&
         std::string_view(last->key).substr(0, prefix.size()) == prefix) {
    ++last;
  }
  return {static_cast<std::size_t>(first - series_.begin()),
          static_cast<std::size_t>(last - series_.begin())};
}

SlidingWindowIndex::SlidingWindowIndex(SlidingWindowOptions options)
    : options_(options) {
  if (options_.window_buckets == 0) options_.window_buckets = 1;
  auto empty = std::make_shared<WindowSnapshot>();
  empty->oldest_ = 0;
  empty->newest_ = -1;
  published_ = std::move(empty);
}

ClosedBucket SlidingWindowIndex::SummarizeLocked(const Slot& slot) const {
  ClosedBucket out;
  out.bucket = slot.bucket;
  out.total_docs = slot.total_docs;
  out.counts.assign(slot.counts.begin(), slot.counts.end());
  return out;
}

bool SlidingWindowIndex::AddUtterance(const std::vector<std::string>& keys,
                                      int64_t bucket,
                                      std::vector<ClosedBucket>* closed) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t span = static_cast<int64_t>(options_.window_buckets);
  if (ring_.empty()) {
    ring_.push_back(Slot{bucket, 0, {}});
  } else if (bucket > ring_.back().bucket) {
    // The stream advanced: the open bucket closes, and so does every
    // gap bucket it skipped over (their zero counts drive the burst
    // baseline through silence). Older slots already closed when the
    // stream first passed them. Gap emission is capped at the window
    // span — beyond that everything is evicted and the baselines have
    // decayed through a full window of zeros anyway.
    const int64_t prev_newest = ring_.back().bucket;
    if (closed != nullptr) {
      closed->push_back(SummarizeLocked(ring_.back()));
      int64_t first_gap = std::max(prev_newest + 1, bucket - span);
      for (int64_t b = first_gap; b < bucket; ++b) {
        closed->push_back(ClosedBucket{b, 0, {}});
      }
    }
    ring_.push_back(Slot{bucket, 0, {}});
    const int64_t floor = bucket - span + 1;
    while (!ring_.empty() && ring_.front().bucket < floor) ring_.pop_front();
    dirty_ = true;
  } else if (bucket <= ring_.back().bucket - span) {
    // Behind the floor even if the ring is sparse: drop, never rewind.
    ++late_dropped_;
    return false;
  }

  // Find or create the slot (late arrival within the window lands in
  // its own bucket; slots stay sorted).
  auto it = std::find_if(ring_.begin(), ring_.end(),
                         [&](const Slot& s) { return s.bucket == bucket; });
  if (it == ring_.end()) {
    it = std::upper_bound(
        ring_.begin(), ring_.end(), bucket,
        [](int64_t b, const Slot& s) { return b < s.bucket; });
    it = ring_.insert(it, Slot{bucket, 0, {}});
  }
  ++it->total_docs;
  for (const std::string& key : keys) ++it->counts[key];
  ++docs_added_;
  dirty_ = true;
  return true;
}

std::shared_ptr<const WindowSnapshot> SlidingWindowIndex::Publish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dirty_) return published_;

  auto next = std::make_shared<WindowSnapshot>();
  next->generation_ = next_generation_++;
  if (ring_.empty()) {
    next->oldest_ = 0;
    next->newest_ = -1;
  } else {
    next->newest_ = ring_.back().bucket;
    next->oldest_ =
        next->newest_ - static_cast<int64_t>(options_.window_buckets) + 1;
    // Every covered bucket appears in the totals, empty ones at zero:
    // the trend denominator has one point per bucket exactly like a
    // batch index that ingested the same utterances.
    std::map<std::string, WindowSnapshot::Series> merged;
    auto slot_it = ring_.begin();
    for (int64_t b = next->oldest_; b <= next->newest_; ++b) {
      std::size_t total = 0;
      if (slot_it != ring_.end() && slot_it->bucket == b) {
        total = slot_it->total_docs;
        for (const auto& [key, count] : slot_it->counts) {
          WindowSnapshot::Series& s = merged[key];
          s.total += count;
          s.buckets.emplace_back(b, count);
        }
        ++slot_it;
      }
      next->totals_.emplace_back(b, total);
      next->num_docs_ += total;
    }
    next->series_.reserve(merged.size());
    for (auto& [key, s] : merged) {
      s.key = key;
      next->series_.push_back(std::move(s));
    }
  }
  dirty_ = false;
  published_ = next;
  return published_;
}

std::shared_ptr<const WindowSnapshot> SlidingWindowIndex::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

std::size_t SlidingWindowIndex::late_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return late_dropped_;
}

std::size_t SlidingWindowIndex::num_documents_added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_added_;
}

}  // namespace bivoc
