#include "stream/burst.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace bivoc {

BurstDetector::BurstDetector(BurstOptions options) : options_(options) {
  options_.decay = std::min(std::max(options_.decay, 1e-6), 1.0);
}

void BurstDetector::Observe(Baseline* b, double n) {
  if (b->history == 0) {
    // Seed from the first sample: a concept that always runs at level
    // n has z = 0 from day one — stationary traffic cannot alert.
    b->mean = n;
    b->var = 0.0;
  } else {
    const double a = options_.decay;
    const double diff = n - b->mean;
    // Standard exponentially-weighted mean/variance pair.
    b->mean += a * diff;
    b->var = (1.0 - a) * (b->var + a * diff * diff);
  }
  ++b->history;
}

std::vector<BurstAlert> BurstDetector::OnBucketClosed(
    const ClosedBucket& closed) {
  std::vector<BurstAlert> alerts;
  ++buckets_seen_;

  for (const auto& [key, count] : closed.counts) {
    Baseline& b = baselines_[key];
    const double n = static_cast<double>(count);
    // Score against the baseline as it stood BEFORE this bucket — a
    // burst must not inflate its own reference level.
    const double z = (n - b.mean) / std::sqrt(b.var + 1.0);
    const bool fires = b.history >= options_.min_history_buckets &&
                       count >= options_.min_support &&
                       z >= options_.z_threshold;
    if (fires && !b.active) {
      // Rising edge: one alert per sustained burst, not one per tick.
      b.active = true;
      BurstAlert alert;
      alert.sequence = next_sequence_++;
      alert.concept_key = key;
      alert.bucket = closed.bucket;
      alert.count = count;
      alert.bucket_total = closed.total_docs;
      alert.baseline_mean = b.mean;
      alert.baseline_var = b.var;
      alert.z_score = z;
      alerts.push_back(std::move(alert));
    } else if (b.active && (z < options_.z_threshold / 2.0 ||
                            count < options_.min_support)) {
      // Hysteresis floor: the burst subsided; the next one re-alerts.
      b.active = false;
    }
    Observe(&b, n);
  }

  // Concepts silent this bucket decay toward zero and deactivate —
  // without this a once-bursting concept would stay suppressed (and a
  // stale mean would stay inflated) across quiet periods.
  for (auto& [key, b] : baselines_) {
    auto it = std::lower_bound(
        closed.counts.begin(), closed.counts.end(), key,
        [](const std::pair<std::string, std::size_t>& entry,
           const std::string& k) { return entry.first < k; });
    bool seen = it != closed.counts.end() && it->first == key;
    if (!seen) {
      Observe(&b, 0.0);
      b.active = false;
    }
  }
  return alerts;
}

BurstDetector::Baseline BurstDetector::BaselineOf(
    const std::string& key) const {
  auto it = baselines_.find(key);
  return it == baselines_.end() ? Baseline{} : it->second;
}

std::size_t BurstDetector::active_bursts() const {
  std::size_t n = 0;
  for (const auto& [key, b] : baselines_) {
    if (b.active) ++n;
  }
  return n;
}

bool AlertBus::Subscription::Poll(BurstAlert* out, int64_t wait_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty() && wait_ms > 0) {
    cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                 [this] { return !queue_.empty(); });
  }
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

std::size_t AlertBus::Subscription::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

AlertBus::AlertBus(std::size_t subscriber_capacity)
    : subscriber_capacity_(subscriber_capacity == 0 ? 1
                                                    : subscriber_capacity) {}

std::shared_ptr<AlertBus::Subscription> AlertBus::Subscribe() {
  auto sub = std::shared_ptr<Subscription>(
      new Subscription(subscriber_capacity_));
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_.push_back(sub);
  return sub;
}

void AlertBus::PublishAlert(const BurstAlert& alert) {
  std::lock_guard<std::mutex> lock(mu_);
  ++alerts_published_;
  std::size_t live = 0;
  for (auto& weak : subscribers_) {
    auto sub = weak.lock();
    if (sub == nullptr) continue;
    subscribers_[live++] = weak;
    std::lock_guard<std::mutex> sub_lock(sub->mu_);
    if (sub->queue_.size() >= sub->capacity_) {
      // Slow subscriber: shed ITS oldest alert; ingest never blocks.
      sub->queue_.pop_front();
      ++sub->dropped_;
    }
    sub->queue_.push_back(alert);
    sub->cv_.notify_one();
  }
  subscribers_.resize(live);
}

std::size_t AlertBus::num_subscribers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& weak : subscribers_) {
    if (!weak.expired()) ++n;
  }
  return n;
}

std::size_t AlertBus::alerts_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_published_;
}

}  // namespace bivoc
