#ifndef BIVOC_STREAM_WINDOW_H_
#define BIVOC_STREAM_WINDOW_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mining/index_snapshot.h"

namespace bivoc {

// --- sliding-window index ------------------------------------------
//
// The streaming counterpart of ConceptIndex: a ring of per-time-bucket
// concept-count deltas covering the most recent `window_buckets`
// buckets. Utterance-documents are counted into their bucket as they
// arrive; when the stream advances to a newer bucket the ring slides,
// evicting buckets that fall behind the floor. Unlike the main index
// it stores no postings — only (concept, bucket) -> doc counts — which
// is exactly what window-scoped trend queries and the burst detector
// consume, and what keeps per-utterance publishing cheap enough to run
// at call-center rates.
//
// Bucket-life vocabulary (see DESIGN.md §15):
//   * open    — the newest bucket; utterances land here (or in any
//               still-windowed older bucket, for late arrivals).
//   * closed  — the stream has advanced past it. Closing is the burst
//               detector's clock tick: a bucket is evaluated exactly
//               once, when it closes. Late arrivals still count it for
//               queries but never re-trigger detection.
//   * evicted — it fell behind `newest - window_buckets + 1` and left
//               the ring; late arrivals for it are dropped (counted in
//               late_dropped()).

// Summary of a bucket at the moment it closed, handed to the burst
// detector. Counts are sorted by concept key.
struct ClosedBucket {
  int64_t bucket = 0;
  std::size_t total_docs = 0;
  std::vector<std::pair<std::string, std::size_t>> counts;
};

// Immutable point-in-time view of the window, published copy-on-write
// like IndexSnapshot and read lock-free by query evaluation. Per-
// concept bucket series use IndexSnapshot::BucketCounts so window
// trends flow through the very same TrendPointsFromCounts arithmetic
// as batch trends — bit-for-bit, not just approximately.
class WindowSnapshot {
 public:
  struct Series {
    std::string key;
    std::size_t total = 0;                  // docs in window containing key
    IndexSnapshot::BucketCounts buckets;    // ascending by bucket
  };

  uint64_t generation() const { return generation_; }
  std::size_t num_documents() const { return num_docs_; }
  // Inclusive covered range; oldest > newest means the window is empty.
  int64_t oldest_bucket() const { return oldest_; }
  int64_t newest_bucket() const { return newest_; }

  // Per-bucket document totals, ascending (empty buckets included with
  // count 0 so trend denominators match a batch index that saw the
  // same documents).
  const IndexSnapshot::BucketCounts& bucket_totals() const { return totals_; }

  // All series, ascending by key (sorted vocabulary, so a category
  // prefix is a contiguous range — same contract as IndexSnapshot).
  const std::vector<Series>& series() const { return series_; }
  const Series* Find(std::string_view key) const;
  // [first, last) range of series_ whose key starts with `prefix`.
  std::pair<std::size_t, std::size_t> PrefixRange(
      std::string_view prefix) const;

 private:
  friend class SlidingWindowIndex;
  uint64_t generation_ = 0;
  std::size_t num_docs_ = 0;
  int64_t oldest_ = 0;
  int64_t newest_ = -1;
  IndexSnapshot::BucketCounts totals_;
  std::vector<Series> series_;
};

struct SlidingWindowOptions {
  // Ring capacity: how many consecutive time buckets stay queryable.
  std::size_t window_buckets = 8;
};

class SlidingWindowIndex {
 public:
  explicit SlidingWindowIndex(SlidingWindowOptions options = {});

  // Counts one utterance-document with (already deduplicated) concept
  // keys into `bucket`. A bucket beyond the newest advances the ring:
  // every bucket the stream moved past — including empty gap buckets,
  // which the burst baseline must see decay through — is appended to
  // `closed` in ascending order, and buckets behind the new floor are
  // evicted. Returns false iff the utterance's bucket already fell
  // behind the floor (late arrival; dropped and counted).
  bool AddUtterance(const std::vector<std::string>& keys, int64_t bucket,
                    std::vector<ClosedBucket>* closed);

  // Builds and publishes a fresh immutable snapshot if the window
  // changed since the last publish, else returns the current one.
  std::shared_ptr<const WindowSnapshot> Publish();
  // Last published snapshot (never null; empty snapshot before any
  // publish).
  std::shared_ptr<const WindowSnapshot> snapshot() const;

  std::size_t window_buckets() const { return options_.window_buckets; }
  std::size_t late_dropped() const;
  std::size_t num_documents_added() const;

 private:
  struct Slot {
    int64_t bucket = 0;
    std::size_t total_docs = 0;
    std::map<std::string, std::size_t> counts;  // ordered: cheap merge
  };

  ClosedBucket SummarizeLocked(const Slot& slot) const;

  SlidingWindowOptions options_;
  mutable std::mutex mu_;
  std::deque<Slot> ring_;  // ascending by bucket; back() is the open one
  bool dirty_ = false;
  uint64_t next_generation_ = 1;
  std::size_t docs_added_ = 0;
  std::size_t late_dropped_ = 0;
  std::shared_ptr<const WindowSnapshot> published_;
};

}  // namespace bivoc

#endif  // BIVOC_STREAM_WINDOW_H_
