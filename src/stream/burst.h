#ifndef BIVOC_STREAM_BURST_H_
#define BIVOC_STREAM_BURST_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream/window.h"

namespace bivoc {

// --- burst detection -----------------------------------------------
//
// Emerging-concept detection over the sliding window: each concept's
// per-bucket document count is compared against an exponentially-
// decayed historical baseline (EWMA mean + EW variance). The detector
// ticks once per *closed* bucket — the window hands it each bucket
// exactly once, when the stream advances past it — so a bucket is
// never evaluated twice and late arrivals never re-trigger.
//
// Alerting is rising-edge: a sustained burst produces ONE alert when
// the concept first crosses the threshold, then the concept stays
// "active" (suppressed) until it falls back below the hysteresis
// floor, after which a fresh burst can alert again.
//
// Property guarantees (tested):
//   * stationary traffic never alerts: the first observation seeds the
//     baseline (mean = n, var = 0), so a constant series has z = 0
//     forever;
//   * a k-fold step from a settled level m alerts on the very bucket
//     it lands in, provided (k-1)*m >= z_threshold * sqrt(var+1) and
//     k*m >= min_support.

struct BurstOptions {
  // Alert when (count - mean) / sqrt(var + 1) >= z_threshold. The +1
  // variance regularizer keeps cold concepts from alerting on noise
  // and avoids a zero divisor on a settled baseline.
  double z_threshold = 3.0;
  // Minimum documents mentioning the concept in the bucket.
  std::size_t min_support = 5;
  // EWMA weight of the newest closed bucket.
  double decay = 0.3;
  // Closed buckets a concept must have been tracked for before it may
  // alert (its very first appearance seeds the baseline instead).
  std::size_t min_history_buckets = 2;
};

struct BurstAlert {
  uint64_t sequence = 0;  // monotonic per detector
  // Owning tenant ("" = untenanted) — stamped by the StreamIngestor so
  // a shared alert consumer can attribute bursts without a per-tenant
  // subscription.
  std::string tenant;
  std::string concept_key;
  int64_t bucket = 0;            // the closed bucket that burst
  std::size_t count = 0;         // docs mentioning the concept in it
  std::size_t bucket_total = 0;  // all docs in the bucket
  double baseline_mean = 0.0;
  double baseline_var = 0.0;
  double z_score = 0.0;
};

class BurstDetector {
 public:
  explicit BurstDetector(BurstOptions options = {});

  // Evaluates one closed bucket; returns rising-edge alerts (sorted by
  // concept key). Also decays baselines of every tracked concept that
  // went silent this bucket. Not thread-safe: the StreamIngestor calls
  // it under its own lock, in bucket order.
  std::vector<BurstAlert> OnBucketClosed(const ClosedBucket& closed);

  struct Baseline {
    double mean = 0.0;
    double var = 0.0;
    std::size_t history = 0;
    bool active = false;  // currently in a burst (suppressed)
  };
  // Baseline of `key`, or a default-constructed one if untracked.
  Baseline BaselineOf(const std::string& key) const;
  std::size_t buckets_seen() const { return buckets_seen_; }
  std::size_t active_bursts() const;

 private:
  void Observe(Baseline* b, double n);

  BurstOptions options_;
  std::unordered_map<std::string, Baseline> baselines_;
  std::size_t buckets_seen_ = 0;
  uint64_t next_sequence_ = 1;
};

// --- alert fan-out --------------------------------------------------
//
// Bounded pub/sub between the ingest thread and SSE connections. Each
// subscriber owns an independent bounded queue: a slow SSE client
// drops its own oldest alerts (counted) without back-pressuring
// ingest or other subscribers.
class AlertBus {
 public:
  class Subscription {
   public:
    // Blocks up to wait_ms for the next alert. False on timeout.
    bool Poll(BurstAlert* out, int64_t wait_ms);
    // Alerts this subscriber lost to queue overflow.
    std::size_t dropped() const;

   private:
    friend class AlertBus;
    explicit Subscription(std::size_t capacity) : capacity_(capacity) {}
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<BurstAlert> queue_;
    std::size_t capacity_;
    std::size_t dropped_ = 0;
  };

  explicit AlertBus(std::size_t subscriber_capacity = 256);

  std::shared_ptr<Subscription> Subscribe();
  void PublishAlert(const BurstAlert& alert);
  std::size_t num_subscribers() const;
  std::size_t alerts_published() const;

 private:
  std::size_t subscriber_capacity_;
  mutable std::mutex mu_;
  std::vector<std::weak_ptr<Subscription>> subscribers_;
  std::size_t alerts_published_ = 0;
};

}  // namespace bivoc

#endif  // BIVOC_STREAM_BURST_H_
