#include "stream/ingestor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/bivoc.h"

namespace bivoc {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StreamIngestor::StreamIngestor(VocPipeline* pipeline, MultiTypeLinker* linker,
                               StreamOptions options, MetricsRegistry* metrics)
    : pipeline_(pipeline),
      linker_(linker),
      options_(options),
      window_(options.window),
      detector_(options.burst),
      bus_(options.alert_queue_capacity) {
  if (metrics != nullptr) {
    utterances_total_ = metrics->GetCounter("stream_utterances_total");
    conversations_closed_total_ =
        metrics->GetCounter("stream_conversations_closed_total");
    relinks_total_ = metrics->GetCounter("stream_relinks_total");
    alerts_total_ = metrics->GetCounter("stream_alerts_total");
    late_dropped_total_ = metrics->GetCounter("stream_late_dropped_total");
    open_gauge_ = metrics->GetGauge("stream_open_conversations");
    append_ms_ = metrics->GetHistogram("stream_append_ms");
    window_publish_ms_ = metrics->GetHistogram("stream_window_publish_ms");
  }
}

void StreamIngestor::Relink(Conversation* conv, AppendResult* out) {
  if (linker_ == nullptr || conv->annotations.empty()) return;
  std::vector<MultiTypeLinker::TypedMatch> ranked =
      linker_->RankByType(conv->annotations);
  const MultiTypeLinker::TypedMatch* best = nullptr;
  double mass = 0.0;
  for (const auto& match : ranked) {
    if (match.score > 0.0) mass += match.score;
    if (match.linked && (best == nullptr || match.score > best->score)) {
      best = &match;
    }
  }
  if (best == nullptr || mass <= 0.0) return;
  // Posterior of the winning candidate: its share of the score mass
  // across the per-type bests (the streaming stand-in for Eqn 3's
  // normalized central-entity confidence).
  const double posterior = best->score / mass;

  const bool same_entity = conv->link.linked &&
                           conv->link.table == best->table &&
                           conv->link.row == best->row;
  if (same_entity) {
    conv->link = *best;
    conv->posterior = posterior;
    return;
  }
  if (!conv->link.linked) {
    // First linkable evidence: adopt unconditionally.
    conv->link = *best;
    conv->posterior = posterior;
    return;
  }
  // The incumbent is compared at its CURRENT share of the score mass,
  // not the posterior stored when it was adopted: a stale high-water
  // mark (e.g. 1.0 from a bucket where only one type matched) would
  // make flips unreachable even as the challenger's evidence grows.
  double incumbent_share = 0.0;
  for (const auto& match : ranked) {
    if (match.table == conv->link.table && match.row == conv->link.row) {
      incumbent_share = match.score / mass;
      break;
    }
  }
  if (posterior >= incumbent_share + options_.relink_margin) {
    // The challenger's posterior shifted past the incumbent's by the
    // re-link margin: the conversation's central entity flips.
    conv->link = *best;
    conv->posterior = posterior;
    out->relinked = true;
    if (relinks_total_ != nullptr) relinks_total_->Increment();
  }
}

Result<AppendResult> StreamIngestor::Append(const UtteranceAppend& utterance) {
  const double t0 = NowMs();
  if (utterance.conversation_id.empty()) {
    return Status::InvalidArgument("conversation_id must not be empty");
  }
  if (utterance.text.empty() && !utterance.close) {
    return Status::InvalidArgument(
        "utterance text must not be empty unless closing");
  }

  // Pipeline stages run outside the ingestor lock — cleaning and
  // annotation are the per-utterance hot path and VocPipeline is
  // already safe to call concurrently.
  Document doc;
  if (!utterance.text.empty()) {
    auto processed = pipeline_->TryProcess(VocChannel::kCall, utterance.text,
                                           utterance.time_bucket);
    BIVOC_RETURN_NOT_OK(processed.status());
    doc = std::move(processed).value();
  }

  std::vector<std::string> keys;
  keys.reserve(doc.concepts.size());
  for (const Concept& c : doc.concepts) keys.push_back(c.Key());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  AppendResult out;
  std::vector<BurstAlert> alerts;
  Conversation finalize_conv;
  bool do_finalize = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conversations_.find(utterance.conversation_id);
    if (it == conversations_.end()) {
      if (conversations_.size() >= options_.max_open_conversations) {
        return Status::Unavailable("too many open conversations");
      }
      it = conversations_.emplace(utterance.conversation_id, Conversation{})
               .first;
    }
    Conversation& conv = it->second;
    out.utterance_index = conv.utterances;

    if (!utterance.text.empty()) {
      ++conv.utterances;
      conv.texts.push_back(utterance.text);
      conv.annotations.insert(conv.annotations.end(), doc.annotations.begin(),
                              doc.annotations.end());
      conv.last_bucket = utterance.time_bucket;
      out.concepts = keys.size();
      Relink(&conv, &out);
      out.linked = conv.link.linked;
      out.link_table = conv.link.table;
      out.link_row = conv.link.row;
      out.link_posterior = conv.posterior;

      // Window indexing + burst detection tick under the same lock so
      // closed buckets reach the detector exactly once, in order.
      std::vector<ClosedBucket> closed;
      out.window_dropped =
          !window_.AddUtterance(keys, utterance.time_bucket, &closed);
      if (out.window_dropped && late_dropped_total_ != nullptr) {
        late_dropped_total_->Increment();
      }
      for (const ClosedBucket& bucket : closed) {
        std::vector<BurstAlert> fired = detector_.OnBucketClosed(bucket);
        for (BurstAlert& alert : fired) alert.tenant = options_.tenant_id;
        alerts.insert(alerts.end(), fired.begin(), fired.end());
      }
    } else {
      out.linked = conv.link.linked;
      out.link_table = conv.link.table;
      out.link_row = conv.link.row;
      out.link_posterior = conv.posterior;
    }

    if (utterance.close) {
      finalize_conv = std::move(conv);
      conversations_.erase(it);
      do_finalize = true;
    }
    if (open_gauge_ != nullptr) {
      open_gauge_->Set(static_cast<int64_t>(conversations_.size()));
    }
  }

  // Fan-out and window publish happen outside the lock: subscribers
  // and snapshot readers never contend with the next append.
  for (const BurstAlert& alert : alerts) bus_.PublishAlert(alert);
  out.alerts_emitted = alerts.size();
  if (alerts_total_ != nullptr && !alerts.empty()) {
    alerts_total_->Increment(alerts.size());
  }

  const double p0 = NowMs();
  out.window_generation = window_.Publish()->generation();
  if (window_publish_ms_ != nullptr) window_publish_ms_->Observe(NowMs() - p0);

  if (utterances_total_ != nullptr && !utterance.text.empty()) {
    utterances_total_->Increment();
  }

  if (do_finalize) {
    return Finalize(utterance.conversation_id, std::move(finalize_conv),
                    std::move(out));
  }
  if (append_ms_ != nullptr) append_ms_->Observe(NowMs() - t0);
  return out;
}

Result<AppendResult> StreamIngestor::Close(const std::string& conversation_id) {
  UtteranceAppend closing;
  closing.conversation_id = conversation_id;
  closing.close = true;
  return Append(closing);
}

Result<AppendResult> StreamIngestor::Finalize(const std::string& /*id*/,
                                              Conversation conv,
                                              AppendResult out) {
  out.closed = true;
  if (conversations_closed_total_ != nullptr) {
    conversations_closed_total_->Increment();
  }
  if (!options_.finalize_to_main_index || conv.texts.empty()) return out;

  // One call document for the whole conversation, re-processed from the
  // joined transcript so concept extraction sees cross-utterance
  // phrases, carrying the incrementally-established link (Identify is
  // NOT re-run — streaming already converged on the central entity).
  std::string joined;
  for (const std::string& text : conv.texts) {
    if (!joined.empty()) joined += "\n";
    joined += text;
  }
  auto processed =
      pipeline_->TryProcess(VocChannel::kCall, joined, conv.last_bucket);
  BIVOC_RETURN_NOT_OK(processed.status());
  Document doc = std::move(processed).value();
  doc.link = conv.link;
  auto indexed = pipeline_->TryIndexDocument(doc, {});
  BIVOC_RETURN_NOT_OK(indexed.status());
  out.main_doc = indexed.value();
  pipeline_->PublishIndex();
  return out;
}

std::vector<TrendSummary> StreamIngestor::WindowTrend(
    const std::string& prefix, std::size_t limit,
    std::size_t min_count) const {
  std::shared_ptr<const WindowSnapshot> snapshot = window_.snapshot();
  std::vector<TrendSummary> out;
  const IndexSnapshot::BucketCounts& totals = snapshot->bucket_totals();
  auto [first, last] = snapshot->PrefixRange(prefix);
  for (std::size_t i = first; i < last; ++i) {
    const WindowSnapshot::Series& s = snapshot->series()[i];
    if (s.total < min_count) continue;
    TrendSummary summary;
    summary.key = s.key;
    summary.total_count = s.total;
    summary.slope = TrendSlope(TrendPointsFromCounts(totals, s.buckets));
    out.push_back(std::move(summary));
  }
  // Same ordering contract as RisingConcepts: slope desc, key asc.
  std::sort(out.begin(), out.end(),
            [](const TrendSummary& a, const TrendSummary& b) {
              if (a.slope != b.slope) return a.slope > b.slope;
              return a.key < b.key;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::size_t StreamIngestor::open_conversations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conversations_.size();
}

// ---------------------------------------------------------------------------
// BivocEngine streaming hooks. Defined here — not in bivoc.cc — so
// bivoc_core never depends on bivoc_stream; any binary that calls
// EnableStreaming already links the stream library. Mirrors the
// StartGateway type-erasure pattern in net/gateway.cc.

Status BivocEngine::EnableStreaming(StreamOptions options) {
  if (stream_ptr_ != nullptr) {
    return Status::FailedPrecondition("streaming already enabled");
  }
  auto stream = std::make_shared<StreamIngestor>(&pipeline_, linker_.get(),
                                                 options, &metrics_);
  stream_ptr_ = stream.get();
  stream_ = std::move(stream);
  return Status::OK();
}

Status BivocEngine::EnableStreaming() { return EnableStreaming(StreamOptions{}); }

StreamIngestor* BivocEngine::stream() { return stream_ptr_; }

}  // namespace bivoc
