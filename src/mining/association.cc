#include "mining/association.h"

#include <algorithm>

#include "mining/stats.h"

namespace bivoc {

namespace {
AssociationCell MakeCell(const ConceptIndex& index, const std::string& row,
                         const std::string& col) {
  AssociationCell cell;
  cell.row_key = row;
  cell.col_key = col;
  cell.n = index.num_documents();
  cell.n_row = index.Count(row);
  cell.n_col = index.Count(col);
  cell.n_cell = index.CountBoth(row, col);
  cell.point_lift = PointLift(cell.n_cell, cell.n_row, cell.n_col, cell.n);
  cell.lower_lift =
      LowerBoundLift(cell.n_cell, cell.n_row, cell.n_col, cell.n);
  cell.row_share = cell.n_row > 0 ? static_cast<double>(cell.n_cell) /
                                        static_cast<double>(cell.n_row)
                                  : 0.0;
  return cell;
}
}  // namespace

AssociationTable TwoDimensionalAssociation(
    const ConceptIndex& index, const std::vector<std::string>& row_keys,
    const std::vector<std::string>& col_keys) {
  AssociationTable table;
  table.row_keys = row_keys;
  table.col_keys = col_keys;
  table.cells.reserve(row_keys.size() * col_keys.size());
  for (const auto& r : row_keys) {
    for (const auto& c : col_keys) {
      table.cells.push_back(MakeCell(index, r, c));
    }
  }
  return table;
}

std::vector<AssociationCell> TopAssociations(const ConceptIndex& index,
                                             const std::string& row_prefix,
                                             const std::string& col_prefix,
                                             std::size_t limit,
                                             std::size_t min_cell_count) {
  std::vector<AssociationCell> out;
  auto rows = index.Keys(row_prefix);
  auto cols = index.Keys(col_prefix);
  for (const auto& r : rows) {
    for (const auto& c : cols) {
      if (r == c) continue;
      AssociationCell cell = MakeCell(index, r, c);
      if (cell.n_cell < min_cell_count) continue;
      out.push_back(std::move(cell));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AssociationCell& a, const AssociationCell& b) {
              if (a.lower_lift != b.lower_lift) {
                return a.lower_lift > b.lower_lift;
              }
              if (a.n_cell != b.n_cell) return a.n_cell > b.n_cell;
              return a.row_key + a.col_key < b.row_key + b.col_key;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace bivoc
