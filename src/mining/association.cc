#include "mining/association.h"

#include <algorithm>

#include "mining/stats.h"

namespace bivoc {

namespace {
AssociationCell MakeCellIds(const IndexSnapshot& snapshot, ConceptId row,
                            ConceptId col, std::string row_key,
                            std::string col_key) {
  AssociationCell cell;
  cell.row_key = std::move(row_key);
  cell.col_key = std::move(col_key);
  cell.n = snapshot.num_documents();
  cell.n_row = snapshot.CountId(row);
  cell.n_col = snapshot.CountId(col);
  cell.n_cell = snapshot.CountBothIds(row, col);
  cell.point_lift = PointLift(cell.n_cell, cell.n_row, cell.n_col, cell.n);
  cell.lower_lift =
      LowerBoundLift(cell.n_cell, cell.n_row, cell.n_col, cell.n);
  cell.row_share = cell.n_row > 0 ? static_cast<double>(cell.n_cell) /
                                        static_cast<double>(cell.n_row)
                                  : 0.0;
  return cell;
}
}  // namespace

AssociationTable TwoDimensionalAssociation(
    const IndexSnapshot& snapshot, const std::vector<std::string>& row_keys,
    const std::vector<std::string>& col_keys) {
  AssociationTable table;
  table.row_keys = row_keys;
  table.col_keys = col_keys;
  table.cells.reserve(row_keys.size() * col_keys.size());
  // Resolve each key once; the cell loop then runs purely on ids.
  std::vector<ConceptId> row_ids, col_ids;
  row_ids.reserve(row_keys.size());
  col_ids.reserve(col_keys.size());
  for (const auto& r : row_keys) row_ids.push_back(snapshot.Resolve(r));
  for (const auto& c : col_keys) col_ids.push_back(snapshot.Resolve(c));
  for (std::size_t r = 0; r < row_keys.size(); ++r) {
    for (std::size_t c = 0; c < col_keys.size(); ++c) {
      table.cells.push_back(MakeCellIds(snapshot, row_ids[r], col_ids[c],
                                        row_keys[r], col_keys[c]));
    }
  }
  return table;
}

std::vector<AssociationCell> TopAssociations(const IndexSnapshot& snapshot,
                                             const std::string& row_prefix,
                                             const std::string& col_prefix,
                                             std::size_t limit,
                                             std::size_t min_cell_count) {
  std::vector<AssociationCell> out;
  auto rows = snapshot.IdsWithPrefix(row_prefix);
  auto cols = snapshot.IdsWithPrefix(col_prefix);
  for (ConceptId r : rows) {
    for (ConceptId c : cols) {
      if (r == c) continue;
      // Cheap id-based count first; only build the full cell (with its
      // string keys) for pairs that clear the support floor.
      if (snapshot.CountBothIds(r, c) < min_cell_count) continue;
      out.push_back(MakeCellIds(snapshot, r, c, std::string(snapshot.KeyOf(r)),
                                std::string(snapshot.KeyOf(c))));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AssociationCell& a, const AssociationCell& b) {
              if (a.lower_lift != b.lower_lift) {
                return a.lower_lift > b.lower_lift;
              }
              if (a.n_cell != b.n_cell) return a.n_cell > b.n_cell;
              return a.row_key + a.col_key < b.row_key + b.col_key;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace bivoc
