#include "mining/report.h"

#include <algorithm>

#include "util/string_util.h"

namespace bivoc {

std::string RenderGrid(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return "";
  std::size_t cols = 0;
  for (const auto& row : rows) cols = std::max(cols, row.size());
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto rule = [&] {
    out += '+';
    for (std::size_t c = 0; c < cols; ++c) {
      out += std::string(widths[c] + 2, '-');
      out += '+';
    }
    out += '\n';
  };
  rule();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out += '|';
    for (std::size_t c = 0; c < cols; ++c) {
      std::string cell = c < rows[r].size() ? rows[r][c] : "";
      out += ' ';
      out += cell;
      out += std::string(widths[c] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
    if (r == 0) rule();
  }
  rule();
  return out;
}

std::string RenderAssociationTable(const AssociationTable& table,
                                   const std::string& metric) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {""};
  header.insert(header.end(), table.col_keys.begin(), table.col_keys.end());
  rows.push_back(header);
  for (std::size_t r = 0; r < table.row_keys.size(); ++r) {
    std::vector<std::string> row = {table.row_keys[r]};
    for (std::size_t c = 0; c < table.col_keys.size(); ++c) {
      const AssociationCell& cell = table.cell(r, c);
      if (metric == "point_lift") {
        row.push_back(FormatDouble(cell.point_lift, 2));
      } else if (metric == "lower_lift") {
        row.push_back(FormatDouble(cell.lower_lift, 2));
      } else if (metric == "row_share") {
        row.push_back(FormatDouble(cell.row_share * 100.0, 0) + "%");
      } else {
        row.push_back(std::to_string(cell.n_cell));
      }
    }
    rows.push_back(std::move(row));
  }
  return RenderGrid(rows);
}

std::string RenderConditionalTable(const AssociationTable& table) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"", "n"};
  header.insert(header.end(), table.col_keys.begin(), table.col_keys.end());
  rows.push_back(header);
  for (std::size_t r = 0; r < table.row_keys.size(); ++r) {
    std::vector<std::string> row = {table.row_keys[r]};
    std::size_t n_row = table.col_keys.empty() ? 0 : table.cell(r, 0).n_row;
    row.push_back(std::to_string(n_row));
    for (std::size_t c = 0; c < table.col_keys.size(); ++c) {
      row.push_back(
          FormatDouble(table.cell(r, c).row_share * 100.0, 0) + "%");
    }
    rows.push_back(std::move(row));
  }
  return RenderGrid(rows);
}

std::string RenderRelevancy(const std::vector<RelevancyItem>& items) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"concept", "subset", "corpus", "rel. freq"});
  for (const auto& item : items) {
    rows.push_back({item.key, std::to_string(item.subset_count),
                    std::to_string(item.corpus_count),
                    FormatDouble(item.relative, 2) + "x"});
  }
  return RenderGrid(rows);
}

std::string RenderDrillDown(const IndexSnapshot& snapshot,
                            const std::vector<DocId>& docs,
                            std::size_t limit) {
  std::string out;
  std::size_t shown = 0;
  for (DocId d : docs) {
    if (shown >= limit) {
      out += "... (" + std::to_string(docs.size() - shown) + " more)\n";
      break;
    }
    out += "doc " + std::to_string(d) + ": " +
           Join(snapshot.ConceptsOf(d), ", ") + "\n";
    ++shown;
  }
  return out;
}

}  // namespace bivoc
