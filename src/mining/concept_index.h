#ifndef BIVOC_MINING_CONCEPT_INDEX_H_
#define BIVOC_MINING_CONCEPT_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace bivoc {

using DocId = std::size_t;
constexpr int64_t kNoTimeBucket = INT64_MIN;

// Inverted index from concept keys to documents — the paper's §IV-D
// "the dataset is indexed based on the annotations (semantic
// classifications); this allows quick reporting to be done on datasets
// containing even millions of documents."
//
// Structured dimensions participate as concepts too: the pipeline
// registers e.g. "outcome/reservation" or "agent/a042" alongside
// unstructured concepts, which is precisely how BIVoC associates
// concepts across the structured/unstructured boundary.
class ConceptIndex {
 public:
  ConceptIndex() = default;

  // Adds a document with its (deduplicated) concept keys; `time_bucket`
  // is an arbitrary period id (e.g. day number) for trend analysis.
  DocId AddDocument(const std::vector<std::string>& concept_keys,
                    int64_t time_bucket = kNoTimeBucket);

  std::size_t num_documents() const { return doc_concepts_.size(); }
  std::size_t num_concepts() const { return postings_.size(); }

  // Document count containing the key.
  std::size_t Count(const std::string& key) const;

  // Document count containing both keys (sorted-postings intersection).
  std::size_t CountBoth(const std::string& a, const std::string& b) const;

  // Sorted posting list ({} if unknown).
  const std::vector<DocId>& Postings(const std::string& key) const;

  // Documents containing both keys (the drill-down of Fig. 4).
  std::vector<DocId> DocsWithBoth(const std::string& a,
                                  const std::string& b) const;

  const std::vector<std::string>& ConceptsOf(DocId doc) const;
  int64_t TimeBucketOf(DocId doc) const;

  // All keys, sorted; optionally only those with a given category
  // prefix ("value selling/").
  std::vector<std::string> Keys(const std::string& prefix = "") const;

 private:
  std::unordered_map<std::string, std::vector<DocId>> postings_;
  std::vector<std::vector<std::string>> doc_concepts_;
  std::vector<int64_t> doc_time_;
  std::vector<DocId> empty_;
  std::vector<std::string> empty_concepts_;
};

}  // namespace bivoc

#endif  // BIVOC_MINING_CONCEPT_INDEX_H_
