#ifndef BIVOC_MINING_CONCEPT_INDEX_H_
#define BIVOC_MINING_CONCEPT_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mining/concept_interner.h"
#include "mining/index_snapshot.h"

namespace bivoc {

// Inverted index from concept keys to documents — the paper's §IV-D
// "the dataset is indexed based on the annotations (semantic
// classifications); this allows quick reporting to be done on datasets
// containing even millions of documents."
//
// Structured dimensions participate as concepts too: the pipeline
// registers e.g. "outcome/reservation" or "agent/a042" alongside
// unstructured concepts, which is precisely how BIVoC associates
// concepts across the structured/unstructured boundary.
//
// This class is the *write* side only. Concurrent AddDocument calls
// intern their keys to dense ConceptIds and append (concept, doc)
// deltas into shards striped by id — writers touching different
// shards never contend, so IngestService workers index in parallel.
// Readers never see this mutable state: Publish() drains the deltas
// into an immutable IndexSnapshot (copy-on-write against the previous
// one) and queries go through that. Reads are lock-free and stay
// valid for as long as the caller holds the snapshot pointer.
//
// Publish() also maintains the snapshot's read aggregates (DESIGN.md
// §13): compressed posting lists extend block-by-block, per-bucket
// counts merge incrementally, and each touched concept's top-k
// co-occurrence table is recut from a write-side accumulator that
// keeps *full* exact pair counts — truncation never loses a count, it
// only decides which pairs answer from the table vs. an intersection.
class ConceptIndex {
 public:
  // `co_topk` caps each concept's published co-occurrence table. Small
  // values trade snapshot memory for more intersection fallbacks on
  // rare pairs; counts stay exact either way.
  explicit ConceptIndex(std::size_t num_shards = kDefaultShards,
                        std::size_t co_topk = kDefaultCoTopK);
  ConceptIndex(const ConceptIndex&) = delete;
  ConceptIndex& operator=(const ConceptIndex&) = delete;

  // Adds a document with its concept keys (deduplicated here);
  // `time_bucket` is an arbitrary period id (e.g. day number) for
  // trend analysis, `route_key` the cluster routing key the document
  // was ingested under ({} outside a cluster). Thread-safe; doc ids
  // are dense and assigned in admission order. The document becomes
  // visible to readers at the next Publish().
  DocId AddDocument(const std::vector<std::string>& concept_keys,
                    int64_t time_bucket = kNoTimeBucket,
                    std::string route_key = {});

  // Drops every document and concept, installing a fresh empty
  // snapshot whose generation still exceeds all previously published
  // ones (so (fingerprint, generation) cache keys never alias across
  // the reset). Serializes against in-flight AddDocument/Publish;
  // snapshots already handed out stay valid. Used by rebalancing to
  // rebuild a shard minus its moved documents.
  void Reset();

  // Merges all pending deltas into a new immutable snapshot, makes it
  // the one snapshot()/SnapshotNow() hand out, and returns it.
  // Serializes against in-flight AddDocument calls (they finish
  // first); concurrent readers are never blocked. Const because
  // publication doesn't change the logical index contents.
  std::shared_ptr<const IndexSnapshot> Publish() const;

  // Snapshot covering every AddDocument that returned so far:
  // publishes first when deltas are pending, otherwise just hands out
  // the current snapshot.
  std::shared_ptr<const IndexSnapshot> SnapshotNow() const;

  // The most recently published snapshot — lock-free, wait-free; may
  // lag AddDocument calls made since the last Publish().
  std::shared_ptr<const IndexSnapshot> snapshot() const {
    return published_.Load();
  }

  // Documents admitted (including ones not yet published).
  std::size_t num_documents() const {
    return num_docs_.load(std::memory_order_acquire);
  }
  // Distinct concept keys ever interned.
  std::size_t num_concepts() const { return interner_->size(); }

  static constexpr std::size_t kDefaultShards = 16;
  static constexpr std::size_t kDefaultCoTopK = 1024;

 private:
  struct Shard {
    std::mutex mu;
    std::vector<std::pair<ConceptId, DocId>> delta;  // admission order
  };

  const std::size_t num_shards_;
  const std::size_t co_topk_;
  std::shared_ptr<ConceptInterner> interner_;

  // Writer protocol: AddDocument holds add_mu_ shared for its whole
  // run; Publish holds it exclusive while draining, so a drain never
  // observes a half-added document and every drained doc id is below
  // any id assigned afterwards (which keeps per-concept postings
  // sorted by pure appending).
  mutable std::shared_mutex add_mu_;

  // Guards doc id assignment together with the pending push so
  // pending_concepts_[id - published-doc-count] is always this doc.
  mutable std::mutex doc_mu_;
  mutable std::vector<std::vector<ConceptId>> pending_concepts_;
  mutable std::vector<int64_t> pending_times_;
  mutable std::vector<std::string> pending_routes_;

  mutable std::vector<Shard> shards_;

  // Full exact co-occurrence counts, grown at Publish() from pending
  // docs (only under the exclusive lock — AddDocument never touches
  // it). co_counts_[a][b] == number of published docs containing both.
  // The source of truth the per-concept top-k snapshot tables are cut
  // from; keeping it complete is what lets truncated tables stay
  // exact across publishes (an evicted pair's count is never lost).
  mutable std::unordered_map<ConceptId,
                             std::unordered_map<ConceptId, std::size_t>>
      co_counts_;

  // Atomic holder for the published snapshot. libstdc++'s
  // std::atomic<shared_ptr> synchronizes through a spin bit packed
  // into the control-block pointer, which ThreadSanitizer cannot see
  // through (the plain _M_ptr swap under that spin bit is reported as
  // a race even though the protocol is standard-correct). Under TSan
  // we route through the atomic_load/atomic_store free functions,
  // whose mutex pool TSan models precisely; everywhere else the
  // accessor stays lock-free.
  class PublishedCell {
   public:
    std::shared_ptr<const IndexSnapshot> Load() const {
#if defined(__SANITIZE_THREAD__)
      return std::atomic_load_explicit(&ptr_, std::memory_order_acquire);
#else
      return ptr_.load(std::memory_order_acquire);
#endif
    }
    void Store(std::shared_ptr<const IndexSnapshot> snap) {
#if defined(__SANITIZE_THREAD__)
      std::atomic_store_explicit(&ptr_, std::move(snap),
                                 std::memory_order_release);
#else
      ptr_.store(std::move(snap), std::memory_order_release);
#endif
    }

   private:
#if defined(__SANITIZE_THREAD__)
    std::shared_ptr<const IndexSnapshot> ptr_;
#else
    std::atomic<std::shared_ptr<const IndexSnapshot>> ptr_;
#endif
  };

  mutable PublishedCell published_;
  std::atomic<std::size_t> num_docs_{0};
  // Docs admitted but not yet in published_ — the "dirty" marker that
  // lets SnapshotNow() skip the exclusive lock when clean.
  mutable std::atomic<std::size_t> pending_count_{0};
};

}  // namespace bivoc

#endif  // BIVOC_MINING_CONCEPT_INDEX_H_
