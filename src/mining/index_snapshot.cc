#include "mining/index_snapshot.h"

#include <algorithm>

namespace bivoc {

namespace {
const std::vector<DocId> kEmptyPostings;
const std::vector<ConceptId> kEmptyConceptIds;

bool ViewStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}
}  // namespace

ConceptId IndexSnapshot::Resolve(std::string_view key) const {
  auto it = std::lower_bound(
      vocab_.begin(), vocab_.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  if (it == vocab_.end() || it->first != key) return kInvalidConceptId;
  return it->second;
}

std::size_t IndexSnapshot::Count(std::string_view key) const {
  return CountId(Resolve(key));
}

std::size_t IndexSnapshot::CountBoth(std::string_view a,
                                     std::string_view b) const {
  return CountBothIds(Resolve(a), Resolve(b));
}

const std::vector<DocId>& IndexSnapshot::Postings(std::string_view key) const {
  return PostingsId(Resolve(key));
}

std::vector<DocId> IndexSnapshot::DocsWithBoth(std::string_view a,
                                               std::string_view b) const {
  return DocsWithBothIds(Resolve(a), Resolve(b));
}

std::size_t IndexSnapshot::PrefixBegin(std::string_view prefix) const {
  return static_cast<std::size_t>(
      std::lower_bound(vocab_.begin(), vocab_.end(), prefix,
                       [](const auto& entry, std::string_view p) {
                         return entry.first < p;
                       }) -
      vocab_.begin());
}

std::vector<std::string> IndexSnapshot::Keys(std::string_view prefix) const {
  std::vector<std::string> out;
  for (std::size_t i = PrefixBegin(prefix); i < vocab_.size(); ++i) {
    if (!ViewStartsWith(vocab_[i].first, prefix)) break;
    out.emplace_back(vocab_[i].first);
  }
  return out;
}

std::vector<ConceptId> IndexSnapshot::IdsWithPrefix(
    std::string_view prefix) const {
  std::vector<ConceptId> out;
  for (std::size_t i = PrefixBegin(prefix); i < vocab_.size(); ++i) {
    if (!ViewStartsWith(vocab_[i].first, prefix)) break;
    out.push_back(vocab_[i].second);
  }
  return out;
}

std::string_view IndexSnapshot::KeyOf(ConceptId id) const {
  if (id >= key_of_.size()) return {};
  return key_of_[id];
}

std::size_t IndexSnapshot::CountId(ConceptId id) const {
  return PostingsId(id).size();
}

const std::vector<DocId>& IndexSnapshot::PostingsId(ConceptId id) const {
  if (id == kInvalidConceptId || shards_.empty()) return kEmptyPostings;
  const auto& shard = shards_[id % num_shards_];
  std::size_t slot = id / num_shards_;
  if (slot >= shard.size() || !shard[slot]) return kEmptyPostings;
  return *shard[slot];
}

std::size_t IndexSnapshot::CountBothIds(ConceptId a, ConceptId b) const {
  const auto& pa = PostingsId(a);
  const auto& pb = PostingsId(b);
  std::size_t i = 0, j = 0, count = 0;
  while (i < pa.size() && j < pb.size()) {
    if (pa[i] == pb[j]) {
      ++count;
      ++i;
      ++j;
    } else if (pa[i] < pb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

std::vector<DocId> IndexSnapshot::DocsWithBothIds(ConceptId a,
                                                  ConceptId b) const {
  const auto& pa = PostingsId(a);
  const auto& pb = PostingsId(b);
  std::vector<DocId> out;
  std::set_intersection(pa.begin(), pa.end(), pb.begin(), pb.end(),
                        std::back_inserter(out));
  return out;
}

const std::vector<ConceptId>& IndexSnapshot::ConceptIdsOf(DocId doc) const {
  if (doc >= num_docs_) return kEmptyConceptIds;
  return chunks_[doc / kDocChunkSize]->concepts[doc % kDocChunkSize];
}

std::vector<std::string> IndexSnapshot::ConceptsOf(DocId doc) const {
  std::vector<std::string> out;
  for (ConceptId id : ConceptIdsOf(doc)) out.emplace_back(KeyOf(id));
  std::sort(out.begin(), out.end());
  return out;
}

int64_t IndexSnapshot::TimeBucketOf(DocId doc) const {
  if (doc >= num_docs_) return kNoTimeBucket;
  return chunks_[doc / kDocChunkSize]->times[doc % kDocChunkSize];
}

}  // namespace bivoc
