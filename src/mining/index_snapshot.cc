#include "mining/index_snapshot.h"

#include <algorithm>

namespace bivoc {

namespace {
const std::vector<ConceptId> kEmptyConceptIds;
const IndexSnapshot::BucketCounts kEmptyBuckets;

bool ViewStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}
}  // namespace

ConceptId IndexSnapshot::Resolve(std::string_view key) const {
  auto it = std::lower_bound(
      vocab_.begin(), vocab_.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  if (it == vocab_.end() || it->first != key) return kInvalidConceptId;
  return it->second;
}

std::size_t IndexSnapshot::Count(std::string_view key) const {
  return CountId(Resolve(key));
}

std::size_t IndexSnapshot::CountBoth(std::string_view a,
                                     std::string_view b) const {
  return CountBothIds(Resolve(a), Resolve(b));
}

PostingsView IndexSnapshot::Postings(std::string_view key) const {
  return PostingsId(Resolve(key));
}

std::vector<DocId> IndexSnapshot::DocsWithBoth(std::string_view a,
                                               std::string_view b,
                                               std::size_t limit) const {
  return DocsWithBothIds(Resolve(a), Resolve(b), limit);
}

std::size_t IndexSnapshot::PrefixBegin(std::string_view prefix) const {
  return static_cast<std::size_t>(
      std::lower_bound(vocab_.begin(), vocab_.end(), prefix,
                       [](const auto& entry, std::string_view p) {
                         return entry.first < p;
                       }) -
      vocab_.begin());
}

std::vector<std::string> IndexSnapshot::Keys(std::string_view prefix) const {
  std::vector<std::string> out;
  for (std::size_t i = PrefixBegin(prefix); i < vocab_.size(); ++i) {
    if (!ViewStartsWith(vocab_[i].first, prefix)) break;
    out.emplace_back(vocab_[i].first);
  }
  return out;
}

std::vector<ConceptId> IndexSnapshot::IdsWithPrefix(
    std::string_view prefix) const {
  std::vector<ConceptId> out;
  for (std::size_t i = PrefixBegin(prefix); i < vocab_.size(); ++i) {
    if (!ViewStartsWith(vocab_[i].first, prefix)) break;
    out.push_back(vocab_[i].second);
  }
  return out;
}

std::string_view IndexSnapshot::KeyOf(ConceptId id) const {
  if (id >= key_of_.size()) return {};
  return key_of_[id];
}

const IndexSnapshot::ConceptSlot* IndexSnapshot::SlotOf(ConceptId id) const {
  if (id == kInvalidConceptId || shards_.empty()) return nullptr;
  const auto& shard = shards_[id % num_shards_];
  std::size_t slot = id / num_shards_;
  if (slot >= shard.size() || !shard[slot]) return nullptr;
  return shard[slot].get();
}

std::size_t IndexSnapshot::CountId(ConceptId id) const {
  const ConceptSlot* slot = SlotOf(id);
  return slot != nullptr ? slot->postings.size() : 0;
}

PostingsView IndexSnapshot::PostingsId(ConceptId id) const {
  const ConceptSlot* slot = SlotOf(id);
  return slot != nullptr ? PostingsView(&slot->postings) : PostingsView();
}

bool IndexSnapshot::CoLookup(const ConceptSlot& slot, ConceptId other,
                             std::size_t* count) {
  auto it = std::lower_bound(
      slot.co.begin(), slot.co.end(), other,
      [](const auto& entry, ConceptId id) { return entry.first < id; });
  if (it != slot.co.end() && it->first == other) {
    *count = it->second;
    return true;
  }
  if (slot.co_complete) {
    *count = 0;  // the table is exhaustive, so absence means zero
    return true;
  }
  return false;
}

std::size_t IndexSnapshot::CountBothIds(ConceptId a, ConceptId b) const {
  const ConceptSlot* sa = SlotOf(a);
  const ConceptSlot* sb = SlotOf(b);
  if (sa == nullptr || sb == nullptr) return 0;
  if (a == b) return sa->postings.size();
  // Either endpoint's co table can decide the pair; prefer the one with
  // fewer partners (more likely complete, cheaper binary search).
  const ConceptSlot* first = sa->co.size() <= sb->co.size() ? sa : sb;
  const ConceptSlot* second = first == sa ? sb : sa;
  ConceptId first_other = first == sa ? b : a;
  ConceptId second_other = first == sa ? a : b;
  std::size_t count = 0;
  if (CoLookup(*first, first_other, &count)) return count;
  if (CoLookup(*second, second_other, &count)) return count;
  // Both tables truncated and neither holds the pair: gallop the
  // compressed lists. Same integers, just slower.
  return IntersectCount(sa->postings, sb->postings);
}

std::vector<DocId> IndexSnapshot::DocsWithBothIds(ConceptId a, ConceptId b,
                                                  std::size_t limit) const {
  const ConceptSlot* sa = SlotOf(a);
  const ConceptSlot* sb = SlotOf(b);
  if (sa == nullptr || sb == nullptr || limit == 0) return {};
  return Intersect(sa->postings, sb->postings, limit);
}

std::size_t IndexSnapshot::CountAllIds(const std::vector<ConceptId>& ids) const {
  if (ids.empty()) return 0;
  if (ids.size() == 1) return CountId(ids[0]);
  if (ids.size() == 2) return CountBothIds(ids[0], ids[1]);
  std::vector<const PostingList*> lists;
  lists.reserve(ids.size());
  for (ConceptId id : ids) {
    const ConceptSlot* slot = SlotOf(id);
    if (slot == nullptr) return 0;
    lists.push_back(&slot->postings);
  }
  return IntersectCountMany(lists);
}

std::vector<DocId> IndexSnapshot::DocsWithAllIds(
    const std::vector<ConceptId>& ids, std::size_t limit) const {
  if (ids.empty() || limit == 0) return {};
  if (ids.size() == 1) {
    PostingsView view = PostingsId(ids[0]);
    std::vector<DocId> out;
    for (PostingCursor cur = view.cursor(); cur.Valid() && out.size() < limit;
         cur.Next()) {
      out.push_back(cur.Value());
    }
    return out;
  }
  if (ids.size() == 2) return DocsWithBothIds(ids[0], ids[1], limit);
  std::vector<PostingCursor> cursors;
  cursors.reserve(ids.size());
  for (ConceptId id : ids) {
    const ConceptSlot* slot = SlotOf(id);
    if (slot == nullptr || slot->postings.size() == 0) return {};
    cursors.push_back(slot->postings.cursor());
  }
  // Leapfrog: advance every cursor to the current max until they all
  // agree, emit, step the first cursor, repeat.
  std::vector<DocId> out;
  DocId target = cursors[0].Value();
  while (out.size() < limit) {
    bool aligned = true;
    for (PostingCursor& cur : cursors) {
      if (!cur.SeekTo(target)) return out;
      if (cur.Value() != target) {
        target = cur.Value();
        aligned = false;
        break;
      }
    }
    if (!aligned) continue;
    out.push_back(target);
    cursors[0].Next();
    if (!cursors[0].Valid()) return out;
    target = cursors[0].Value();
  }
  return out;
}

const IndexSnapshot::BucketCounts& IndexSnapshot::BucketCountsOf(
    ConceptId id) const {
  const ConceptSlot* slot = SlotOf(id);
  return slot != nullptr ? slot->bucket_counts : kEmptyBuckets;
}

const std::vector<ConceptId>& IndexSnapshot::ConceptIdsOf(DocId doc) const {
  if (doc >= num_docs_) return kEmptyConceptIds;
  return chunks_[doc / kDocChunkSize]->concepts[doc % kDocChunkSize];
}

std::vector<std::string> IndexSnapshot::ConceptsOf(DocId doc) const {
  std::vector<std::string> out;
  for (ConceptId id : ConceptIdsOf(doc)) out.emplace_back(KeyOf(id));
  std::sort(out.begin(), out.end());
  return out;
}

int64_t IndexSnapshot::TimeBucketOf(DocId doc) const {
  if (doc >= num_docs_) return kNoTimeBucket;
  return chunks_[doc / kDocChunkSize]->times[doc % kDocChunkSize];
}

const std::string& IndexSnapshot::RouteKeyOf(DocId doc) const {
  static const std::string kEmptyRoute;
  if (doc >= num_docs_) return kEmptyRoute;
  return chunks_[doc / kDocChunkSize]->routes[doc % kDocChunkSize];
}

IndexSnapshot::StorageStats IndexSnapshot::Storage() const {
  StorageStats stats;
  for (const auto& shard : shards_) {
    for (const auto& slot : shard) {
      if (!slot) continue;
      stats.postings += slot->postings.size();
      stats.postings_bytes += slot->postings.byte_size();
      stats.bitmap_blocks += slot->postings.num_bitmap_blocks();
      stats.total_blocks += slot->postings.num_blocks();
      stats.aggregate_bytes +=
          slot->bucket_counts.size() * sizeof(BucketCounts::value_type) +
          slot->co.size() * sizeof(std::pair<ConceptId, std::size_t>);
    }
  }
  stats.aggregate_bytes +=
      bucket_totals_->size() * sizeof(BucketCounts::value_type);
  return stats;
}

}  // namespace bivoc
