#include "mining/concept_index.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace bivoc {

DocId ConceptIndex::AddDocument(const std::vector<std::string>& concept_keys,
                                int64_t time_bucket) {
  DocId id = doc_concepts_.size();
  std::set<std::string> unique(concept_keys.begin(), concept_keys.end());
  doc_concepts_.emplace_back(unique.begin(), unique.end());
  doc_time_.push_back(time_bucket);
  for (const auto& key : unique) {
    postings_[key].push_back(id);  // ids arrive in increasing order
  }
  return id;
}

std::size_t ConceptIndex::Count(const std::string& key) const {
  auto it = postings_.find(key);
  return it == postings_.end() ? 0 : it->second.size();
}

const std::vector<DocId>& ConceptIndex::Postings(
    const std::string& key) const {
  auto it = postings_.find(key);
  return it == postings_.end() ? empty_ : it->second;
}

std::size_t ConceptIndex::CountBoth(const std::string& a,
                                    const std::string& b) const {
  const auto& pa = Postings(a);
  const auto& pb = Postings(b);
  std::size_t i = 0, j = 0, count = 0;
  while (i < pa.size() && j < pb.size()) {
    if (pa[i] == pb[j]) {
      ++count;
      ++i;
      ++j;
    } else if (pa[i] < pb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

std::vector<DocId> ConceptIndex::DocsWithBoth(const std::string& a,
                                              const std::string& b) const {
  const auto& pa = Postings(a);
  const auto& pb = Postings(b);
  std::vector<DocId> out;
  std::set_intersection(pa.begin(), pa.end(), pb.begin(), pb.end(),
                        std::back_inserter(out));
  return out;
}

const std::vector<std::string>& ConceptIndex::ConceptsOf(DocId doc) const {
  if (doc >= doc_concepts_.size()) return empty_concepts_;
  return doc_concepts_[doc];
}

int64_t ConceptIndex::TimeBucketOf(DocId doc) const {
  if (doc >= doc_time_.size()) return kNoTimeBucket;
  return doc_time_[doc];
}

std::vector<std::string> ConceptIndex::Keys(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [key, _] : postings_) {
    if (prefix.empty() || StartsWith(key, prefix)) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bivoc
