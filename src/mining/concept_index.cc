#include "mining/concept_index.h"

#include <algorithm>
#include <utility>

namespace bivoc {

namespace {

// Sorted bucket-count vector plus an unordered delta → new sorted
// vector. Plain sorted merge; buckets never disappear.
IndexSnapshot::BucketCounts MergedBuckets(
    const IndexSnapshot::BucketCounts& base,
    const std::unordered_map<int64_t, std::size_t>& delta) {
  if (delta.empty()) return base;
  std::vector<std::pair<int64_t, std::size_t>> add(delta.begin(), delta.end());
  std::sort(add.begin(), add.end());
  IndexSnapshot::BucketCounts out;
  out.reserve(base.size() + add.size());
  std::size_t i = 0, j = 0;
  while (i < base.size() && j < add.size()) {
    if (base[i].first == add[j].first) {
      out.emplace_back(base[i].first, base[i].second + add[j].second);
      ++i;
      ++j;
    } else if (base[i].first < add[j].first) {
      out.push_back(base[i++]);
    } else {
      out.push_back(add[j++]);
    }
  }
  for (; i < base.size(); ++i) out.push_back(base[i]);
  for (; j < add.size(); ++j) out.push_back(add[j]);
  return out;
}

}  // namespace

ConceptIndex::ConceptIndex(std::size_t num_shards, std::size_t co_topk)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      co_topk_(co_topk),
      interner_(std::make_shared<ConceptInterner>()),
      shards_(num_shards_) {
  auto empty = std::make_shared<IndexSnapshot>();
  empty->num_shards_ = num_shards_;
  empty->shards_.resize(num_shards_);
  empty->interner_ = interner_;
  published_.Store(std::move(empty));
}

DocId ConceptIndex::AddDocument(const std::vector<std::string>& concept_keys,
                                int64_t time_bucket, std::string route_key) {
  // Shared: many adders run concurrently; only Publish() excludes us.
  std::shared_lock<std::shared_mutex> add_lock(add_mu_);

  std::vector<ConceptId> ids;
  ids.reserve(concept_keys.size());
  for (const auto& key : concept_keys) ids.push_back(interner_->Intern(key));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  DocId id;
  {
    std::lock_guard<std::mutex> doc_lock(doc_mu_);
    id = num_docs_.load(std::memory_order_relaxed);
    pending_concepts_.push_back(ids);
    pending_times_.push_back(time_bucket);
    pending_routes_.push_back(std::move(route_key));
    num_docs_.store(id + 1, std::memory_order_release);
  }
  for (ConceptId cid : ids) {
    Shard& shard = shards_[cid % num_shards_];
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    shard.delta.emplace_back(cid, id);
  }
  pending_count_.fetch_add(1, std::memory_order_release);
  return id;
}

std::shared_ptr<const IndexSnapshot> ConceptIndex::Publish() const {
  // Exclusive: waits for in-flight adds, blocks new ones. Readers of
  // already-published snapshots are unaffected.
  std::unique_lock<std::shared_mutex> add_lock(add_mu_);
  auto prev = published_.Load();
  if (pending_count_.load(std::memory_order_acquire) == 0) return prev;

  auto next = std::make_shared<IndexSnapshot>();
  next->num_shards_ = num_shards_;
  next->interner_ = interner_;
  // Publishes serialize under add_mu_, so prev + 1 is monotonic; a
  // Publish with nothing pending returned prev above and keeps the
  // generation (identical contents, identical cache key).
  next->generation_ = prev->generation_ + 1;

  // Aggregate deltas from the pending docs: per-bucket totals,
  // per-(concept, bucket) additions, and the exact co-occurrence
  // accumulator. O(concepts²) per doc for the pairs — the publish-time
  // cost that buys O(log k) CountBothIds on the read path.
  std::lock_guard<std::mutex> doc_lock(doc_mu_);
  std::unordered_map<int64_t, std::size_t> totals_delta;
  std::unordered_map<ConceptId, std::unordered_map<int64_t, std::size_t>>
      bucket_delta;
  for (std::size_t i = 0; i < pending_concepts_.size(); ++i) {
    const auto& ids = pending_concepts_[i];
    int64_t bucket = pending_times_[i];
    if (bucket != kNoTimeBucket) {
      ++totals_delta[bucket];
      for (ConceptId cid : ids) ++bucket_delta[cid][bucket];
    }
    for (std::size_t x = 0; x < ids.size(); ++x) {
      // unordered_map element references survive the rehash the inner
      // operator[] may trigger, so holding `row` across it is safe.
      auto& row = co_counts_[ids[x]];
      for (std::size_t y = x + 1; y < ids.size(); ++y) {
        ++row[ids[y]];
        ++co_counts_[ids[y]][ids[x]];
      }
    }
  }
  {
    auto totals =
        std::make_shared<IndexSnapshot::BucketCounts>(*prev->bucket_totals_);
    *totals = MergedBuckets(*totals, totals_delta);
    next->bucket_totals_ = std::move(totals);
  }

  // Slots: start from the previous snapshot's slot pointers (no slot
  // data copied) and rebuild only concepts that got deltas. Delta doc
  // ids all exceed published ids, so sorting the delta by (concept,
  // doc) and appending keeps every posting list sorted; the builder
  // reuses the previous list's full blocks byte-for-byte.
  next->shards_ = prev->shards_;
  PostingListBuilder builder;
  static const std::unordered_map<int64_t, std::size_t> kNoBucketDelta;
  static const std::unordered_map<ConceptId, std::size_t> kNoCoRow;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    if (shard.delta.empty()) continue;
    std::sort(shard.delta.begin(), shard.delta.end());
    auto& slots = next->shards_[s];
    for (std::size_t i = 0; i < shard.delta.size();) {
      ConceptId cid = shard.delta[i].first;
      std::size_t slot = cid / num_shards_;
      if (slot >= slots.size()) slots.resize(slot + 1);
      const IndexSnapshot::ConceptSlot* old = slots[slot].get();

      auto rebuilt = std::make_shared<IndexSnapshot::ConceptSlot>();
      if (old != nullptr) builder.AppendFrom(old->postings);
      for (; i < shard.delta.size() && shard.delta[i].first == cid; ++i) {
        builder.Add(shard.delta[i].second);
      }
      rebuilt->postings = builder.Build();

      auto bit = bucket_delta.find(cid);
      const auto& bdelta = bit != bucket_delta.end() ? bit->second
                                                     : kNoBucketDelta;
      rebuilt->bucket_counts = MergedBuckets(
          old != nullptr ? old->bucket_counts
                         : IndexSnapshot::BucketCounts(),
          bdelta);

      // Recut the top-k co table from the full accumulator. Ties break
      // by id so the published table is deterministic.
      auto cit = co_counts_.find(cid);
      const auto& row = cit != co_counts_.end() ? cit->second : kNoCoRow;
      rebuilt->co.assign(row.begin(), row.end());
      rebuilt->co_complete = rebuilt->co.size() <= co_topk_;
      if (!rebuilt->co_complete) {
        auto by_count = [](const std::pair<ConceptId, std::size_t>& a,
                           const std::pair<ConceptId, std::size_t>& b) {
          return a.second != b.second ? a.second > b.second
                                      : a.first < b.first;
        };
        std::nth_element(rebuilt->co.begin(),
                         rebuilt->co.begin() +
                             static_cast<std::ptrdiff_t>(co_topk_),
                         rebuilt->co.end(), by_count);
        rebuilt->co.resize(co_topk_);
      }
      std::sort(rebuilt->co.begin(), rebuilt->co.end());

      slots[slot] = std::move(rebuilt);
    }
    shard.delta.clear();
  }

  // Doc store: reuse every full chunk, clone only the partial tail.
  constexpr std::size_t kChunk = IndexSnapshot::kDocChunkSize;
  next->chunks_ = prev->chunks_;
  std::size_t docs = prev->num_docs_;
  std::shared_ptr<IndexSnapshot::DocChunk> tail;
  if (docs % kChunk != 0) {
    tail = std::make_shared<IndexSnapshot::DocChunk>(*next->chunks_.back());
    next->chunks_.back() = tail;
  }
  for (std::size_t i = 0; i < pending_concepts_.size(); ++i) {
    if (docs % kChunk == 0) {
      tail = std::make_shared<IndexSnapshot::DocChunk>();
      tail->concepts.reserve(kChunk);
      tail->times.reserve(kChunk);
      tail->routes.reserve(kChunk);
      next->chunks_.push_back(tail);
    }
    tail->concepts.push_back(std::move(pending_concepts_[i]));
    tail->times.push_back(pending_times_[i]);
    tail->routes.push_back(std::move(pending_routes_[i]));
    ++docs;
  }
  pending_concepts_.clear();
  pending_times_.clear();
  pending_routes_.clear();
  next->num_docs_ = docs;

  // Vocabulary: every concept holding at least one posting, sorted by
  // key so categories form contiguous ranges.
  next->key_of_ = interner_->AllKeys();
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const auto& slots = next->shards_[s];
    for (std::size_t slot = 0; slot < slots.size(); ++slot) {
      if (!slots[slot] || slots[slot]->postings.empty()) continue;
      ConceptId cid = static_cast<ConceptId>(slot * num_shards_ + s);
      next->vocab_.emplace_back(next->key_of_[cid], cid);
    }
  }
  std::sort(next->vocab_.begin(), next->vocab_.end());

  published_.Store(next);
  pending_count_.store(0, std::memory_order_release);
  return next;
}

void ConceptIndex::Reset() {
  std::unique_lock<std::shared_mutex> add_lock(add_mu_);
  std::lock_guard<std::mutex> doc_lock(doc_mu_);
  auto prev = published_.Load();
  // Fresh interner: snapshots already handed out co-own the old one,
  // so their string views stay valid for as long as they are held.
  interner_ = std::make_shared<ConceptInterner>();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    shard.delta.clear();
  }
  co_counts_.clear();
  pending_concepts_.clear();
  pending_times_.clear();
  pending_routes_.clear();
  auto empty = std::make_shared<IndexSnapshot>();
  empty->num_shards_ = num_shards_;
  empty->shards_.resize(num_shards_);
  empty->interner_ = interner_;
  // prev + 1, not 0: generations must stay monotonic across a reset or
  // (fingerprint, generation) result-cache keys could collide with
  // entries cached against the pre-reset contents.
  empty->generation_ = prev->generation_ + 1;
  published_.Store(std::move(empty));
  num_docs_.store(0, std::memory_order_release);
  pending_count_.store(0, std::memory_order_release);
}

std::shared_ptr<const IndexSnapshot> ConceptIndex::SnapshotNow() const {
  if (pending_count_.load(std::memory_order_acquire) != 0) return Publish();
  return published_.Load();
}

}  // namespace bivoc
