#include "mining/concept_index.h"

#include <algorithm>
#include <utility>

namespace bivoc {

ConceptIndex::ConceptIndex(std::size_t num_shards)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      interner_(std::make_shared<ConceptInterner>()),
      shards_(num_shards_) {
  auto empty = std::make_shared<IndexSnapshot>();
  empty->num_shards_ = num_shards_;
  empty->shards_.resize(num_shards_);
  empty->interner_ = interner_;
  published_.Store(std::move(empty));
}

DocId ConceptIndex::AddDocument(const std::vector<std::string>& concept_keys,
                                int64_t time_bucket) {
  // Shared: many adders run concurrently; only Publish() excludes us.
  std::shared_lock<std::shared_mutex> add_lock(add_mu_);

  std::vector<ConceptId> ids;
  ids.reserve(concept_keys.size());
  for (const auto& key : concept_keys) ids.push_back(interner_->Intern(key));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  DocId id;
  {
    std::lock_guard<std::mutex> doc_lock(doc_mu_);
    id = num_docs_.load(std::memory_order_relaxed);
    pending_concepts_.push_back(ids);
    pending_times_.push_back(time_bucket);
    num_docs_.store(id + 1, std::memory_order_release);
  }
  for (ConceptId cid : ids) {
    Shard& shard = shards_[cid % num_shards_];
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    shard.delta.emplace_back(cid, id);
  }
  pending_count_.fetch_add(1, std::memory_order_release);
  return id;
}

std::shared_ptr<const IndexSnapshot> ConceptIndex::Publish() const {
  // Exclusive: waits for in-flight adds, blocks new ones. Readers of
  // already-published snapshots are unaffected.
  std::unique_lock<std::shared_mutex> add_lock(add_mu_);
  auto prev = published_.Load();
  if (pending_count_.load(std::memory_order_acquire) == 0) return prev;

  auto next = std::make_shared<IndexSnapshot>();
  next->num_shards_ = num_shards_;
  next->interner_ = interner_;
  // Publishes serialize under add_mu_, so prev + 1 is monotonic; a
  // Publish with nothing pending returned prev above and keeps the
  // generation (identical contents, identical cache key).
  next->generation_ = prev->generation_ + 1;

  // Postings: start from the previous snapshot's slot pointers (no
  // posting data copied) and rebuild only concepts that got deltas.
  // Delta doc ids all exceed published ids, so sorting the delta by
  // (concept, doc) and appending keeps every posting list sorted.
  next->shards_ = prev->shards_;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    if (shard.delta.empty()) continue;
    std::sort(shard.delta.begin(), shard.delta.end());
    auto& slots = next->shards_[s];
    for (std::size_t i = 0; i < shard.delta.size();) {
      ConceptId cid = shard.delta[i].first;
      std::size_t slot = cid / num_shards_;
      if (slot >= slots.size()) slots.resize(slot + 1);
      auto merged = slots[slot]
                        ? std::make_shared<std::vector<DocId>>(*slots[slot])
                        : std::make_shared<std::vector<DocId>>();
      for (; i < shard.delta.size() && shard.delta[i].first == cid; ++i) {
        merged->push_back(shard.delta[i].second);
      }
      slots[slot] = std::move(merged);
    }
    shard.delta.clear();
  }

  // Doc store: reuse every full chunk, clone only the partial tail.
  std::lock_guard<std::mutex> doc_lock(doc_mu_);
  constexpr std::size_t kChunk = IndexSnapshot::kDocChunkSize;
  next->chunks_ = prev->chunks_;
  std::size_t docs = prev->num_docs_;
  std::shared_ptr<IndexSnapshot::DocChunk> tail;
  if (docs % kChunk != 0) {
    tail = std::make_shared<IndexSnapshot::DocChunk>(*next->chunks_.back());
    next->chunks_.back() = tail;
  }
  for (std::size_t i = 0; i < pending_concepts_.size(); ++i) {
    if (docs % kChunk == 0) {
      tail = std::make_shared<IndexSnapshot::DocChunk>();
      tail->concepts.reserve(kChunk);
      tail->times.reserve(kChunk);
      next->chunks_.push_back(tail);
    }
    tail->concepts.push_back(std::move(pending_concepts_[i]));
    tail->times.push_back(pending_times_[i]);
    ++docs;
  }
  pending_concepts_.clear();
  pending_times_.clear();
  next->num_docs_ = docs;

  // Vocabulary: every concept holding at least one posting, sorted by
  // key so categories form contiguous ranges.
  next->key_of_ = interner_->AllKeys();
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const auto& slots = next->shards_[s];
    for (std::size_t slot = 0; slot < slots.size(); ++slot) {
      if (!slots[slot] || slots[slot]->empty()) continue;
      ConceptId cid = static_cast<ConceptId>(slot * num_shards_ + s);
      next->vocab_.emplace_back(next->key_of_[cid], cid);
    }
  }
  std::sort(next->vocab_.begin(), next->vocab_.end());

  published_.Store(next);
  pending_count_.store(0, std::memory_order_release);
  return next;
}

std::shared_ptr<const IndexSnapshot> ConceptIndex::SnapshotNow() const {
  if (pending_count_.load(std::memory_order_acquire) != 0) return Publish();
  return published_.Load();
}

}  // namespace bivoc
