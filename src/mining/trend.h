#ifndef BIVOC_MINING_TREND_H_
#define BIVOC_MINING_TREND_H_

#include <string>
#include <vector>

#include "mining/index_snapshot.h"

namespace bivoc {

// Topic-trend analysis (paper §IV-D: "even a simple function that
// examines the increase and decrease of occurrences of each concept in
// a certain period may allow us to analyze trends in the topics").
struct TrendPoint {
  int64_t bucket = 0;         // period id (e.g. day index)
  std::size_t count = 0;      // docs with the concept in the period
  std::size_t total = 0;      // all docs in the period
  double share = 0.0;         // count / total
};

// Per-period share of a concept, ordered by bucket. Documents without
// a time bucket are skipped. Reads the snapshot's publish-time bucket
// aggregates — no document or posting scan.
std::vector<TrendPoint> ConceptTrend(const IndexSnapshot& snapshot,
                                     const std::string& key);

// One point per populated period (ascending), zero-count periods
// included, share = count / total. Both inputs are sorted (bucket,
// count) vectors; `counts` buckets not present in `totals` are
// ignored. The single place this arithmetic lives: the snapshot path
// feeds it aggregates, the cluster coordinator (serve/merge.cc) feeds
// it summed shard counts, so merged trends stay bit-identical to a
// single engine over the union corpus.
std::vector<TrendPoint> TrendPointsFromCounts(
    const IndexSnapshot::BucketCounts& totals,
    const IndexSnapshot::BucketCounts& counts);

// Least-squares slope of share over bucket (docs/period drift); 0 for
// fewer than two periods. Positive = rising topic.
double TrendSlope(const std::vector<TrendPoint>& points);

// Concepts with the steepest rising share, optionally restricted by
// key prefix; ties broken by key.
struct TrendSummary {
  std::string key;
  double slope = 0.0;
  std::size_t total_count = 0;
};
std::vector<TrendSummary> RisingConcepts(const IndexSnapshot& snapshot,
                                         const std::string& prefix,
                                         std::size_t limit,
                                         std::size_t min_count = 5);

}  // namespace bivoc

#endif  // BIVOC_MINING_TREND_H_
