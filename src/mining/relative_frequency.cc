#include "mining/relative_frequency.h"

#include <algorithm>

namespace bivoc {

std::vector<RelevancyItem> RelevancyAnalysis(const IndexSnapshot& snapshot,
                                             const std::string& feature_key,
                                             RelevancyOptions options) {
  std::vector<RelevancyItem> out;
  ConceptId feature = snapshot.Resolve(feature_key);
  std::size_t subset_size = snapshot.CountId(feature);
  std::size_t corpus_size = snapshot.num_documents();
  if (subset_size == 0 || corpus_size == 0) return out;

  for (ConceptId id : snapshot.IdsWithPrefix(options.key_prefix)) {
    if (id == feature) continue;
    RelevancyItem item;
    item.subset_count = snapshot.CountBothIds(feature, id);
    if (item.subset_count < options.min_subset_count) continue;
    item.key = std::string(snapshot.KeyOf(id));
    item.corpus_count = snapshot.CountId(id);
    item.subset_freq = static_cast<double>(item.subset_count) /
                       static_cast<double>(subset_size);
    item.corpus_freq = static_cast<double>(item.corpus_count) /
                       static_cast<double>(corpus_size);
    item.relative =
        item.corpus_freq > 0.0 ? item.subset_freq / item.corpus_freq : 0.0;
    out.push_back(std::move(item));
  }
  std::sort(out.begin(), out.end(),
            [](const RelevancyItem& a, const RelevancyItem& b) {
              if (a.relative != b.relative) return a.relative > b.relative;
              return a.key < b.key;
            });
  if (out.size() > options.limit) out.resize(options.limit);
  return out;
}

}  // namespace bivoc
