#include "mining/relative_frequency.h"

#include <algorithm>

namespace bivoc {

std::vector<RelevancyItem> RelevancyAnalysis(const ConceptIndex& index,
                                             const std::string& feature_key,
                                             RelevancyOptions options) {
  std::vector<RelevancyItem> out;
  std::size_t subset_size = index.Count(feature_key);
  std::size_t corpus_size = index.num_documents();
  if (subset_size == 0 || corpus_size == 0) return out;

  for (const auto& key : index.Keys(options.key_prefix)) {
    if (key == feature_key) continue;
    RelevancyItem item;
    item.key = key;
    item.subset_count = index.CountBoth(feature_key, key);
    if (item.subset_count < options.min_subset_count) continue;
    item.corpus_count = index.Count(key);
    item.subset_freq = static_cast<double>(item.subset_count) /
                       static_cast<double>(subset_size);
    item.corpus_freq = static_cast<double>(item.corpus_count) /
                       static_cast<double>(corpus_size);
    item.relative =
        item.corpus_freq > 0.0 ? item.subset_freq / item.corpus_freq : 0.0;
    out.push_back(std::move(item));
  }
  std::sort(out.begin(), out.end(),
            [](const RelevancyItem& a, const RelevancyItem& b) {
              if (a.relative != b.relative) return a.relative > b.relative;
              return a.key < b.key;
            });
  if (out.size() > options.limit) out.resize(options.limit);
  return out;
}

}  // namespace bivoc
