#ifndef BIVOC_MINING_STATS_H_
#define BIVOC_MINING_STATS_H_

#include <cstddef>
#include <vector>

namespace bivoc {

// Statistical primitives behind the reporting layer.

// Wilson score interval for a binomial proportion (successes/trials) at
// confidence z (1.96 ~ 95%). Returns {lower, upper}; {0,1} for trials=0.
struct Interval {
  double lower = 0.0;
  double upper = 1.0;
};
Interval WilsonInterval(std::size_t successes, std::size_t trials,
                        double z = 1.96);

// Exponentiated pointwise mutual information ("lift", paper Eqn 4):
//   (n_cell * n) / (n_ver * n_hor)
// 1.0 = independence, > 1 = positive association.
double PointLift(std::size_t n_cell, std::size_t n_ver, std::size_t n_hor,
                 std::size_t n);

// The paper's robust variant: instead of the point estimate it uses
// "the left terminal value (smallest value) of the interval estimation"
// so sparse cells cannot fake strong association. We lower-bound the
// three densities' ratio by combining Wilson bounds conservatively:
// lower(cell density) / (upper(ver density) * upper(hor density)) * n
// ... expressed on the same scale as PointLift.
double LowerBoundLift(std::size_t n_cell, std::size_t n_ver,
                      std::size_t n_hor, std::size_t n, double z = 1.96);

// Welch's unequal-variance t-test. Returns the t statistic and the
// two-sided p-value (via a normal approximation of the t CDF for the
// large df this system produces; exact enough for reporting).
struct TTestResult {
  double t = 0.0;
  double df = 0.0;
  double p_two_sided = 1.0;
};
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

// Pearson chi-square statistic for a 2x2 contingency table.
double ChiSquare2x2(std::size_t a, std::size_t b, std::size_t c,
                    std::size_t d);

// Standard normal CDF.
double NormalCdf(double x);

// Student-t CDF approximation (normal beyond df>100, Cornish-Fisher
// style correction below).
double StudentTCdf(double t, double df);

}  // namespace bivoc

#endif  // BIVOC_MINING_STATS_H_
