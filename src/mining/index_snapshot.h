#ifndef BIVOC_MINING_INDEX_SNAPSHOT_H_
#define BIVOC_MINING_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mining/concept_interner.h"

namespace bivoc {

using DocId = std::size_t;
constexpr int64_t kNoTimeBucket = INT64_MIN;

// An immutable, point-in-time view of the concept index — what every
// mining reader (association, relevancy, trend, report, KPI and churn
// analyses) consumes. Snapshots are published copy-on-write by
// ConceptIndex::Publish(): posting lists and document chunks are
// shared with earlier snapshots where unchanged, so holding one is
// cheap and reading one is entirely lock-free — reports run
// concurrently with ingestion with no synchronization at all.
//
// String-keyed lookups binary-search a sorted vocabulary (one O(log C)
// resolve per key); id-keyed lookups are direct array reads. Because
// the vocabulary is sorted, a whole category ("value selling/") is a
// contiguous range — prefix enumeration never scans unrelated keys.
class IndexSnapshot {
 public:
  IndexSnapshot() = default;

  std::size_t num_documents() const { return num_docs_; }
  // Concepts with at least one posting in this snapshot.
  std::size_t num_concepts() const { return vocab_.size(); }

  // Monotonically increasing publish generation: 0 for the empty
  // snapshot a fresh index hands out, bumped by every
  // ConceptIndex::Publish that merged pending deltas. Two snapshots
  // from the same index with equal generations are the same object, so
  // (query fingerprint, generation) is a staleness-free cache key —
  // the serving layer's result cache invalidates implicitly when a new
  // snapshot publishes.
  uint64_t generation() const { return generation_; }

  // --- string-keyed API ---------------------------------------------

  // Id of `key` in this snapshot, or kInvalidConceptId. Resolve once
  // and switch to the id API inside loops.
  ConceptId Resolve(std::string_view key) const;

  // Document count containing the key.
  std::size_t Count(std::string_view key) const;

  // Document count containing both keys (sorted-postings intersection).
  std::size_t CountBoth(std::string_view a, std::string_view b) const;

  // Sorted posting list ({} if unknown).
  const std::vector<DocId>& Postings(std::string_view key) const;

  // Documents containing both keys (the drill-down of Fig. 4).
  std::vector<DocId> DocsWithBoth(std::string_view a,
                                  std::string_view b) const;

  // All keys, sorted; optionally only those with a given category
  // prefix ("value selling/").
  std::vector<std::string> Keys(std::string_view prefix = {}) const;

  // Ids of keys in the sorted prefix range, in key order.
  std::vector<ConceptId> IdsWithPrefix(std::string_view prefix) const;

  // --- id-keyed API (hot loops: no hashing, no string compares) -----

  // Key for an id known to this snapshot's interner ({} if out of
  // range).
  std::string_view KeyOf(ConceptId id) const;

  std::size_t CountId(ConceptId id) const;
  const std::vector<DocId>& PostingsId(ConceptId id) const;
  std::size_t CountBothIds(ConceptId a, ConceptId b) const;
  std::vector<DocId> DocsWithBothIds(ConceptId a, ConceptId b) const;

  // --- documents ----------------------------------------------------

  // Concept ids of a document, ascending ({} when out of range).
  const std::vector<ConceptId>& ConceptIdsOf(DocId doc) const;

  // Concept keys of a document, sorted (materialized per call).
  std::vector<std::string> ConceptsOf(DocId doc) const;

  int64_t TimeBucketOf(DocId doc) const;

  const ConceptInterner& interner() const { return *interner_; }

 private:
  friend class ConceptIndex;

  // Documents are stored in fixed-size immutable chunks so a publish
  // reuses every full chunk of the previous snapshot and only clones
  // the partial tail.
  static constexpr std::size_t kDocChunkSize = 512;
  struct DocChunk {
    std::vector<std::vector<ConceptId>> concepts;
    std::vector<int64_t> times;
  };

  using PostingsPtr = std::shared_ptr<const std::vector<DocId>>;

  // First vocab_ slot whose key is >= prefix.
  std::size_t PrefixBegin(std::string_view prefix) const;

  std::size_t num_docs_ = 0;
  uint64_t generation_ = 0;
  std::size_t num_shards_ = 1;
  // Shard s holds concept id at slot id / num_shards_ where
  // s == id % num_shards_ (the writer's striping, kept so a publish
  // only touches shards with deltas).
  std::vector<std::vector<PostingsPtr>> shards_;
  // (key view, id), sorted by key — the category-prefix ranges.
  std::vector<std::pair<std::string_view, ConceptId>> vocab_;
  // Key by id for every id interned at publish time.
  std::vector<std::string_view> key_of_;
  std::vector<std::shared_ptr<const DocChunk>> chunks_;
  // Keeps the interned strings behind the views alive.
  std::shared_ptr<const ConceptInterner> interner_;
};

}  // namespace bivoc

#endif  // BIVOC_MINING_INDEX_SNAPSHOT_H_
