#ifndef BIVOC_MINING_INDEX_SNAPSHOT_H_
#define BIVOC_MINING_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mining/concept_interner.h"
#include "mining/posting_list.h"

namespace bivoc {

constexpr int64_t kNoTimeBucket = INT64_MIN;

// An immutable, point-in-time view of the concept index — what every
// mining reader (association, relevancy, trend, report, KPI and churn
// analyses) consumes. Snapshots are published copy-on-write by
// ConceptIndex::Publish(): per-concept slots and document chunks are
// shared with earlier snapshots where unchanged, so holding one is
// cheap and reading one is entirely lock-free — reports run
// concurrently with ingestion with no synchronization at all.
//
// Since DESIGN.md §13 each concept's slot bundles three things built
// at publish time:
//
//   * a block-compressed PostingList (delta-varint / bitmap hybrid
//     with a skip table) instead of a raw std::vector<DocId> — read
//     through the PostingsView / PostingCursor API, never by
//     reference to a vector;
//   * the concept's per-time-bucket document counts, so trend queries
//     are table lookups instead of posting walks;
//   * a top-k co-occurrence table with exact pair counts, so
//     CountBothIds answers Eqn-4 association and relevancy numerators
//     in O(log k) and only falls back to a galloping posting-list
//     intersection for pairs a truncated table cannot decide.
//
// String-keyed lookups binary-search a sorted vocabulary (one O(log C)
// resolve per key); id-keyed lookups are direct array reads. Because
// the vocabulary is sorted, a whole category ("value selling/") is a
// contiguous range — prefix enumeration never scans unrelated keys.
class IndexSnapshot {
 public:
  // (time bucket, document count) ascending by bucket; documents
  // without a bucket are excluded.
  using BucketCounts = std::vector<std::pair<int64_t, std::size_t>>;

  IndexSnapshot() = default;

  std::size_t num_documents() const { return num_docs_; }
  // Concepts with at least one posting in this snapshot.
  std::size_t num_concepts() const { return vocab_.size(); }

  // Monotonically increasing publish generation: 0 for the empty
  // snapshot a fresh index hands out, bumped by every
  // ConceptIndex::Publish that merged pending deltas. Two snapshots
  // from the same index with equal generations are the same object, so
  // (query fingerprint, generation) is a staleness-free cache key —
  // the serving layer's result cache invalidates implicitly when a new
  // snapshot publishes.
  uint64_t generation() const { return generation_; }

  // --- string-keyed API ---------------------------------------------

  // Id of `key` in this snapshot, or kInvalidConceptId. Resolve once
  // and switch to the id API inside loops.
  ConceptId Resolve(std::string_view key) const;

  // Document count containing the key (O(1): stored list size).
  std::size_t Count(std::string_view key) const;

  // Document count containing both keys. Served from the publish-time
  // co-occurrence table when it can decide the pair; exact either way.
  std::size_t CountBoth(std::string_view a, std::string_view b) const;

  // Read handle on the key's postings (empty view if unknown).
  PostingsView Postings(std::string_view key) const;

  // Up to `limit` documents containing both keys, ascending (the
  // drill-down of Fig. 4). Streams through the intersection cursor —
  // nothing beyond the returned ids is ever materialized, so callers
  // must pass an explicit bound.
  std::vector<DocId> DocsWithBoth(std::string_view a, std::string_view b,
                                  std::size_t limit) const;

  // All keys, sorted; optionally only those with a given category
  // prefix ("value selling/").
  std::vector<std::string> Keys(std::string_view prefix = {}) const;

  // Ids of keys in the sorted prefix range, in key order.
  std::vector<ConceptId> IdsWithPrefix(std::string_view prefix) const;

  // --- id-keyed API (hot loops: no hashing, no string compares) -----

  // Key for an id known to this snapshot's interner ({} if out of
  // range).
  std::string_view KeyOf(ConceptId id) const;

  std::size_t CountId(ConceptId id) const;
  PostingsView PostingsId(ConceptId id) const;
  std::size_t CountBothIds(ConceptId a, ConceptId b) const;
  std::vector<DocId> DocsWithBothIds(ConceptId a, ConceptId b,
                                     std::size_t limit) const;

  // Documents containing every id (leapfrog cursor join); 0 when the
  // list is empty or any id is unknown.
  std::size_t CountAllIds(const std::vector<ConceptId>& ids) const;

  // Up to `limit` documents containing every id, ascending (the
  // multi-key drill-down). Leapfrog cursor join; {} when the id list
  // is empty, any id is unknown, or limit == 0.
  std::vector<DocId> DocsWithAllIds(const std::vector<ConceptId>& ids,
                                    std::size_t limit) const;

  // --- publish-time aggregates --------------------------------------

  // Documents per time bucket across the whole snapshot.
  const BucketCounts& BucketTotals() const { return *bucket_totals_; }

  // Documents per time bucket containing the concept ({} if unknown
  // or untimed).
  const BucketCounts& BucketCountsOf(ConceptId id) const;

  // --- documents ----------------------------------------------------

  // Concept ids of a document, ascending ({} when out of range).
  const std::vector<ConceptId>& ConceptIdsOf(DocId doc) const;

  // Concept keys of a document, sorted (materialized per call).
  std::vector<std::string> ConceptsOf(DocId doc) const;

  int64_t TimeBucketOf(DocId doc) const;

  // Cluster routing key the document was ingested under ({} when out
  // of range or indexed without one). Stored so rebalancing can
  // re-route documents after a ring change without re-deriving keys
  // from raw payloads.
  const std::string& RouteKeyOf(DocId doc) const;

  const ConceptInterner& interner() const { return *interner_; }

  // Storage accounting for benchmarks and capacity planning.
  struct StorageStats {
    std::size_t postings = 0;             // total (concept, doc) entries
    std::size_t postings_bytes = 0;       // compressed, incl. skip tables
    std::size_t bitmap_blocks = 0;
    std::size_t total_blocks = 0;
    std::size_t aggregate_bytes = 0;      // bucket + co-occurrence tables
  };
  StorageStats Storage() const;

 private:
  friend class ConceptIndex;

  // Everything the read path knows about one concept, frozen at
  // publish time. Slots are shared between snapshots via shared_ptr
  // and rebuilt only for concepts the publish touched.
  struct ConceptSlot {
    PostingList postings;
    // Docs per time bucket, ascending; untimed docs excluded.
    BucketCounts bucket_counts;
    // Exact co-occurrence counts with the k most frequent partners,
    // ascending by ConceptId for binary search. When co_complete the
    // table holds *every* co-occurring concept, so an absent pair is
    // a true zero; when truncated, absent pairs fall back to a
    // posting-list intersection.
    std::vector<std::pair<ConceptId, std::size_t>> co;
    bool co_complete = true;
  };
  using SlotPtr = std::shared_ptr<const ConceptSlot>;

  // Documents are stored in fixed-size immutable chunks so a publish
  // reuses every full chunk of the previous snapshot and only clones
  // the partial tail.
  static constexpr std::size_t kDocChunkSize = 512;
  struct DocChunk {
    std::vector<std::vector<ConceptId>> concepts;
    std::vector<int64_t> times;
    std::vector<std::string> routes;
  };

  // First vocab_ slot whose key is >= prefix.
  std::size_t PrefixBegin(std::string_view prefix) const;
  const ConceptSlot* SlotOf(ConceptId id) const;
  // Pair count from a slot's co table; false when the table is
  // truncated and the partner absent (count undecidable).
  static bool CoLookup(const ConceptSlot& slot, ConceptId other,
                       std::size_t* count);

  std::size_t num_docs_ = 0;
  uint64_t generation_ = 0;
  std::size_t num_shards_ = 1;
  // Shard s holds concept id at slot id / num_shards_ where
  // s == id % num_shards_ (the writer's striping, kept so a publish
  // only touches shards with deltas).
  std::vector<std::vector<SlotPtr>> shards_;
  // (key view, id), sorted by key — the category-prefix ranges.
  std::vector<std::pair<std::string_view, ConceptId>> vocab_;
  // Key by id for every id interned at publish time.
  std::vector<std::string_view> key_of_;
  std::vector<std::shared_ptr<const DocChunk>> chunks_;
  std::shared_ptr<const BucketCounts> bucket_totals_ =
      std::make_shared<const BucketCounts>();
  // Keeps the interned strings behind the views alive.
  std::shared_ptr<const ConceptInterner> interner_;
};

}  // namespace bivoc

#endif  // BIVOC_MINING_INDEX_SNAPSHOT_H_
