#include "mining/concept_interner.h"

#include <mutex>

namespace bivoc {

ConceptId ConceptInterner::Intern(std::string_view key) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(key);  // re-check: another writer may have won
  if (it != ids_.end()) return it->second;
  ConceptId id = static_cast<ConceptId>(keys_.size());
  keys_.emplace_back(key);
  ids_.emplace(std::string_view(keys_.back()), id);
  return id;
}

ConceptId ConceptInterner::Lookup(std::string_view key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(key);
  return it == ids_.end() ? kInvalidConceptId : it->second;
}

std::string_view ConceptInterner::KeyOf(ConceptId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return std::string_view(keys_[id]);
}

std::string_view ConceptInterner::CategoryOf(ConceptId id) const {
  std::string_view key = KeyOf(id);
  std::size_t slash = key.find('/');
  return slash == std::string_view::npos ? key : key.substr(0, slash + 1);
}

std::size_t ConceptInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return keys_.size();
}

std::vector<std::string_view> ConceptInterner::AllKeys() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string_view> out;
  out.reserve(keys_.size());
  for (const auto& key : keys_) out.emplace_back(key);
  return out;
}

}  // namespace bivoc
