#include "mining/posting_list.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "util/logging.h"

namespace bivoc {

namespace {

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

const uint8_t* GetVarint(const uint8_t* p, uint64_t* v) {
  uint64_t r = 0;
  unsigned shift = 0;
  while (*p & 0x80) {
    r |= static_cast<uint64_t>(*p & 0x7F) << shift;
    shift += 7;
    ++p;
  }
  r |= static_cast<uint64_t>(*p) << shift;
  *v = r;
  return p + 1;
}

std::size_t BitmapBytes(DocId first, DocId last) {
  return static_cast<std::size_t>((last - first) / 8) + 1;
}

// First set bit at or after `bit`. The caller guarantees one exists
// (every bitmap block's last bit is set).
uint64_t NextSetBit(const uint8_t* data, uint64_t bit) {
  std::size_t byte = static_cast<std::size_t>(bit >> 3);
  uint8_t cur =
      static_cast<uint8_t>(data[byte] & (0xFFu << (bit & 7)));
  while (cur == 0) cur = data[++byte];
  return (static_cast<uint64_t>(byte) << 3) +
         static_cast<uint64_t>(std::countr_zero(cur));
}

// 64 bits of `data` (nbytes long) starting at bit_off, zero-padded
// past the end. Byte-wise gather, so unaligned and boundary reads are
// safe.
uint64_t ReadBits64(const uint8_t* data, std::size_t nbytes,
                    uint64_t bit_off) {
  const std::size_t byte = static_cast<std::size_t>(bit_off >> 3);
  const unsigned shift = static_cast<unsigned>(bit_off & 7);
  if (byte >= nbytes) return 0;
  uint64_t lo = 0;
  const std::size_t n = std::min<std::size_t>(8, nbytes - byte);
  for (std::size_t i = 0; i < n; ++i) {
    lo |= static_cast<uint64_t>(data[byte + i]) << (8 * i);
  }
  uint64_t out = lo >> shift;
  if (shift != 0 && byte + 8 < nbytes) {
    out |= static_cast<uint64_t>(data[byte + 8]) << (64 - shift);
  }
  return out;
}

// Popcount of (a AND b) over doc positions [lo, hi], where each
// bitmap's bit 0 is its block's `first` id.
std::size_t CountAndRange(const uint8_t* a, std::size_t a_bytes,
                          DocId a_first, const uint8_t* b,
                          std::size_t b_bytes, DocId b_first, DocId lo,
                          DocId hi) {
  std::size_t count = 0;
  DocId pos = lo;
  for (;;) {
    uint64_t wa = ReadBits64(a, a_bytes, pos - a_first);
    uint64_t wb = ReadBits64(b, b_bytes, pos - b_first);
    uint64_t m = wa & wb;
    const DocId span = hi - pos;  // span + 1 positions remain
    if (span < 64) {
      if (span < 63) m &= (uint64_t{1} << (span + 1)) - 1;
      count += static_cast<std::size_t>(std::popcount(m));
      return count;
    }
    count += static_cast<std::size_t>(std::popcount(m));
    pos += 64;
  }
}

}  // namespace

// --- PostingList -----------------------------------------------------

std::size_t PostingList::num_bitmap_blocks() const {
  std::size_t n = 0;
  for (const BlockMeta& m : blocks_) {
    if (m.encoding == kBitmap) ++n;
  }
  return n;
}

PostingCursor PostingList::cursor() const { return PostingCursor(this); }

std::vector<DocId> PostingList::Decode() const {
  std::vector<DocId> out;
  out.reserve(size_);
  for (PostingCursor c = cursor(); c.Valid(); c.Next()) {
    out.push_back(c.Value());
  }
  return out;
}

bool PostingList::Contains(DocId doc) const {
  PostingCursor c = cursor();
  return c.SeekTo(doc) && c.Value() == doc;
}

// --- PostingCursor ---------------------------------------------------

PostingCursor::PostingCursor(const PostingList* list) : list_(list) {
  if (list_->blocks_.empty()) {
    list_ = nullptr;
    return;
  }
  EnterBlock(0);
}

void PostingCursor::EnterBlock(std::size_t b) {
  block_ = b;
  const PostingList::BlockMeta& m = list_->blocks_[b];
  value_ = m.first;
  ptr_ = list_->data_.data() + m.offset;
}

void PostingCursor::Next() {
  const PostingList::BlockMeta& m = list_->blocks_[block_];
  if (value_ == m.last) {
    // Block exhausted (the last id of every block is its `last`).
    ++block_;
    if (block_ < list_->blocks_.size()) EnterBlock(block_);
    return;
  }
  if (m.encoding == PostingList::kDelta) {
    uint64_t gap;
    ptr_ = GetVarint(ptr_, &gap);
    value_ += static_cast<DocId>(gap);
  } else {
    value_ = m.first + static_cast<DocId>(
                           NextSetBit(ptr_, value_ - m.first + 1));
  }
}

bool PostingCursor::SeekTo(DocId target) {
  if (!Valid()) return false;
  if (value_ >= target) return true;
  const PostingList::BlockMeta* blocks = list_->blocks_.data();
  const std::size_t n = list_->blocks_.size();
  if (blocks[block_].last < target) {
    // Gallop across the skip table: exponential probe, then binary
    // search for the first block whose last id reaches the target.
    std::size_t lo = block_ + 1;
    std::size_t step = 1;
    std::size_t hi = lo;
    while (hi < n && blocks[hi].last < target) {
      lo = hi + 1;
      hi += step;
      step *= 2;
    }
    hi = std::min(hi, n);
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (blocks[mid].last < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= n) {
      block_ = n;  // exhausted
      return false;
    }
    EnterBlock(lo);
    if (value_ >= target) return true;
  }
  // In-block: target is within (first, last] of the current block.
  const PostingList::BlockMeta& m = blocks[block_];
  if (m.encoding == PostingList::kBitmap) {
    value_ = m.first +
             static_cast<DocId>(NextSetBit(ptr_, target - m.first));
  } else {
    while (value_ < target) {
      uint64_t gap;
      ptr_ = GetVarint(ptr_, &gap);
      value_ += static_cast<DocId>(gap);
    }
  }
  return true;
}

// --- PostingListBuilder ----------------------------------------------

void PostingListBuilder::Add(DocId doc) {
  BIVOC_CHECK(!has_last_ || doc > last_);
  has_last_ = true;
  last_ = doc;
  block_.push_back(doc);
  if (block_.size() == PostingList::kBlockDocs) Flush();
}

void PostingListBuilder::AppendFrom(const PostingList& prev) {
  BIVOC_CHECK(!has_last_ && out_.blocks_.empty() && block_.empty());
  if (prev.blocks_.empty()) return;
  // Full blocks are immutable: share their bytes by copy. Only the
  // final block is re-fed through Add() so new docs can extend it.
  const std::size_t tail = prev.blocks_.size() - 1;
  if (tail > 0) {
    out_.blocks_.assign(prev.blocks_.begin(),
                        prev.blocks_.begin() + static_cast<long>(tail));
    out_.data_.assign(prev.data_.begin(),
                      prev.data_.begin() + prev.blocks_[tail].offset);
    for (std::size_t b = 0; b < tail; ++b) {
      out_.size_ += prev.blocks_[b].count;
    }
    has_last_ = true;
    last_ = prev.blocks_[tail - 1].last;
  }
  PostingCursor c = prev.cursor();
  BIVOC_CHECK(c.SeekTo(prev.blocks_[tail].first));
  for (; c.Valid(); c.Next()) Add(c.Value());
}

void PostingListBuilder::Flush() {
  if (block_.empty()) return;
  PostingList::BlockMeta meta;
  meta.first = block_.front();
  meta.last = block_.back();
  meta.count = static_cast<uint16_t>(block_.size());
  meta.offset = static_cast<uint32_t>(out_.data_.size());
  // Candidate A: gaps as varints (the first id lives in the meta).
  scratch_.clear();
  for (std::size_t i = 1; i < block_.size(); ++i) {
    PutVarint(&scratch_, block_[i] - block_[i - 1]);
  }
  // Candidate B: a bitmap over the block's span. Strictly smaller
  // wins, so sparse single-doc blocks always stay delta-encoded.
  const std::size_t bitmap_bytes = BitmapBytes(meta.first, meta.last);
  if (bitmap_bytes < scratch_.size()) {
    meta.encoding = PostingList::kBitmap;
    out_.data_.resize(out_.data_.size() + bitmap_bytes, 0);
    uint8_t* bits = out_.data_.data() + meta.offset;
    for (DocId d : block_) {
      const DocId bit = d - meta.first;
      bits[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
    }
  } else {
    meta.encoding = PostingList::kDelta;
    out_.data_.insert(out_.data_.end(), scratch_.begin(), scratch_.end());
  }
  out_.blocks_.push_back(meta);
  out_.size_ += block_.size();
  block_.clear();
}

PostingList PostingListBuilder::Build() {
  Flush();
  PostingList out = std::move(out_);
  out_ = PostingList();
  has_last_ = false;
  last_ = 0;
  return out;
}

// --- kernels ---------------------------------------------------------

std::size_t IntersectCount(const PostingList& a, const PostingList& b) {
  if (a.empty() || b.empty()) return 0;
  PostingCursor ca = a.cursor();
  PostingCursor cb = b.cursor();
  std::size_t count = 0;
  while (ca.Valid() && cb.Valid()) {
    const PostingList::BlockMeta& ma = a.blocks_[ca.block_];
    const PostingList::BlockMeta& mb = b.blocks_[cb.block_];
    if (ma.encoding == PostingList::kBitmap &&
        mb.encoding == PostingList::kBitmap) {
      // Dense ∩ dense: AND the overlapping span directly. Both
      // cursors sit on unconsumed ids, so every bit in [lo, hi] is
      // still pending on both sides.
      const DocId lo = std::max(ca.Value(), cb.Value());
      const DocId hi = std::min(ma.last, mb.last);
      if (lo <= hi) {
        count += CountAndRange(
            ca.ptr_, BitmapBytes(ma.first, ma.last), ma.first, cb.ptr_,
            BitmapBytes(mb.first, mb.last), mb.first, lo, hi);
        if (hi == std::numeric_limits<DocId>::max()) break;
        if (!ca.SeekTo(hi + 1) || !cb.SeekTo(hi + 1)) break;
        continue;
      }
    }
    const DocId va = ca.Value();
    const DocId vb = cb.Value();
    if (va == vb) {
      ++count;
      ca.Next();
      cb.Next();
    } else if (va < vb) {
      if (!ca.SeekTo(vb)) break;
    } else {
      if (!cb.SeekTo(va)) break;
    }
  }
  return count;
}

std::vector<DocId> Intersect(const PostingList& a, const PostingList& b,
                             std::size_t limit) {
  std::vector<DocId> out;
  if (a.empty() || b.empty() || limit == 0) return out;
  PostingCursor ca = a.cursor();
  PostingCursor cb = b.cursor();
  while (ca.Valid() && cb.Valid()) {
    const DocId va = ca.Value();
    const DocId vb = cb.Value();
    if (va == vb) {
      out.push_back(va);
      if (out.size() >= limit) break;
      ca.Next();
      cb.Next();
    } else if (va < vb) {
      if (!ca.SeekTo(vb)) break;
    } else {
      if (!cb.SeekTo(va)) break;
    }
  }
  return out;
}

std::size_t IntersectCountMany(
    const std::vector<const PostingList*>& lists) {
  if (lists.empty()) return 0;
  std::vector<PostingCursor> cursors;
  cursors.reserve(lists.size());
  for (const PostingList* l : lists) {
    if (l == nullptr || l->empty()) return 0;
    cursors.push_back(l->cursor());
  }
  if (cursors.size() == 1) return lists[0]->size();
  // Leapfrog join: every cursor chases the current maximum; when all
  // agree, that id is in the intersection.
  std::size_t count = 0;
  DocId target = cursors[0].Value();
  for (;;) {
    bool aligned = true;
    for (PostingCursor& c : cursors) {
      if (!c.SeekTo(target)) return count;
      if (c.Value() > target) {
        target = c.Value();
        aligned = false;
        break;
      }
    }
    if (!aligned) continue;
    ++count;
    cursors[0].Next();
    if (!cursors[0].Valid()) return count;
    target = cursors[0].Value();
  }
}

PostingList UnionLists(const PostingList& a, const PostingList& b) {
  PostingListBuilder builder;
  PostingCursor ca = a.cursor();
  PostingCursor cb = b.cursor();
  while (ca.Valid() || cb.Valid()) {
    if (!cb.Valid() || (ca.Valid() && ca.Value() < cb.Value())) {
      builder.Add(ca.Value());
      ca.Next();
    } else if (!ca.Valid() || cb.Value() < ca.Value()) {
      builder.Add(cb.Value());
      cb.Next();
    } else {
      builder.Add(ca.Value());
      ca.Next();
      cb.Next();
    }
  }
  return builder.Build();
}

std::size_t UnionCount(const PostingList& a, const PostingList& b) {
  return a.size() + b.size() - IntersectCount(a, b);
}

}  // namespace bivoc
