#include "mining/stats.h"

#include <algorithm>
#include <cmath>

namespace bivoc {

Interval WilsonInterval(std::size_t successes, std::size_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  double n = static_cast<double>(trials);
  double p = static_cast<double>(successes) / n;
  double z2 = z * z;
  double denom = 1.0 + z2 / n;
  double center = (p + z2 / (2.0 * n)) / denom;
  double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  Interval out;
  out.lower = std::max(0.0, center - half);
  out.upper = std::min(1.0, center + half);
  return out;
}

double PointLift(std::size_t n_cell, std::size_t n_ver, std::size_t n_hor,
                 std::size_t n) {
  if (n == 0 || n_ver == 0 || n_hor == 0) return 0.0;
  return (static_cast<double>(n_cell) * static_cast<double>(n)) /
         (static_cast<double>(n_ver) * static_cast<double>(n_hor));
}

double LowerBoundLift(std::size_t n_cell, std::size_t n_ver,
                      std::size_t n_hor, std::size_t n, double z) {
  if (n == 0 || n_ver == 0 || n_hor == 0 || n_cell == 0) return 0.0;
  // Conservative composition: lowest plausible joint density over the
  // highest plausible marginal densities.
  double cell_lo = WilsonInterval(n_cell, n, z).lower;
  double ver_hi = WilsonInterval(n_ver, n, z).upper;
  double hor_hi = WilsonInterval(n_hor, n, z).upper;
  if (ver_hi <= 0.0 || hor_hi <= 0.0) return 0.0;
  return cell_lo / (ver_hi * hor_hi);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double StudentTCdf(double t, double df) {
  if (df <= 0.0) return 0.5;
  if (df > 100.0) return NormalCdf(t);
  // Normal approximation with a second-order df correction
  // (Peizer-Pratt style): accurate to ~1e-3 for df >= 5, which covers
  // the experiment sizes here.
  double g = (df - 1.5) / ((df - 1.0) * (df - 1.0));
  double z = std::sqrt(std::max(0.0, std::log(1.0 + t * t / df) *
                                         (df - 1.5 - g))) *
             (t < 0 ? -1.0 : 1.0);
  if (!std::isfinite(z)) return t > 0 ? 1.0 : 0.0;
  return NormalCdf(z);
}

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  TTestResult out;
  if (a.size() < 2 || b.size() < 2) return out;
  auto mean_var = [](const std::vector<double>& v, double* mean,
                     double* var) {
    double m = 0.0;
    for (double x : v) m += x;
    m /= static_cast<double>(v.size());
    double s2 = 0.0;
    for (double x : v) s2 += (x - m) * (x - m);
    s2 /= static_cast<double>(v.size() - 1);
    *mean = m;
    *var = s2;
  };
  double ma, va, mb, vb;
  mean_var(a, &ma, &va);
  mean_var(b, &mb, &vb);
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  double se2 = va / na + vb / nb;
  if (se2 <= 0.0) {
    out.t = ma == mb ? 0.0 : (ma > mb ? 1e9 : -1e9);
    out.df = na + nb - 2.0;
    out.p_two_sided = ma == mb ? 1.0 : 0.0;
    return out;
  }
  out.t = (ma - mb) / std::sqrt(se2);
  double num = se2 * se2;
  double den = (va / na) * (va / na) / (na - 1.0) +
               (vb / nb) * (vb / nb) / (nb - 1.0);
  out.df = den > 0.0 ? num / den : na + nb - 2.0;
  double cdf = StudentTCdf(std::abs(out.t), out.df);
  out.p_two_sided = std::max(0.0, std::min(1.0, 2.0 * (1.0 - cdf)));
  return out;
}

double ChiSquare2x2(std::size_t a, std::size_t b, std::size_t c,
                    std::size_t d) {
  double n = static_cast<double>(a + b + c + d);
  if (n == 0.0) return 0.0;
  double ad = static_cast<double>(a) * static_cast<double>(d);
  double bc = static_cast<double>(b) * static_cast<double>(c);
  double r1 = static_cast<double>(a + b);
  double r2 = static_cast<double>(c + d);
  double c1 = static_cast<double>(a + c);
  double c2 = static_cast<double>(b + d);
  if (r1 == 0 || r2 == 0 || c1 == 0 || c2 == 0) return 0.0;
  double diff = ad - bc;
  return n * diff * diff / (r1 * r2 * c1 * c2);
}

}  // namespace bivoc
