#ifndef BIVOC_MINING_CONCEPT_INTERNER_H_
#define BIVOC_MINING_CONCEPT_INTERNER_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bivoc {

// Dense integer id for an interned concept key. Postings, doc->concept
// lists and association pairs carry these instead of full strings like
// "value selling/just N dollars", so hot-path lookups are array reads
// rather than string hashes.
using ConceptId = uint32_t;
inline constexpr ConceptId kInvalidConceptId = 0xFFFFFFFFu;

// Append-only concept vocabulary mapping keys ("category/name") to
// dense ConceptIds in first-seen order. Thread-safe: lookups of known
// keys take a shared lock; first-time interning takes an exclusive
// lock. Interned strings live in a deque and are never moved or freed,
// so the string_views handed out stay valid for the interner's
// lifetime — IndexSnapshots share ownership of the interner to pin it.
class ConceptInterner {
 public:
  ConceptInterner() = default;
  ConceptInterner(const ConceptInterner&) = delete;
  ConceptInterner& operator=(const ConceptInterner&) = delete;

  // Returns the id for `key`, interning it on first sight.
  ConceptId Intern(std::string_view key);

  // Id of an already-interned key, or kInvalidConceptId.
  ConceptId Lookup(std::string_view key) const;

  // The interned key; id must be < size(). The view stays valid for
  // the interner's lifetime.
  std::string_view KeyOf(ConceptId id) const;

  // Category prefix of the key up to and including '/' ("discount/");
  // the whole key when it carries no category separator.
  std::string_view CategoryOf(ConceptId id) const;

  std::size_t size() const;

  // Stable copy of all interned keys, indexed by ConceptId — the
  // vocabulary a snapshot publication freezes.
  std::vector<std::string_view> AllKeys() const;

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> keys_;  // deque: element addresses are stable
  std::unordered_map<std::string_view, ConceptId> ids_;  // views into keys_
};

}  // namespace bivoc

#endif  // BIVOC_MINING_CONCEPT_INTERNER_H_
