#ifndef BIVOC_MINING_POSTING_LIST_H_
#define BIVOC_MINING_POSTING_LIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bivoc {

// Dense document id. Doc ids are assigned contiguously from 0 by
// ConceptIndex in admission order.
using DocId = std::size_t;

// The codec packs doc-id gaps into LEB128 varints (≤ 10 bytes each)
// and bitmap positions into bit offsets relative to a block's first
// id. Both assume DocId is an unsigned integer no wider than 64 bits;
// a signed or wider DocId would corrupt the gap arithmetic silently.
static_assert(static_cast<DocId>(0) < static_cast<DocId>(-1),
              "posting-list codec requires an unsigned DocId");
static_assert(sizeof(DocId) <= 8,
              "posting-list codec requires DocId <= 64 bits");

class PostingCursor;
class PostingListBuilder;

// An immutable block-compressed sorted set of DocIds — the posting
// representation inside IndexSnapshot since DESIGN.md §13.
//
// Doc ids are split into blocks of up to kBlockDocs entries. Each
// block independently picks the smaller of two encodings (the roaring
// idea, applied per block instead of per 2^16 value range):
//
//   kDelta   sorted gaps as LEB128 varints — wins for sparse lists;
//   kBitmap  one bit per id over [first, last] — wins for dense runs.
//
// A per-block skip table (first/last id, byte offset) lives outside
// the byte stream, so SeekTo() binary-searches blocks without
// touching compressed data and intersections gallop over whole blocks
// they cannot match. Lists are built once by PostingListBuilder and
// never mutated; publication reuses a previous list's full blocks
// byte-for-byte and re-encodes only the partial tail block.
class PostingList {
 public:
  static constexpr std::size_t kBlockDocs = 128;
  enum Encoding : uint8_t { kDelta = 0, kBitmap = 1 };

  PostingList() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Compressed footprint: byte stream plus the skip table.
  std::size_t byte_size() const {
    return data_.size() + blocks_.size() * sizeof(BlockMeta);
  }
  std::size_t num_blocks() const { return blocks_.size(); }
  std::size_t num_bitmap_blocks() const;

  // Cursor positioned on the first id; invalid for an empty list.
  PostingCursor cursor() const;

  // Materializes the full id vector (tests, drill-down tails). Avoid
  // on hot paths — that is what the cursor exists for.
  std::vector<DocId> Decode() const;

  bool Contains(DocId doc) const;

 private:
  friend class PostingCursor;
  friend class PostingListBuilder;
  friend std::size_t IntersectCount(const PostingList&, const PostingList&);

  struct BlockMeta {
    DocId first = 0;
    DocId last = 0;
    uint32_t offset = 0;  // into data_ (caps one list's stream at 4 GiB)
    uint16_t count = 0;
    uint8_t encoding = kDelta;
  };

  std::vector<BlockMeta> blocks_;
  std::vector<uint8_t> data_;
  std::size_t size_ = 0;
};

// Forward iterator with skip support over one PostingList. Holds raw
// pointers into the list: keep the list (in practice, the
// IndexSnapshot that owns it) alive while cursors are outstanding.
class PostingCursor {
 public:
  PostingCursor() = default;  // !Valid()

  bool Valid() const {
    return list_ != nullptr && block_ < list_->blocks_.size();
  }
  // Current doc id; only meaningful while Valid().
  DocId Value() const { return value_; }
  void Next();
  // Positions the cursor on the first id >= target (never moves
  // backwards); returns Valid(). Gallops across the skip table, so a
  // long jump costs O(log blocks) plus one in-block scan.
  bool SeekTo(DocId target);

 private:
  friend class PostingList;
  friend std::size_t IntersectCount(const PostingList&, const PostingList&);

  explicit PostingCursor(const PostingList* list);
  void EnterBlock(std::size_t b);

  const PostingList* list_ = nullptr;
  std::size_t block_ = 0;
  DocId value_ = 0;
  const uint8_t* ptr_ = nullptr;  // kDelta: next gap; kBitmap: bitmap base
};

// Builds a PostingList from strictly ascending Add() calls.
class PostingListBuilder {
 public:
  // Docs must be strictly ascending across the whole build (checked).
  void Add(DocId doc);
  // Seeds the builder with an existing list: full blocks are copied
  // byte-for-byte, the partial tail block is re-fed so subsequent
  // Add() calls extend it. Must precede any Add() on this builder.
  void AppendFrom(const PostingList& prev);
  // Finalizes and resets the builder for reuse.
  PostingList Build();

 private:
  void Flush();

  PostingList out_;
  std::vector<DocId> block_;      // pending docs of the open block
  std::vector<uint8_t> scratch_;  // varint candidate encoding
  bool has_last_ = false;
  DocId last_ = 0;
};

// A non-owning read handle on a concept's postings — what
// IndexSnapshot hands out instead of a vector reference. Valid for as
// long as the snapshot it came from is held.
class PostingsView {
 public:
  PostingsView() = default;
  explicit PostingsView(const PostingList* list) : list_(list) {}

  std::size_t size() const { return list_ != nullptr ? list_->size() : 0; }
  bool empty() const { return size() == 0; }
  PostingCursor cursor() const {
    return list_ != nullptr ? list_->cursor() : PostingCursor();
  }
  std::vector<DocId> ToVector() const {
    return list_ != nullptr ? list_->Decode() : std::vector<DocId>();
  }
  const PostingList* list() const { return list_; }

 private:
  const PostingList* list_ = nullptr;
};

// --- set kernels -----------------------------------------------------

// |a ∩ b| by galloping merge. When both cursors sit in bitmap blocks
// whose spans overlap, the kernel drops to a shifted AND + popcount
// over the overlap — dense ∩ dense costs ~1 op per 64 candidate ids.
std::size_t IntersectCount(const PostingList& a, const PostingList& b);

// First `limit` ids of a ∩ b in ascending order — the bounded
// drill-down. Streams through cursors; never materializes either side.
std::vector<DocId> Intersect(const PostingList& a, const PostingList& b,
                             std::size_t limit);

// |∩ lists| by leapfrog join over all cursors. Empty input or any
// null/empty list yields 0.
std::size_t IntersectCountMany(const std::vector<const PostingList*>& lists);

// a ∪ b as a freshly encoded list (sliding-window and merge tooling).
PostingList UnionLists(const PostingList& a, const PostingList& b);

// |a ∪ b| via inclusion–exclusion on the intersection kernel.
std::size_t UnionCount(const PostingList& a, const PostingList& b);

}  // namespace bivoc

#endif  // BIVOC_MINING_POSTING_LIST_H_
