#ifndef BIVOC_MINING_REPORT_H_
#define BIVOC_MINING_REPORT_H_

#include <string>
#include <vector>

#include "mining/association.h"
#include "mining/relative_frequency.h"

namespace bivoc {

// Plain-text report rendering — the terminal analogue of the Fig. 4
// association view, used by examples and the bench harnesses to print
// paper-style tables.

// Generic fixed-width grid; first row is the header.
std::string RenderGrid(const std::vector<std::vector<std::string>>& rows);

// Association cross-table with one of: "count", "point_lift",
// "lower_lift", "row_share" per cell.
std::string RenderAssociationTable(const AssociationTable& table,
                                   const std::string& metric = "count");

// Tables III/IV format: each row shows n_row and the row-conditional
// split over the columns as percentages.
std::string RenderConditionalTable(const AssociationTable& table);

// Relevancy listing.
std::string RenderRelevancy(const std::vector<RelevancyItem>& items);

// Drill-down: one line per document id with its concepts.
std::string RenderDrillDown(const IndexSnapshot& snapshot,
                            const std::vector<DocId>& docs,
                            std::size_t limit = 10);

}  // namespace bivoc

#endif  // BIVOC_MINING_REPORT_H_
