#ifndef BIVOC_MINING_ASSOCIATION_H_
#define BIVOC_MINING_ASSOCIATION_H_

#include <string>
#include <vector>

#include "mining/index_snapshot.h"

namespace bivoc {

// One cell of the two-dimensional association analysis (paper §IV-D.2,
// Table II, Fig. 4): co-occurrence of a vertical and a horizontal
// concept with the paper's association indices.
struct AssociationCell {
  std::string row_key;
  std::string col_key;
  std::size_t n_cell = 0;  // docs with both
  std::size_t n_row = 0;   // docs with row concept
  std::size_t n_col = 0;   // docs with col concept
  std::size_t n = 0;       // all docs
  double point_lift = 0.0;   // Eqn 4 point estimate
  double lower_lift = 0.0;   // left terminal of the interval estimate
  // Row-conditional share n_cell / n_row — the percentage format of
  // Tables III and IV.
  double row_share = 0.0;
};

struct AssociationTable {
  std::vector<std::string> row_keys;
  std::vector<std::string> col_keys;
  // row-major: cells[r * col_keys.size() + c].
  std::vector<AssociationCell> cells;

  const AssociationCell& cell(std::size_t r, std::size_t c) const {
    return cells[r * col_keys.size() + c];
  }
};

// Fills the full cross table for the given concept keys.
AssociationTable TwoDimensionalAssociation(
    const IndexSnapshot& snapshot, const std::vector<std::string>& row_keys,
    const std::vector<std::string>& col_keys);

// Strongest associations across a whole category pair, ranked by the
// robust lower-bound lift (what the Fig. 4 view sorts by).
std::vector<AssociationCell> TopAssociations(const IndexSnapshot& snapshot,
                                             const std::string& row_prefix,
                                             const std::string& col_prefix,
                                             std::size_t limit,
                                             std::size_t min_cell_count = 3);

}  // namespace bivoc

#endif  // BIVOC_MINING_ASSOCIATION_H_
