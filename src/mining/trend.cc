#include "mining/trend.h"

#include <algorithm>

namespace bivoc {

std::vector<TrendPoint> TrendPointsFromCounts(
    const IndexSnapshot::BucketCounts& totals,
    const IndexSnapshot::BucketCounts& counts) {
  std::vector<TrendPoint> out;
  out.reserve(totals.size());
  std::size_t j = 0;
  for (const auto& [bucket, total] : totals) {
    while (j < counts.size() && counts[j].first < bucket) ++j;
    TrendPoint p;
    p.bucket = bucket;
    p.total = total;
    p.count = (j < counts.size() && counts[j].first == bucket)
                  ? counts[j].second
                  : 0;
    p.share = total > 0
                  ? static_cast<double>(p.count) / static_cast<double>(total)
                  : 0.0;
    out.push_back(p);
  }
  return out;
}

std::vector<TrendPoint> ConceptTrend(const IndexSnapshot& snapshot,
                                     const std::string& key) {
  return TrendPointsFromCounts(snapshot.BucketTotals(),
                               snapshot.BucketCountsOf(snapshot.Resolve(key)));
}

double TrendSlope(const std::vector<TrendPoint>& points) {
  if (points.size() < 2) return 0.0;
  double n = static_cast<double>(points.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (const auto& p : points) {
    double x = static_cast<double>(p.bucket);
    sx += x;
    sy += p.share;
    sxx += x * x;
    sxy += x * p.share;
  }
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

std::vector<TrendSummary> RisingConcepts(const IndexSnapshot& snapshot,
                                         const std::string& prefix,
                                         std::size_t limit,
                                         std::size_t min_count) {
  std::vector<TrendSummary> out;
  // Publish-time aggregates: period totals and per-concept bucket
  // counts are table reads, so each candidate costs O(periods) instead
  // of a posting walk (and no pass over the doc store at all).
  const auto& totals = snapshot.BucketTotals();
  for (ConceptId id : snapshot.IdsWithPrefix(prefix)) {
    std::size_t total = snapshot.CountId(id);
    if (total < min_count) continue;
    TrendSummary s;
    s.key = std::string(snapshot.KeyOf(id));
    s.total_count = total;
    s.slope = TrendSlope(
        TrendPointsFromCounts(totals, snapshot.BucketCountsOf(id)));
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const TrendSummary& a, const TrendSummary& b) {
              if (a.slope != b.slope) return a.slope > b.slope;
              return a.key < b.key;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace bivoc
