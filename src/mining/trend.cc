#include "mining/trend.h"

#include <algorithm>

namespace bivoc {

std::vector<TrendPoint> ConceptTrend(const ConceptIndex& index,
                                     const std::string& key) {
  std::map<int64_t, std::size_t> totals;
  for (DocId d = 0; d < index.num_documents(); ++d) {
    int64_t bucket = index.TimeBucketOf(d);
    if (bucket == kNoTimeBucket) continue;
    ++totals[bucket];
  }
  std::map<int64_t, std::size_t> counts;
  for (DocId d : index.Postings(key)) {
    int64_t bucket = index.TimeBucketOf(d);
    if (bucket == kNoTimeBucket) continue;
    ++counts[bucket];
  }
  std::vector<TrendPoint> out;
  out.reserve(totals.size());
  for (const auto& [bucket, total] : totals) {
    TrendPoint p;
    p.bucket = bucket;
    p.total = total;
    auto it = counts.find(bucket);
    p.count = it == counts.end() ? 0 : it->second;
    p.share = total > 0 ? static_cast<double>(p.count) /
                              static_cast<double>(total)
                        : 0.0;
    out.push_back(p);
  }
  return out;
}

double TrendSlope(const std::vector<TrendPoint>& points) {
  if (points.size() < 2) return 0.0;
  double n = static_cast<double>(points.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (const auto& p : points) {
    double x = static_cast<double>(p.bucket);
    sx += x;
    sy += p.share;
    sxx += x * x;
    sxy += x * p.share;
  }
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

std::vector<TrendSummary> RisingConcepts(const ConceptIndex& index,
                                         const std::string& prefix,
                                         std::size_t limit,
                                         std::size_t min_count) {
  std::vector<TrendSummary> out;
  for (const auto& key : index.Keys(prefix)) {
    std::size_t total = index.Count(key);
    if (total < min_count) continue;
    TrendSummary s;
    s.key = key;
    s.total_count = total;
    s.slope = TrendSlope(ConceptTrend(index, key));
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const TrendSummary& a, const TrendSummary& b) {
              if (a.slope != b.slope) return a.slope > b.slope;
              return a.key < b.key;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace bivoc
