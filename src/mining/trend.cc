#include "mining/trend.h"

#include <algorithm>

namespace bivoc {

namespace {
// Docs per period across the whole snapshot — shared by every concept
// trend computed from the same snapshot.
std::map<int64_t, std::size_t> BucketTotals(const IndexSnapshot& snapshot) {
  std::map<int64_t, std::size_t> totals;
  for (DocId d = 0; d < snapshot.num_documents(); ++d) {
    int64_t bucket = snapshot.TimeBucketOf(d);
    if (bucket == kNoTimeBucket) continue;
    ++totals[bucket];
  }
  return totals;
}

std::vector<TrendPoint> TrendFromTotals(
    const IndexSnapshot& snapshot, ConceptId id,
    const std::map<int64_t, std::size_t>& totals) {
  std::map<int64_t, std::size_t> counts;
  for (DocId d : snapshot.PostingsId(id)) {
    int64_t bucket = snapshot.TimeBucketOf(d);
    if (bucket == kNoTimeBucket) continue;
    ++counts[bucket];
  }
  std::vector<TrendPoint> out;
  out.reserve(totals.size());
  for (const auto& [bucket, total] : totals) {
    TrendPoint p;
    p.bucket = bucket;
    p.total = total;
    auto it = counts.find(bucket);
    p.count = it == counts.end() ? 0 : it->second;
    p.share = total > 0 ? static_cast<double>(p.count) /
                              static_cast<double>(total)
                        : 0.0;
    out.push_back(p);
  }
  return out;
}
}  // namespace

std::vector<TrendPoint> ConceptTrend(const IndexSnapshot& snapshot,
                                     const std::string& key) {
  return TrendFromTotals(snapshot, snapshot.Resolve(key),
                         BucketTotals(snapshot));
}

double TrendSlope(const std::vector<TrendPoint>& points) {
  if (points.size() < 2) return 0.0;
  double n = static_cast<double>(points.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (const auto& p : points) {
    double x = static_cast<double>(p.bucket);
    sx += x;
    sy += p.share;
    sxx += x * x;
    sxy += x * p.share;
  }
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

std::vector<TrendSummary> RisingConcepts(const IndexSnapshot& snapshot,
                                         const std::string& prefix,
                                         std::size_t limit,
                                         std::size_t min_count) {
  std::vector<TrendSummary> out;
  // One pass over the doc store for the period totals, instead of one
  // pass per candidate concept.
  auto totals = BucketTotals(snapshot);
  for (ConceptId id : snapshot.IdsWithPrefix(prefix)) {
    std::size_t total = snapshot.CountId(id);
    if (total < min_count) continue;
    TrendSummary s;
    s.key = std::string(snapshot.KeyOf(id));
    s.total_count = total;
    s.slope = TrendSlope(TrendFromTotals(snapshot, id, totals));
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const TrendSummary& a, const TrendSummary& b) {
              if (a.slope != b.slope) return a.slope > b.slope;
              return a.key < b.key;
            });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace bivoc
