#ifndef BIVOC_MINING_RELATIVE_FREQUENCY_H_
#define BIVOC_MINING_RELATIVE_FREQUENCY_H_

#include <string>
#include <vector>

#include "mining/index_snapshot.h"

namespace bivoc {

// Relevancy analysis with relative frequency (paper §IV-D.1): compares
// the distribution of concepts inside a featured subset (documents
// containing `feature_key`) against the whole corpus, surfacing
// concepts over-represented in the subset.
struct RelevancyItem {
  std::string key;
  std::size_t subset_count = 0;
  std::size_t corpus_count = 0;
  double subset_freq = 0.0;   // subset_count / |subset|
  double corpus_freq = 0.0;   // corpus_count / |corpus|
  double relative = 0.0;      // subset_freq / corpus_freq
};

struct RelevancyOptions {
  // Only concepts whose key starts with this prefix (e.g. a category).
  std::string key_prefix;
  // Concepts must occur at least this often in the subset.
  std::size_t min_subset_count = 3;
  std::size_t limit = 50;
};

// Items sorted by descending relative frequency. The feature key itself
// is excluded from the output.
std::vector<RelevancyItem> RelevancyAnalysis(const IndexSnapshot& snapshot,
                                             const std::string& feature_key,
                                             RelevancyOptions options = {});

}  // namespace bivoc

#endif  // BIVOC_MINING_RELATIVE_FREQUENCY_H_
