#ifndef BIVOC_TENANT_REGISTRY_H_
#define BIVOC_TENANT_REGISTRY_H_

#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tenant/tenant.h"
#include "util/result.h"

namespace bivoc {

// The control-plane source of truth for tenants: configs keyed by id,
// mutable at runtime (POST /v1/admin/tenant) and loadable from a JSON
// manifest at boot. Resolve() is the hot-path entry — API key to
// (tenant, scope) — and deliberately walks *every* key of every
// tenant with a constant-time comparison, so neither the timing of a
// rejection nor of a match leaks which tenant a guessed key almost
// hit. Thread-safe.
class TenantRegistry {
 public:
  struct Resolution {
    std::string tenant_id;
    bool admin = false;
    bool suspended = false;
  };

  // Validates and inserts; kAlreadyExists on a duplicate id.
  Status Create(TenantConfig config);
  // Replaces the stored config; kNotFound for unknown ids. The id in
  // `config` must match `id`.
  Status Update(const std::string& id, TenantConfig config);
  Status SetSuspended(const std::string& id, bool suspended);

  // API-key lookup (scans all keys of all tenants, constant-time per
  // comparison); nullopt on no match.
  std::optional<Resolution> Resolve(std::string_view api_key) const;

  Result<TenantConfig> Get(const std::string& id) const;
  bool Contains(const std::string& id) const;
  std::vector<std::string> TenantIds() const;  // sorted
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<TenantConfig> tenants_;  // insertion order; ids unique
};

}  // namespace bivoc

#endif  // BIVOC_TENANT_REGISTRY_H_
