#ifndef BIVOC_TENANT_QUOTA_H_
#define BIVOC_TENANT_QUOTA_H_

#include <cstdint>
#include <functional>
#include <mutex>

namespace bivoc {

// Admission primitives of the multi-tenant gateway (DESIGN.md §16):
// a token bucket bounds each tenant's sustained request *rate* and a
// concurrency budget bounds how many of its requests occupy workers
// at once. Both reject instead of queueing — a flooding tenant gets
// 429s while everyone else's latency stays flat, which is the fairness
// property test_tenant.cpp pins down.

// Classic token bucket: `rate_per_s` tokens accrue continuously up to
// `burst`; a request costs one token. Thread-safe; the clock is
// injectable so tests step time deterministically.
class TokenBucket {
 public:
  struct Options {
    double rate_per_s = 50.0;
    double burst = 100.0;
    // Monotonic milliseconds; defaults to std::chrono::steady_clock.
    std::function<int64_t()> clock_ms;
  };

  TokenBucket() : TokenBucket(Options{}) {}
  explicit TokenBucket(Options options);

  // Takes `cost` tokens if available. A zero/negative rate never
  // admits (a suspended-quota tenant); an infinite burst never rejects.
  bool TryAcquire(double cost = 1.0);

  // Milliseconds until `cost` tokens will have accrued — the
  // Retry-After hint sent with a 429 (>= 1 whenever rejecting).
  int64_t RetryAfterMs(double cost = 1.0) const;

  // Live quota update (POST /v1/admin/tenant update): swaps rate and
  // burst in place; accrued tokens are clamped to the new burst.
  void Configure(double rate_per_s, double burst);

  double tokens() const;

 private:
  void RefillLocked(int64_t now_ms) const;
  int64_t NowMs() const;

  Options opts_;
  mutable std::mutex mu_;
  mutable double tokens_;
  mutable int64_t last_refill_ms_ = 0;
};

// Counting semaphore that rejects instead of blocking: at most `max`
// requests of one tenant run concurrently; the overflow is shed with
// 429 before it can occupy a shared server worker. max <= 0 means
// unlimited.
class ConcurrencyBudget {
 public:
  explicit ConcurrencyBudget(int max = 0) : max_(max) {}

  bool TryEnter();
  void Exit();

  int in_flight() const;
  int max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_;
  }
  // Live update; in-flight requests above a lowered cap drain
  // naturally (TryEnter just rejects until they Exit).
  void set_max(int max) {
    std::lock_guard<std::mutex> lock(mu_);
    max_ = max;
  }

  // RAII wrapper: evaluates to false when the budget was exhausted.
  class Guard {
   public:
    explicit Guard(ConcurrencyBudget* budget)
        : budget_(budget), admitted_(budget->TryEnter()) {}
    ~Guard() {
      if (admitted_) budget_->Exit();
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    explicit operator bool() const { return admitted_; }

   private:
    ConcurrencyBudget* budget_;
    bool admitted_;
  };

 private:
  int max_;
  mutable std::mutex mu_;
  int in_flight_ = 0;
};

}  // namespace bivoc

#endif  // BIVOC_TENANT_QUOTA_H_
