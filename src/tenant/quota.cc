#include "tenant/quota.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace bivoc {

TokenBucket::TokenBucket(Options options)
    : opts_(std::move(options)), tokens_(opts_.burst) {
  last_refill_ms_ = NowMs();
}

int64_t TokenBucket::NowMs() const {
  if (opts_.clock_ms) return opts_.clock_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TokenBucket::RefillLocked(int64_t now_ms) const {
  if (now_ms <= last_refill_ms_) return;
  const double elapsed_s =
      static_cast<double>(now_ms - last_refill_ms_) / 1000.0;
  tokens_ = std::min(opts_.burst, tokens_ + elapsed_s * opts_.rate_per_s);
  last_refill_ms_ = now_ms;
}

bool TokenBucket::TryAcquire(double cost) {
  if (opts_.rate_per_s <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(NowMs());
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

int64_t TokenBucket::RetryAfterMs(double cost) const {
  if (opts_.rate_per_s <= 0.0) return 1000;  // quota off: try much later
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(NowMs());
  const double missing = cost - tokens_;
  if (missing <= 0.0) return 1;
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(missing / opts_.rate_per_s * 1000.0)));
}

void TokenBucket::Configure(double rate_per_s, double burst) {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(NowMs());
  opts_.rate_per_s = rate_per_s;
  opts_.burst = burst;
  tokens_ = std::min(tokens_, burst);
}

double TokenBucket::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked(NowMs());
  return tokens_;
}

bool ConcurrencyBudget::TryEnter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (max_ > 0 && in_flight_ >= max_) return false;
  ++in_flight_;
  return true;
}

void ConcurrencyBudget::Exit() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
}

int ConcurrencyBudget::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

}  // namespace bivoc
