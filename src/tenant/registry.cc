#include "tenant/registry.h"

#include <algorithm>

#include "util/string_util.h"

namespace bivoc {

Status TenantRegistry::Create(TenantConfig config) {
  BIVOC_RETURN_NOT_OK(ValidateTenantConfig(config));
  std::lock_guard<std::mutex> lock(mu_);
  for (const TenantConfig& existing : tenants_) {
    if (existing.id == config.id) {
      return Status::AlreadyExists("tenant \"" + config.id +
                                   "\" already exists");
    }
  }
  tenants_.push_back(std::move(config));
  return Status::OK();
}

Status TenantRegistry::Update(const std::string& id, TenantConfig config) {
  BIVOC_RETURN_NOT_OK(ValidateTenantConfig(config));
  if (config.id != id) {
    return Status::InvalidArgument("tenant id is immutable (\"" + id +
                                   "\" vs \"" + config.id + "\")");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (TenantConfig& existing : tenants_) {
    if (existing.id == id) {
      existing = std::move(config);
      return Status::OK();
    }
  }
  return Status::NotFound("no tenant \"" + id + "\"");
}

Status TenantRegistry::SetSuspended(const std::string& id, bool suspended) {
  std::lock_guard<std::mutex> lock(mu_);
  for (TenantConfig& existing : tenants_) {
    if (existing.id == id) {
      existing.suspended = suspended;
      return Status::OK();
    }
  }
  return Status::NotFound("no tenant \"" + id + "\"");
}

std::optional<TenantRegistry::Resolution> TenantRegistry::Resolve(
    std::string_view api_key) const {
  if (api_key.empty()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  // No early exit: every key of every tenant is compared so the scan
  // cost (and therefore the response time) is independent of whether —
  // and where — the presented key matched.
  std::optional<Resolution> found;
  for (const TenantConfig& tenant : tenants_) {
    for (const TenantApiKey& key : tenant.api_keys) {
      const bool match = ConstantTimeEquals(api_key, key.key);
      if (match && !found) {
        found = Resolution{tenant.id, key.admin, tenant.suspended};
      }
    }
  }
  return found;
}

Result<TenantConfig> TenantRegistry::Get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TenantConfig& tenant : tenants_) {
    if (tenant.id == id) return tenant;
  }
  return Status::NotFound("no tenant \"" + id + "\"");
}

bool TenantRegistry::Contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TenantConfig& tenant : tenants_) {
    if (tenant.id == id) return true;
  }
  return false;
}

std::vector<std::string> TenantRegistry::TenantIds() const {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(tenants_.size());
    for (const TenantConfig& tenant : tenants_) ids.push_back(tenant.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t TenantRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace bivoc
