#include "tenant/tenant.h"

#include <fstream>
#include <set>
#include <sstream>

namespace bivoc {
namespace {

Status FieldError(const std::string& where, const std::string& what) {
  return Status::InvalidArgument(where + ": " + what);
}

Result<std::string> GetString(const JsonValue& v, const std::string& where) {
  if (!v.is_string()) return FieldError(where, "expected a string");
  return v.GetString();
}

Result<double> GetNumber(const JsonValue& v, const std::string& where) {
  if (!v.is_number()) return FieldError(where, "expected a number");
  return v.GetDouble();
}

Result<std::vector<std::string>> GetStringArray(const JsonValue& v,
                                                const std::string& where) {
  if (!v.is_array()) return FieldError(where, "expected an array");
  std::vector<std::string> out;
  out.reserve(v.GetArray().size());
  for (std::size_t i = 0; i < v.GetArray().size(); ++i) {
    BIVOC_ASSIGN_OR_RETURN(
        std::string s,
        GetString(v.GetArray()[i], where + "[" + std::to_string(i) + "]"));
    out.push_back(std::move(s));
  }
  return out;
}

JsonValue StringArrayToJson(const std::vector<std::string>& strings) {
  JsonValue arr = JsonValue::MakeArray();
  for (const std::string& s : strings) arr.Append(JsonValue(s));
  return arr;
}

bool DataTypeFromName(std::string_view name, DataType* out) {
  if (name == "int64") *out = DataType::kInt64;
  else if (name == "double") *out = DataType::kDouble;
  else if (name == "string") *out = DataType::kString;
  else if (name == "date") *out = DataType::kDate;
  else return false;
  return true;
}

const char* DataTypeToName(DataType type) {
  switch (type) {
    case DataType::kInt64: return "int64";
    case DataType::kDouble: return "double";
    case DataType::kString: return "string";
    case DataType::kDate: return "date";
    default: return "null";
  }
}

bool AttributeRoleFromName(std::string_view name, AttributeRole* out) {
  if (name == "none") *out = AttributeRole::kNone;
  else if (name == "person_name") *out = AttributeRole::kPersonName;
  else if (name == "phone") *out = AttributeRole::kPhone;
  else if (name == "date") *out = AttributeRole::kDate;
  else if (name == "money") *out = AttributeRole::kMoney;
  else if (name == "location") *out = AttributeRole::kLocation;
  else if (name == "card_number") *out = AttributeRole::kCardNumber;
  else if (name == "product") *out = AttributeRole::kProduct;
  else return false;
  return true;
}

const char* AttributeRoleToName(AttributeRole role) {
  switch (role) {
    case AttributeRole::kPersonName: return "person_name";
    case AttributeRole::kPhone: return "phone";
    case AttributeRole::kDate: return "date";
    case AttributeRole::kMoney: return "money";
    case AttributeRole::kLocation: return "location";
    case AttributeRole::kCardNumber: return "card_number";
    case AttributeRole::kProduct: return "product";
    default: return "none";
  }
}

Result<TenantApiKey> ApiKeyFromJson(const JsonValue& v,
                                    const std::string& where) {
  if (!v.is_object()) return FieldError(where, "expected an object");
  TenantApiKey out;
  bool saw_key = false;
  for (const JsonValue::Member& m : v.GetObject()) {
    if (m.key == "key") {
      BIVOC_ASSIGN_OR_RETURN(out.key, GetString(m.value, where + ".key"));
      saw_key = true;
    } else if (m.key == "admin") {
      if (!m.value.is_bool()) {
        return FieldError(where + ".admin", "expected a bool");
      }
      out.admin = m.value.GetBool();
    } else {
      return FieldError(where, "unknown field \"" + m.key + "\"");
    }
  }
  if (!saw_key) return FieldError(where, "needs a \"key\" field");
  return out;
}

Result<TenantQuota> QuotaFromJson(const JsonValue& v,
                                  const std::string& where) {
  if (!v.is_object()) return FieldError(where, "expected an object");
  TenantQuota out;
  for (const JsonValue::Member& m : v.GetObject()) {
    const std::string at = where + "." + m.key;
    if (m.key == "query_per_s") {
      BIVOC_ASSIGN_OR_RETURN(out.query_per_s, GetNumber(m.value, at));
    } else if (m.key == "query_burst") {
      BIVOC_ASSIGN_OR_RETURN(out.query_burst, GetNumber(m.value, at));
    } else if (m.key == "ingest_per_s") {
      BIVOC_ASSIGN_OR_RETURN(out.ingest_per_s, GetNumber(m.value, at));
    } else if (m.key == "ingest_burst") {
      BIVOC_ASSIGN_OR_RETURN(out.ingest_burst, GetNumber(m.value, at));
    } else if (m.key == "max_concurrency") {
      if (!m.value.is_integer() || m.value.GetInt64() < 0) {
        return FieldError(at, "expected a non-negative integer");
      }
      out.max_concurrency = static_cast<int>(m.value.GetInt64());
    } else {
      return FieldError(where, "unknown field \"" + m.key + "\"");
    }
  }
  return out;
}

JsonValue QuotaToJson(const TenantQuota& quota) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("query_per_s", JsonValue(quota.query_per_s));
  o.Set("query_burst", JsonValue(quota.query_burst));
  o.Set("ingest_per_s", JsonValue(quota.ingest_per_s));
  o.Set("ingest_burst", JsonValue(quota.ingest_burst));
  o.Set("max_concurrency", JsonValue(int64_t{quota.max_concurrency}));
  return o;
}

Result<TenantDictionaryEntry> DictEntryFromJson(const JsonValue& v,
                                                const std::string& where) {
  if (!v.is_object()) return FieldError(where, "expected an object");
  TenantDictionaryEntry out;
  bool saw_surface = false, saw_canonical = false, saw_category = false;
  for (const JsonValue::Member& m : v.GetObject()) {
    if (m.key == "surface") {
      BIVOC_ASSIGN_OR_RETURN(out.surface,
                             GetString(m.value, where + ".surface"));
      saw_surface = true;
    } else if (m.key == "canonical") {
      BIVOC_ASSIGN_OR_RETURN(out.canonical,
                             GetString(m.value, where + ".canonical"));
      saw_canonical = true;
    } else if (m.key == "category") {
      BIVOC_ASSIGN_OR_RETURN(out.category,
                             GetString(m.value, where + ".category"));
      saw_category = true;
    } else {
      return FieldError(where, "unknown field \"" + m.key + "\"");
    }
  }
  if (!saw_surface || !saw_canonical || !saw_category) {
    return FieldError(where,
                      "needs \"surface\", \"canonical\" and \"category\"");
  }
  return out;
}

Result<TenantTableSpec> TableFromJson(const JsonValue& v,
                                      const std::string& where) {
  if (!v.is_object()) return FieldError(where, "expected an object");
  TenantTableSpec out;
  bool saw_name = false, saw_columns = false;
  for (const JsonValue::Member& m : v.GetObject()) {
    if (m.key == "name") {
      BIVOC_ASSIGN_OR_RETURN(out.name, GetString(m.value, where + ".name"));
      saw_name = true;
    } else if (m.key == "columns") {
      if (!m.value.is_array()) {
        return FieldError(where + ".columns", "expected an array");
      }
      for (std::size_t i = 0; i < m.value.GetArray().size(); ++i) {
        const JsonValue& col = m.value.GetArray()[i];
        const std::string at =
            where + ".columns[" + std::to_string(i) + "]";
        if (!col.is_object()) return FieldError(at, "expected an object");
        Column column;
        bool saw_col_name = false;
        for (const JsonValue::Member& cm : col.GetObject()) {
          if (cm.key == "name") {
            BIVOC_ASSIGN_OR_RETURN(column.name,
                                   GetString(cm.value, at + ".name"));
            saw_col_name = true;
          } else if (cm.key == "type") {
            BIVOC_ASSIGN_OR_RETURN(std::string type_name,
                                   GetString(cm.value, at + ".type"));
            if (!DataTypeFromName(type_name, &column.type)) {
              return FieldError(at + ".type",
                                "unknown type \"" + type_name + "\"");
            }
          } else if (cm.key == "role") {
            BIVOC_ASSIGN_OR_RETURN(std::string role_name,
                                   GetString(cm.value, at + ".role"));
            if (!AttributeRoleFromName(role_name, &column.role)) {
              return FieldError(at + ".role",
                                "unknown role \"" + role_name + "\"");
            }
          } else {
            return FieldError(at, "unknown field \"" + cm.key + "\"");
          }
        }
        if (!saw_col_name) return FieldError(at, "needs a \"name\" field");
        out.columns.push_back(std::move(column));
      }
      saw_columns = true;
    } else if (m.key == "rows") {
      if (!m.value.is_array()) {
        return FieldError(where + ".rows", "expected an array");
      }
      for (std::size_t i = 0; i < m.value.GetArray().size(); ++i) {
        const JsonValue& row = m.value.GetArray()[i];
        if (!row.is_array()) {
          return FieldError(where + ".rows[" + std::to_string(i) + "]",
                            "expected an array");
        }
        out.rows.push_back(row.GetArray());
      }
    } else {
      return FieldError(where, "unknown field \"" + m.key + "\"");
    }
  }
  if (!saw_name || !saw_columns) {
    return FieldError(where, "needs \"name\" and \"columns\"");
  }
  for (std::size_t i = 0; i < out.rows.size(); ++i) {
    if (out.rows[i].size() != out.columns.size()) {
      return FieldError(where + ".rows[" + std::to_string(i) + "]",
                        "arity does not match the columns");
    }
  }
  return out;
}

JsonValue TableToJson(const TenantTableSpec& table) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("name", JsonValue(table.name));
  JsonValue cols = JsonValue::MakeArray();
  for (const Column& c : table.columns) {
    JsonValue col = JsonValue::MakeObject();
    col.Set("name", JsonValue(c.name));
    col.Set("type", JsonValue(DataTypeToName(c.type)));
    if (c.role != AttributeRole::kNone) {
      col.Set("role", JsonValue(AttributeRoleToName(c.role)));
    }
    cols.Append(std::move(col));
  }
  o.Set("columns", std::move(cols));
  if (!table.rows.empty()) {
    JsonValue rows = JsonValue::MakeArray();
    for (const auto& row : table.rows) {
      JsonValue cells = JsonValue::MakeArray();
      for (const JsonValue& cell : row) cells.Append(cell);
      rows.Append(std::move(cells));
    }
    o.Set("rows", std::move(rows));
  }
  return o;
}

}  // namespace

Status ValidateTenantId(std::string_view id) {
  if (id.empty() || id.size() > 64) {
    return Status::InvalidArgument(
        "tenant id must be 1..64 characters, got " +
        std::to_string(id.size()));
  }
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "tenant id may only contain [a-z0-9-]: \"" + std::string(id) +
          "\"");
    }
  }
  return Status::OK();
}

Status ValidateTenantConfig(const TenantConfig& config) {
  BIVOC_RETURN_NOT_OK(ValidateTenantId(config.id));
  if (config.api_keys.empty()) {
    return Status::InvalidArgument("tenant \"" + config.id +
                                   "\" has no API keys");
  }
  for (const TenantApiKey& key : config.api_keys) {
    if (key.key.size() < 8) {
      return Status::InvalidArgument("tenant \"" + config.id +
                                     "\" has an API key under 8 characters");
    }
  }
  if (config.quota.query_burst < 1.0 || config.quota.ingest_burst < 1.0) {
    return Status::InvalidArgument("tenant \"" + config.id +
                                   "\" has a burst below 1");
  }
  return Status::OK();
}

JsonValue TenantConfigToJson(const TenantConfig& config, bool include_keys) {
  JsonValue o = JsonValue::MakeObject();
  o.Set("id", JsonValue(config.id));
  if (config.suspended) o.Set("suspended", JsonValue(true));
  if (include_keys) {
    JsonValue keys = JsonValue::MakeArray();
    for (const TenantApiKey& key : config.api_keys) {
      JsonValue k = JsonValue::MakeObject();
      k.Set("key", JsonValue(key.key));
      if (key.admin) k.Set("admin", JsonValue(true));
      keys.Append(std::move(k));
    }
    o.Set("api_keys", std::move(keys));
  } else {
    o.Set("num_api_keys",
          JsonValue(static_cast<uint64_t>(config.api_keys.size())));
  }
  o.Set("quota", QuotaToJson(config.quota));
  if (!config.dictionary.empty()) {
    JsonValue dict = JsonValue::MakeArray();
    for (const TenantDictionaryEntry& e : config.dictionary) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("surface", JsonValue(e.surface));
      entry.Set("canonical", JsonValue(e.canonical));
      entry.Set("category", JsonValue(e.category));
      dict.Append(std::move(entry));
    }
    o.Set("dictionary", std::move(dict));
  }
  if (!config.patterns.empty()) {
    o.Set("patterns", StringArrayToJson(config.patterns));
  }
  if (!config.vocabulary.empty()) {
    o.Set("vocabulary", StringArrayToJson(config.vocabulary));
  }
  if (!config.name_gazetteer.empty()) {
    o.Set("name_gazetteer", StringArrayToJson(config.name_gazetteer));
  }
  if (!config.location_gazetteer.empty()) {
    o.Set("location_gazetteer",
          StringArrayToJson(config.location_gazetteer));
  }
  if (!config.tables.empty()) {
    JsonValue tables = JsonValue::MakeArray();
    for (const TenantTableSpec& t : config.tables) {
      tables.Append(TableToJson(t));
    }
    o.Set("tables", std::move(tables));
  }
  if (config.streaming) o.Set("streaming", JsonValue(true));
  return o;
}

Result<TenantConfig> TenantConfigFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("tenant config must be a JSON object");
  }
  TenantConfig out;
  for (const JsonValue::Member& m : v.GetObject()) {
    if (m.key == "id") {
      BIVOC_ASSIGN_OR_RETURN(out.id, GetString(m.value, "id"));
    } else if (m.key == "suspended") {
      if (!m.value.is_bool()) {
        return FieldError("suspended", "expected a bool");
      }
      out.suspended = m.value.GetBool();
    } else if (m.key == "api_keys") {
      if (!m.value.is_array()) {
        return FieldError("api_keys", "expected an array");
      }
      for (std::size_t i = 0; i < m.value.GetArray().size(); ++i) {
        BIVOC_ASSIGN_OR_RETURN(
            TenantApiKey key,
            ApiKeyFromJson(m.value.GetArray()[i],
                           "api_keys[" + std::to_string(i) + "]"));
        out.api_keys.push_back(std::move(key));
      }
    } else if (m.key == "quota") {
      BIVOC_ASSIGN_OR_RETURN(out.quota, QuotaFromJson(m.value, "quota"));
    } else if (m.key == "dictionary") {
      if (!m.value.is_array()) {
        return FieldError("dictionary", "expected an array");
      }
      for (std::size_t i = 0; i < m.value.GetArray().size(); ++i) {
        BIVOC_ASSIGN_OR_RETURN(
            TenantDictionaryEntry entry,
            DictEntryFromJson(m.value.GetArray()[i],
                              "dictionary[" + std::to_string(i) + "]"));
        out.dictionary.push_back(std::move(entry));
      }
    } else if (m.key == "patterns") {
      BIVOC_ASSIGN_OR_RETURN(out.patterns,
                             GetStringArray(m.value, "patterns"));
    } else if (m.key == "vocabulary") {
      BIVOC_ASSIGN_OR_RETURN(out.vocabulary,
                             GetStringArray(m.value, "vocabulary"));
    } else if (m.key == "name_gazetteer") {
      BIVOC_ASSIGN_OR_RETURN(out.name_gazetteer,
                             GetStringArray(m.value, "name_gazetteer"));
    } else if (m.key == "location_gazetteer") {
      BIVOC_ASSIGN_OR_RETURN(
          out.location_gazetteer,
          GetStringArray(m.value, "location_gazetteer"));
    } else if (m.key == "tables") {
      if (!m.value.is_array()) {
        return FieldError("tables", "expected an array");
      }
      for (std::size_t i = 0; i < m.value.GetArray().size(); ++i) {
        BIVOC_ASSIGN_OR_RETURN(
            TenantTableSpec table,
            TableFromJson(m.value.GetArray()[i],
                          "tables[" + std::to_string(i) + "]"));
        out.tables.push_back(std::move(table));
      }
    } else if (m.key == "streaming") {
      if (!m.value.is_bool()) {
        return FieldError("streaming", "expected a bool");
      }
      out.streaming = m.value.GetBool();
    } else {
      return FieldError("tenant config", "unknown field \"" + m.key + "\"");
    }
  }
  BIVOC_RETURN_NOT_OK(ValidateTenantConfig(out));
  return out;
}

Result<std::vector<TenantConfig>> TenantManifestFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("manifest must be a JSON object");
  }
  const JsonValue* tenants = v.Find("tenants");
  if (tenants == nullptr || !tenants->is_array()) {
    return Status::InvalidArgument("manifest needs a \"tenants\" array");
  }
  if (v.GetObject().size() != 1) {
    return Status::InvalidArgument(
        "manifest has fields other than \"tenants\"");
  }
  std::vector<TenantConfig> out;
  std::set<std::string> ids;
  for (std::size_t i = 0; i < tenants->GetArray().size(); ++i) {
    Result<TenantConfig> config =
        TenantConfigFromJson(tenants->GetArray()[i]);
    if (!config.ok()) {
      return Status(config.status().code(),
                    "tenants[" + std::to_string(i) + "]: " +
                        config.status().message());
    }
    if (!ids.insert(config.value().id).second) {
      return Status::InvalidArgument("duplicate tenant id \"" +
                                     config.value().id + "\"");
    }
    out.push_back(config.MoveValue());
  }
  return out;
}

Result<std::vector<TenantConfig>> LoadTenantManifest(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open tenant manifest " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  BIVOC_ASSIGN_OR_RETURN(JsonValue parsed, ParseJson(buffer.str()));
  return TenantManifestFromJson(parsed);
}

}  // namespace bivoc
