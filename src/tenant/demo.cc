#include "tenant/demo.h"

#include <cstdlib>

#include "util/string_util.h"

namespace bivoc {
namespace {

// Seed cells are text; TenantTableSpec wants typed JSON. Numeric
// columns parse strictly enough for demo data (the real validation
// happens again in the manager's CellToValue).
JsonValue CellFromText(const std::string& text, const Column& column) {
  switch (column.type) {
    case DataType::kInt64: {
      int64_t v = 0;
      ParseInt64(text, &v);
      return JsonValue(v);
    }
    case DataType::kDouble:
      return JsonValue(std::strtod(text.c_str(), nullptr));
    default:
      return JsonValue(text);  // kString and kDate ("YYYY-MM-DD")
  }
}

}  // namespace

TenantConfig TenantConfigFromSeed(const TenantSeed& seed) {
  TenantConfig config;
  config.id = seed.id;
  config.api_keys = {{seed.api_key, /*admin=*/false},
                     {seed.admin_api_key, /*admin=*/true}};
  for (const TenantSeedDictionaryEntry& entry : seed.dictionary) {
    config.dictionary.push_back(
        {entry.surface, entry.canonical, entry.category});
  }
  config.patterns = seed.patterns;
  config.vocabulary = seed.vocabulary;
  config.name_gazetteer = seed.name_gazetteer;
  config.location_gazetteer = seed.location_gazetteer;
  if (!seed.table_name.empty()) {
    TenantTableSpec table;
    table.name = seed.table_name;
    table.columns = seed.columns;
    for (const std::vector<std::string>& row : seed.rows) {
      std::vector<JsonValue> cells;
      cells.reserve(row.size());
      for (std::size_t c = 0; c < row.size() && c < seed.columns.size();
           ++c) {
        cells.push_back(CellFromText(row[c], seed.columns[c]));
      }
      table.rows.push_back(std::move(cells));
    }
    config.tables.push_back(std::move(table));
  }
  config.streaming = seed.streaming;
  return config;
}

std::vector<TenantConfig> DemoTenantConfigs() {
  return {TenantConfigFromSeed(CarRentalTenantSeed()),
          TenantConfigFromSeed(TelecomTenantSeed())};
}

}  // namespace bivoc
