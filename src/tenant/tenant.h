#ifndef BIVOC_TENANT_TENANT_H_
#define BIVOC_TENANT_TENANT_H_

#include <string>
#include <string_view>
#include <vector>

#include "db/schema.h"
#include "net/json.h"
#include "util/result.h"

namespace bivoc {

// Per-tenant configuration of the multi-tenant VoC service (DESIGN.md
// §16): identity and API keys, quota budgets, and the complete
// vocabulary package a tenant's engine boots from — domain dictionary,
// extraction patterns, language-filter vocabulary, gazetteers and
// warehouse tables. Everything here round-trips through the JSON
// manifest ({"tenants":[...]}) and the POST /v1/admin/tenant control
// plane.

struct TenantApiKey {
  std::string key;
  // Admin-scoped keys may additionally call the tenant's /v1/admin/*
  // data plane (export/stage/...); plain keys get query/ingest/stream.
  bool admin = false;
};

struct TenantQuota {
  // Token-bucket rates (requests/second) and burst ceilings, one
  // bucket per traffic class. <= 0 rate refuses that class outright.
  double query_per_s = 50.0;
  double query_burst = 100.0;
  double ingest_per_s = 20.0;
  double ingest_burst = 40.0;
  // Concurrent in-flight requests across both classes; 0 = unlimited.
  int max_concurrency = 8;
};

struct TenantDictionaryEntry {
  std::string surface;
  std::string canonical;
  std::string category;
};

struct TenantTableSpec {
  std::string name;
  std::vector<Column> columns;
  // Row-major cell values; each row must match `columns` in arity and
  // type (kDate cells are "YYYY-MM-DD" strings).
  std::vector<std::vector<JsonValue>> rows;
};

struct TenantConfig {
  std::string id;  // lowercase [a-z0-9-], 1..64 chars
  bool suspended = false;
  std::vector<TenantApiKey> api_keys;
  TenantQuota quota;

  // Vocabulary package.
  std::vector<TenantDictionaryEntry> dictionary;
  std::vector<std::string> patterns;  // ConceptExtractor DSL specs
  std::vector<std::string> vocabulary;
  std::vector<std::string> name_gazetteer;
  std::vector<std::string> location_gazetteer;
  std::vector<TenantTableSpec> tables;

  bool streaming = false;
};

// Tenant ids become durability directory names, metric label values
// and routing-key prefixes, so the alphabet is tight: lowercase
// letters, digits and '-', 1..64 chars. (No control characters in
// particular — ComposeRouteKey's 0x1f separator depends on it.)
Status ValidateTenantId(std::string_view id);

// Structural validation beyond what the decoder enforces: valid id,
// at least one API key, non-empty key strings, sane quota numbers.
Status ValidateTenantConfig(const TenantConfig& config);

// JSON codec. `include_keys` redacts API keys when false (the shape
// returned to admin reads); the decoder is strict — unknown fields are
// errors, same convention as net/wire.h.
JsonValue TenantConfigToJson(const TenantConfig& config, bool include_keys);
Result<TenantConfig> TenantConfigFromJson(const JsonValue& v);

// Manifest {"tenants":[<config>...]}; ids must be unique.
Result<std::vector<TenantConfig>> TenantManifestFromJson(const JsonValue& v);
Result<std::vector<TenantConfig>> LoadTenantManifest(const std::string& path);

}  // namespace bivoc

#endif  // BIVOC_TENANT_TENANT_H_
