#ifndef BIVOC_TENANT_MANAGER_H_
#define BIVOC_TENANT_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/bivoc.h"
#include "net/gateway.h"
#include "tenant/quota.h"
#include "tenant/tenant.h"
#include "util/result.h"

namespace bivoc {

// One tenant's fully isolated engine context: its own BivocEngine
// (index, warehouse, report cache, metrics registry, WAL/checkpoint
// namespace), an *unstarted* Gateway wrapping it (Gateway::Handle is
// socket-free — the shared TenantService front forwards authenticated
// requests into it, and per-route instruments land in the tenant's
// own registry for free), and the tenant's admission primitives.
// Not movable: the gateway holds pointers into the engine.
struct TenantContext {
  TenantContext(const TenantConfig& config, GatewayOptions gateway_options);

  std::string id;
  BivocEngine engine;
  Gateway gateway;  // never Start()ed; dispatch goes through Handle()
  TokenBucket query_bucket;
  TokenBucket ingest_bucket;
  ConcurrencyBudget budget;
};

struct TenantManagerOptions {
  // Durability root; tenant <id> journals under <data_root>/<id>/.
  // Empty disables durability.
  std::string data_root;
  // Run Recover() right after enabling durability (boot path); leave
  // off when provisioning a tenant known to be fresh.
  bool recover = true;
  DurabilityOptions durability;
};

// Instantiates and owns one TenantContext per tenant: builds the
// engine from the config's vocabulary package (tables -> warehouse,
// dictionary/patterns/vocabulary -> pipeline, gazetteers ->
// annotators), wires durability into the tenant's namespace and
// recovers from it, and enables streaming when asked. Contexts are
// created by Provision and live until the manager dies — suspension
// is a registry verdict, not a teardown, so a suspended tenant's data
// stays hot. Thread-safe.
class TenantManager {
 public:
  explicit TenantManager(TenantManagerOptions options = {});

  // Builds the context (idempotent per id: provisioning an existing
  // tenant is kAlreadyExists). The config must already be validated.
  Result<TenantContext*> Provision(const TenantConfig& config);

  TenantContext* Find(const std::string& id);
  std::vector<std::string> TenantIds() const;  // sorted
  std::size_t size() const;

  const TenantManagerOptions& options() const { return opts_; }

 private:
  Status BootEngine(const TenantConfig& config, TenantContext* context);

  TenantManagerOptions opts_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TenantContext>> contexts_;
};

}  // namespace bivoc

#endif  // BIVOC_TENANT_MANAGER_H_
