#include "tenant/manager.h"

#include <utility>

#include "stream/ingestor.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace bivoc {
namespace {

TokenBucket::Options BucketOptions(double rate, double burst) {
  TokenBucket::Options options;
  options.rate_per_s = rate;
  options.burst = burst;
  return options;
}

Result<Date> ParseDate(const std::string& text) {
  // "YYYY-MM-DD", strictly.
  const std::vector<std::string> parts = Split(text, '-');
  int64_t y, m, d;
  if (parts.size() != 3 || !ParseInt64(parts[0], &y) ||
      !ParseInt64(parts[1], &m) || !ParseInt64(parts[2], &d) || m < 1 ||
      m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("bad date \"" + text +
                                   "\" (want YYYY-MM-DD)");
  }
  Date date;
  date.year = static_cast<int>(y);
  date.month = static_cast<int>(m);
  date.day = static_cast<int>(d);
  return date;
}

Result<Value> CellToValue(const JsonValue& cell, const Column& column) {
  switch (column.type) {
    case DataType::kInt64:
      if (!cell.is_integer()) {
        return Status::InvalidArgument("column \"" + column.name +
                                       "\" wants an integer");
      }
      return Value(cell.GetInt64());
    case DataType::kDouble:
      if (!cell.is_number()) {
        return Status::InvalidArgument("column \"" + column.name +
                                       "\" wants a number");
      }
      return Value(cell.GetDouble());
    case DataType::kString:
      if (!cell.is_string()) {
        return Status::InvalidArgument("column \"" + column.name +
                                       "\" wants a string");
      }
      return Value(cell.GetString());
    case DataType::kDate: {
      if (!cell.is_string()) {
        return Status::InvalidArgument("column \"" + column.name +
                                       "\" wants a YYYY-MM-DD string");
      }
      BIVOC_ASSIGN_OR_RETURN(Date date, ParseDate(cell.GetString()));
      return Value(date);
    }
    default:
      return Status::InvalidArgument("column \"" + column.name +
                                     "\" has an unsupported type");
  }
}

}  // namespace

TenantContext::TenantContext(const TenantConfig& config,
                             GatewayOptions gateway_options)
    : id(config.id),
      gateway(&engine, std::move(gateway_options)),
      query_bucket(BucketOptions(config.quota.query_per_s,
                                 config.quota.query_burst)),
      ingest_bucket(BucketOptions(config.quota.ingest_per_s,
                                  config.quota.ingest_burst)),
      budget(config.quota.max_concurrency) {}

TenantManager::TenantManager(TenantManagerOptions options)
    : opts_(std::move(options)) {}

Status TenantManager::BootEngine(const TenantConfig& config,
                                 TenantContext* context) {
  BivocEngine& engine = context->engine;
  for (const TenantTableSpec& spec : config.tables) {
    BIVOC_ASSIGN_OR_RETURN(
        Table * table,
        engine.warehouse()->CreateTable(spec.name, Schema(spec.columns)));
    for (const auto& row : spec.rows) {
      Row cells;
      cells.reserve(row.size());
      for (std::size_t c = 0; c < row.size(); ++c) {
        BIVOC_ASSIGN_OR_RETURN(Value value,
                               CellToValue(row[c], spec.columns[c]));
        cells.push_back(std::move(value));
      }
      BIVOC_RETURN_NOT_OK(table->Append(std::move(cells)).status());
    }
  }
  if (!config.tables.empty()) {
    BIVOC_RETURN_NOT_OK(engine.FinishWarehouse());
  }
  engine.ConfigureAnnotators(config.name_gazetteer,
                             config.location_gazetteer);
  for (const TenantDictionaryEntry& entry : config.dictionary) {
    engine.extractor()->mutable_dictionary()->Add(entry.surface,
                                                  entry.canonical,
                                                  entry.category);
  }
  for (const std::string& pattern : config.patterns) {
    BIVOC_RETURN_NOT_OK(engine.extractor()->AddPattern(pattern));
  }
  if (!config.vocabulary.empty()) {
    engine.pipeline()->mutable_language_filter()->AddVocabulary(
        config.vocabulary);
  }
  if (!opts_.data_root.empty()) {
    BIVOC_RETURN_NOT_OK(engine.EnableDurability(
        opts_.data_root + "/" + config.id, opts_.durability));
    if (opts_.recover) {
      Result<RecoveryReport> recovered = engine.Recover();
      if (!recovered.ok()) return recovered.status();
      if (recovered.value().docs_from_checkpoint > 0 ||
          recovered.value().wal_records_replayed > 0) {
        BIVOC_LOG(Info) << "tenant " << config.id << " recovered: "
                        << recovered.value().ToString();
      }
    }
  }
  if (config.streaming) {
    StreamOptions stream;
    stream.tenant_id = config.id;
    BIVOC_RETURN_NOT_OK(engine.EnableStreaming(std::move(stream)));
  }
  return Status::OK();
}

Result<TenantContext*> TenantManager::Provision(const TenantConfig& config) {
  BIVOC_RETURN_NOT_OK(ValidateTenantConfig(config));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (contexts_.count(config.id) > 0) {
      return Status::AlreadyExists("tenant \"" + config.id +
                                   "\" is already provisioned");
    }
  }
  // Boot outside the lock — recovery of a big tenant can take a while
  // and must not stall request routing for everyone else.
  auto context = std::make_unique<TenantContext>(config, GatewayOptions{});
  BIVOC_RETURN_NOT_OK(BootEngine(config, context.get()));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = contexts_.emplace(config.id, std::move(context));
  if (!inserted) {
    return Status::AlreadyExists("tenant \"" + config.id +
                                 "\" is already provisioned");
  }
  return it->second.get();
}

TenantContext* TenantManager::Find(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = contexts_.find(id);
  return it == contexts_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TenantManager::TenantIds() const {
  std::vector<std::string> ids;
  std::lock_guard<std::mutex> lock(mu_);
  ids.reserve(contexts_.size());
  for (const auto& [id, context] : contexts_) ids.push_back(id);
  return ids;  // std::map iterates sorted
}

std::size_t TenantManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return contexts_.size();
}

}  // namespace bivoc
