#ifndef BIVOC_TENANT_SERVICE_H_
#define BIVOC_TENANT_SERVICE_H_

#include <string>

#include "net/gateway.h"
#include "net/http.h"
#include "net/http_server.h"
#include "tenant/manager.h"
#include "tenant/registry.h"
#include "tenant/tenant.h"
#include "util/metrics.h"
#include "util/status.h"

namespace bivoc {

struct TenantServiceOptions {
  HttpServerOptions server;
  // Key for the service control plane (POST /v1/admin/tenant). Empty =
  // open control plane — in-process tests and trusted-network boots.
  std::string admin_api_key;
  TenantManagerOptions manager;
};

// The multi-tenant front door (DESIGN.md §16): one HttpServer, many
// isolated engines. Every data-plane request is resolved to a tenant
// by its API key (Authorization: Bearer / X-Api-Key), checked against
// the tenant's admission budgets, and only then forwarded into that
// tenant's *unstarted* Gateway via Gateway::Handle — so the per-route
// instruments, report cache, index and durability namespace the
// request touches are all the tenant's own.
//
// Routing:
//   GET  /healthz           service health, unauthenticated:
//                           {"status":"ok","tenants":N}
//   GET  /metrics           the service registry's dump followed by
//                           every tenant registry rendered with a
//                           tenant="<id>" label on each sample
//   POST /v1/admin/tenant   control plane, requires admin_api_key:
//                           {"action":"create"|"update"|"suspend"|
//                            "resume"|"get"|"list", ...} (see .cc)
//   anything else           tenant data plane: resolve key (401 when
//                           unknown, 403 when the tenant is
//                           suspended), enforce admin scope on
//                           /v1/admin/* verbs (403), charge the
//                           route's token bucket and the concurrency
//                           budget (429 + Retry-After), forward.
//
// Traffic classes: /v1/ingest and /v1/stream/utterance charge the
// ingest bucket; /v1/query, /v1/stream/alerts, /healthz-like GETs
// charge the query bucket; tenant /v1/admin/* verbs (rebalance
// export/stage/...) charge no bucket — they are operator traffic —
// but still occupy the concurrency budget. One request costs one
// token regardless of batch size; the batch itself is bounded by the
// parser's max_body_bytes.
//
// /v1/ingest bodies are re-stamped: each item's "tenant" field is
// overwritten with the resolved tenant id, so a client cannot write
// into another tenant's routing space no matter what it sends.
//
// Quota updates through the control plane apply live (token buckets
// and the concurrency cap are reconfigured in place); vocabulary
// packages (dictionary/patterns/tables) bind at provision time only.
//
// Service-level metrics: tenant_requests_total{tenant="<id>"},
// tenant_throttled_total{tenant="<id>"}, gateway_auth_failures_total.
class TenantService {
 public:
  explicit TenantService(TenantServiceOptions options = {});

  TenantService(const TenantService&) = delete;
  TenantService& operator=(const TenantService&) = delete;

  // Provisions an engine context and registers the tenant — the boot
  // path for manifest-loaded tenants (the control plane "create"
  // action does the same at runtime).
  Status AddTenant(const TenantConfig& config);

  Status Start() { return server_.Start(); }
  void Stop() { server_.Stop(); }
  uint16_t port() const { return server_.port(); }

  // The full request -> response mapping, sockets excluded — tests
  // drive the service exactly as the wire would.
  HttpResponse Handle(const HttpRequest& request);

  MetricsRegistry* metrics() { return &metrics_; }
  TenantManager* manager() { return &manager_; }
  TenantRegistry* registry() { return &registry_; }

 private:
  HttpResponse HandleHealthz();
  HttpResponse HandleMetrics();
  // The POST /v1/admin/tenant control plane.
  HttpResponse HandleTenantAdmin(const HttpRequest& request);
  // Everything else: authenticate, admit, forward.
  HttpResponse HandleTenantRoute(const HttpRequest& request,
                                 const std::string& path);
  HttpResponse Unauthorized(std::string_view message);
  HttpResponse Throttled(const std::string& tenant_id, int64_t retry_ms);
  bool AdminAuthorized(const HttpRequest& request) const;

  TenantServiceOptions opts_;
  TenantRegistry registry_;
  TenantManager manager_;
  MetricsRegistry metrics_;
  Counter* auth_failures_;
  HttpServer server_;
};

}  // namespace bivoc

#endif  // BIVOC_TENANT_SERVICE_H_
