#include "tenant/service.h"

#include <algorithm>
#include <string_view>
#include <utility>
#include <vector>

#include "core/ingest.h"
#include "net/json.h"
#include "net/wire.h"
#include "util/string_util.h"

namespace bivoc {
namespace {

HttpResponse StatusResponse(const Status& status) {
  return ErrorResponse(HttpStatusForCode(status.code()),
                       StatusCodeName(status.code()), status.message());
}

// Rewrites an ingest batch so every item carries the resolved tenant
// id — whatever the client put there is overwritten. A body that does
// not parse is forwarded untouched; the tenant's gateway answers the
// 400 with its usual diagnostics.
HttpRequest RestampIngest(const HttpRequest& request,
                          const std::string& tenant_id) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) return request;
  Result<std::vector<IngestItem>> items = IngestItemsFromJson(body.value());
  if (!items.ok()) return request;
  for (IngestItem& item : items.value()) item.tenant = tenant_id;
  HttpRequest stamped = request;
  stamped.body = DumpJson(IngestItemsToJson(items.value()));
  return stamped;
}

}  // namespace

TenantService::TenantService(TenantServiceOptions options)
    : opts_(std::move(options)),
      manager_(opts_.manager),
      auth_failures_(metrics_.GetCounter("gateway_auth_failures_total")),
      server_([this](const HttpRequest& r) { return Handle(r); },
              opts_.server, &metrics_) {}

Status TenantService::AddTenant(const TenantConfig& config) {
  BIVOC_RETURN_NOT_OK(manager_.Provision(config).status());
  return registry_.Create(config);
}

HttpResponse TenantService::Handle(const HttpRequest& request) {
  const std::string path = request.Path();
  if (path == "/healthz") return HandleHealthz();
  if (path == "/metrics") return HandleMetrics();
  if (path == "/v1/admin/tenant") return HandleTenantAdmin(request);
  return HandleTenantRoute(request, path);
}

HttpResponse TenantService::HandleHealthz() {
  JsonValue body = JsonValue::MakeObject();
  body.Set("status", JsonValue("ok"));
  body.Set("tenants", JsonValue(static_cast<int64_t>(registry_.size())));
  return JsonResponse(200, DumpJson(body));
}

HttpResponse TenantService::HandleMetrics() {
  std::string text = metrics_.RenderText();
  for (const std::string& id : manager_.TenantIds()) {
    TenantContext* context = manager_.Find(id);
    if (context == nullptr) continue;
    text += context->engine.metrics()->RenderText("tenant=\"" + id + "\"");
  }
  return TextResponse(200, std::move(text));
}

HttpResponse TenantService::Unauthorized(std::string_view message) {
  auth_failures_->Increment();
  HttpResponse response = ErrorResponse(401, "unauthorized", message);
  response.SetHeader("WWW-Authenticate", "Bearer");
  return response;
}

HttpResponse TenantService::Throttled(const std::string& tenant_id,
                                      int64_t retry_ms) {
  metrics_.GetCounter("tenant_throttled_total{tenant=\"" + tenant_id + "\"}")
      ->Increment();
  HttpResponse response =
      ErrorResponse(429, "quota_exhausted",
                    "tenant \"" + tenant_id + "\" is over its budget");
  const int64_t seconds = std::max<int64_t>(1, (retry_ms + 999) / 1000);
  response.SetHeader("Retry-After", std::to_string(seconds));
  return response;
}

bool TenantService::AdminAuthorized(const HttpRequest& request) const {
  if (opts_.admin_api_key.empty()) return true;
  return ConstantTimeEquals(ExtractApiKey(request), opts_.admin_api_key);
}

HttpResponse TenantService::HandleTenantAdmin(const HttpRequest& request) {
  if (!AdminAuthorized(request)) {
    return Unauthorized("control plane requires the service admin key");
  }
  if (request.method != "POST") {
    return ErrorResponse(405, "method_not_allowed",
                         "/v1/admin/tenant wants POST");
  }
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok() || !body.value().is_object()) {
    return ErrorResponse(400, "bad_json", "control-plane body must be an "
                                          "object with an \"action\"");
  }
  const JsonValue* action_field = body.value().Find("action");
  if (action_field == nullptr || !action_field->is_string()) {
    return ErrorResponse(400, "bad_action", "missing string \"action\"");
  }
  const std::string& action = action_field->GetString();

  if (action == "create" || action == "update") {
    const JsonValue* tenant_field = body.value().Find("tenant");
    if (tenant_field == nullptr) {
      return ErrorResponse(400, "bad_tenant",
                           "\"" + action + "\" wants a \"tenant\" config");
    }
    Result<TenantConfig> config = TenantConfigFromJson(*tenant_field);
    if (!config.ok()) {
      return ErrorResponse(400, "bad_tenant", config.status().message());
    }
    if (action == "create") {
      if (registry_.Contains(config.value().id)) {
        return ErrorResponse(409, "already_exists",
                             "tenant \"" + config.value().id +
                                 "\" already exists");
      }
      Status added = AddTenant(config.value());
      if (!added.ok()) return StatusResponse(added);
      JsonValue reply = JsonValue::MakeObject();
      reply.Set("created", JsonValue(config.value().id));
      return JsonResponse(200, DumpJson(reply));
    }
    // update: registry swaps the config (keys, suspension, quota);
    // quota changes apply to the live context immediately. The
    // vocabulary package is provision-time state and is NOT rebuilt —
    // the new values take effect if the tenant is ever re-provisioned.
    Status updated = registry_.Update(config.value().id, config.value());
    if (!updated.ok()) return StatusResponse(updated);
    if (TenantContext* context = manager_.Find(config.value().id)) {
      const TenantQuota& quota = config.value().quota;
      context->query_bucket.Configure(quota.query_per_s, quota.query_burst);
      context->ingest_bucket.Configure(quota.ingest_per_s,
                                       quota.ingest_burst);
      context->budget.set_max(quota.max_concurrency);
    }
    JsonValue reply = JsonValue::MakeObject();
    reply.Set("updated", JsonValue(config.value().id));
    return JsonResponse(200, DumpJson(reply));
  }

  if (action == "suspend" || action == "resume" || action == "get") {
    const JsonValue* id_field = body.value().Find("id");
    if (id_field == nullptr || !id_field->is_string()) {
      return ErrorResponse(400, "bad_id",
                           "\"" + action + "\" wants a string \"id\"");
    }
    const std::string& id = id_field->GetString();
    if (action == "get") {
      Result<TenantConfig> config = registry_.Get(id);
      if (!config.ok()) return StatusResponse(config.status());
      return JsonResponse(
          200, DumpJson(TenantConfigToJson(config.value(),
                                           /*include_keys=*/false)));
    }
    const bool suspend = action == "suspend";
    Status status = registry_.SetSuspended(id, suspend);
    if (!status.ok()) return StatusResponse(status);
    JsonValue reply = JsonValue::MakeObject();
    reply.Set("id", JsonValue(id));
    reply.Set("suspended", JsonValue(suspend));
    return JsonResponse(200, DumpJson(reply));
  }

  if (action == "list") {
    JsonValue ids = JsonValue::MakeArray();
    for (const std::string& id : registry_.TenantIds()) {
      ids.Append(JsonValue(id));
    }
    JsonValue reply = JsonValue::MakeObject();
    reply.Set("tenants", std::move(ids));
    return JsonResponse(200, DumpJson(reply));
  }

  return ErrorResponse(400, "bad_action",
                       "unknown control-plane action \"" + action + "\"");
}

HttpResponse TenantService::HandleTenantRoute(const HttpRequest& request,
                                              const std::string& path) {
  const std::string_view api_key = ExtractApiKey(request);
  const auto who = registry_.Resolve(api_key);
  if (!who) return Unauthorized("unknown API key");
  if (who->suspended) {
    return ErrorResponse(403, "tenant_suspended",
                         "tenant \"" + who->tenant_id + "\" is suspended");
  }
  TenantContext* context = manager_.Find(who->tenant_id);
  if (context == nullptr) {
    return ErrorResponse(500, "internal", "tenant \"" + who->tenant_id +
                                              "\" has no engine context");
  }
  metrics_
      .GetCounter("tenant_requests_total{tenant=\"" + who->tenant_id + "\"}")
      ->Increment();

  const bool admin_route = StartsWith(path, "/v1/admin/");
  if (admin_route && !who->admin) {
    return ErrorResponse(403, "admin_scope_required",
                         "this key may not call the admin data plane");
  }

  // One token per request; admin verbs ride on the concurrency budget
  // alone.
  TokenBucket* bucket = nullptr;
  if (path == "/v1/ingest" || path == "/v1/stream/utterance") {
    bucket = &context->ingest_bucket;
  } else if (!admin_route) {
    bucket = &context->query_bucket;
  }
  if (bucket != nullptr && !bucket->TryAcquire()) {
    return Throttled(who->tenant_id, bucket->RetryAfterMs());
  }

  ConcurrencyBudget::Guard guard(&context->budget);
  if (!guard) return Throttled(who->tenant_id, 1000);

  if (path == "/v1/ingest") {
    return context->gateway.Handle(RestampIngest(request, who->tenant_id));
  }
  return context->gateway.Handle(request);
}

}  // namespace bivoc
