#ifndef BIVOC_TENANT_DEMO_H_
#define BIVOC_TENANT_DEMO_H_

#include <vector>

#include "synth/tenants.h"
#include "tenant/tenant.h"

namespace bivoc {

// Bridges the synth layer's plain-struct tenant seeds into real
// TenantConfigs (synth sits below tenant in the dependency order, so
// the conversion lives here). Each seed yields one plain key and one
// admin-scoped key; table cells are coerced by column type.
TenantConfig TenantConfigFromSeed(const TenantSeed& seed);

// The two demo tenants — car rental and telecom — ready to AddTenant.
std::vector<TenantConfig> DemoTenantConfigs();

}  // namespace bivoc

#endif  // BIVOC_TENANT_DEMO_H_
