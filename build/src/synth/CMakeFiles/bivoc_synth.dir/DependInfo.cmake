
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/car_rental.cc" "src/synth/CMakeFiles/bivoc_synth.dir/car_rental.cc.o" "gcc" "src/synth/CMakeFiles/bivoc_synth.dir/car_rental.cc.o.d"
  "/root/repo/src/synth/conversation.cc" "src/synth/CMakeFiles/bivoc_synth.dir/conversation.cc.o" "gcc" "src/synth/CMakeFiles/bivoc_synth.dir/conversation.cc.o.d"
  "/root/repo/src/synth/corpora.cc" "src/synth/CMakeFiles/bivoc_synth.dir/corpora.cc.o" "gcc" "src/synth/CMakeFiles/bivoc_synth.dir/corpora.cc.o.d"
  "/root/repo/src/synth/telecom.cc" "src/synth/CMakeFiles/bivoc_synth.dir/telecom.cc.o" "gcc" "src/synth/CMakeFiles/bivoc_synth.dir/telecom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bivoc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bivoc_text.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/bivoc_db.dir/DependInfo.cmake"
  "/root/repo/build/src/asr/CMakeFiles/bivoc_asr.dir/DependInfo.cmake"
  "/root/repo/build/src/clean/CMakeFiles/bivoc_clean.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
