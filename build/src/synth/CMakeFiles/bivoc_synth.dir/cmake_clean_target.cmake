file(REMOVE_RECURSE
  "libbivoc_synth.a"
)
