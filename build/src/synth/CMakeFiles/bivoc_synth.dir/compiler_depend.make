# Empty compiler generated dependencies file for bivoc_synth.
# This may be replaced when dependencies are built.
