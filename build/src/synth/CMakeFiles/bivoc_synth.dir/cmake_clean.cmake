file(REMOVE_RECURSE
  "CMakeFiles/bivoc_synth.dir/car_rental.cc.o"
  "CMakeFiles/bivoc_synth.dir/car_rental.cc.o.d"
  "CMakeFiles/bivoc_synth.dir/conversation.cc.o"
  "CMakeFiles/bivoc_synth.dir/conversation.cc.o.d"
  "CMakeFiles/bivoc_synth.dir/corpora.cc.o"
  "CMakeFiles/bivoc_synth.dir/corpora.cc.o.d"
  "CMakeFiles/bivoc_synth.dir/telecom.cc.o"
  "CMakeFiles/bivoc_synth.dir/telecom.cc.o.d"
  "libbivoc_synth.a"
  "libbivoc_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivoc_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
