file(REMOVE_RECURSE
  "libbivoc_util.a"
)
