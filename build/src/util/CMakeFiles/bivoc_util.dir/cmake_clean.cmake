file(REMOVE_RECURSE
  "CMakeFiles/bivoc_util.dir/csv.cc.o"
  "CMakeFiles/bivoc_util.dir/csv.cc.o.d"
  "CMakeFiles/bivoc_util.dir/logging.cc.o"
  "CMakeFiles/bivoc_util.dir/logging.cc.o.d"
  "CMakeFiles/bivoc_util.dir/random.cc.o"
  "CMakeFiles/bivoc_util.dir/random.cc.o.d"
  "CMakeFiles/bivoc_util.dir/status.cc.o"
  "CMakeFiles/bivoc_util.dir/status.cc.o.d"
  "CMakeFiles/bivoc_util.dir/string_util.cc.o"
  "CMakeFiles/bivoc_util.dir/string_util.cc.o.d"
  "CMakeFiles/bivoc_util.dir/thread_pool.cc.o"
  "CMakeFiles/bivoc_util.dir/thread_pool.cc.o.d"
  "libbivoc_util.a"
  "libbivoc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivoc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
