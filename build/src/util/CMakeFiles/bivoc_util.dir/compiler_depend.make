# Empty compiler generated dependencies file for bivoc_util.
# This may be replaced when dependencies are built.
