file(REMOVE_RECURSE
  "CMakeFiles/bivoc_core.dir/agent_kpis.cc.o"
  "CMakeFiles/bivoc_core.dir/agent_kpis.cc.o.d"
  "CMakeFiles/bivoc_core.dir/bivoc.cc.o"
  "CMakeFiles/bivoc_core.dir/bivoc.cc.o.d"
  "CMakeFiles/bivoc_core.dir/call_type.cc.o"
  "CMakeFiles/bivoc_core.dir/call_type.cc.o.d"
  "CMakeFiles/bivoc_core.dir/car_rental_insights.cc.o"
  "CMakeFiles/bivoc_core.dir/car_rental_insights.cc.o.d"
  "CMakeFiles/bivoc_core.dir/churn.cc.o"
  "CMakeFiles/bivoc_core.dir/churn.cc.o.d"
  "CMakeFiles/bivoc_core.dir/intervention.cc.o"
  "CMakeFiles/bivoc_core.dir/intervention.cc.o.d"
  "CMakeFiles/bivoc_core.dir/pipeline.cc.o"
  "CMakeFiles/bivoc_core.dir/pipeline.cc.o.d"
  "libbivoc_core.a"
  "libbivoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
