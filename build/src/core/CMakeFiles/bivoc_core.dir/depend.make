# Empty dependencies file for bivoc_core.
# This may be replaced when dependencies are built.
