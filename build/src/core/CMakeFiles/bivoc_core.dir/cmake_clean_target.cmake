file(REMOVE_RECURSE
  "libbivoc_core.a"
)
