file(REMOVE_RECURSE
  "libbivoc_mining.a"
)
