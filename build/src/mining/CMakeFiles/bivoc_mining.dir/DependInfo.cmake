
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/association.cc" "src/mining/CMakeFiles/bivoc_mining.dir/association.cc.o" "gcc" "src/mining/CMakeFiles/bivoc_mining.dir/association.cc.o.d"
  "/root/repo/src/mining/concept_index.cc" "src/mining/CMakeFiles/bivoc_mining.dir/concept_index.cc.o" "gcc" "src/mining/CMakeFiles/bivoc_mining.dir/concept_index.cc.o.d"
  "/root/repo/src/mining/relative_frequency.cc" "src/mining/CMakeFiles/bivoc_mining.dir/relative_frequency.cc.o" "gcc" "src/mining/CMakeFiles/bivoc_mining.dir/relative_frequency.cc.o.d"
  "/root/repo/src/mining/report.cc" "src/mining/CMakeFiles/bivoc_mining.dir/report.cc.o" "gcc" "src/mining/CMakeFiles/bivoc_mining.dir/report.cc.o.d"
  "/root/repo/src/mining/stats.cc" "src/mining/CMakeFiles/bivoc_mining.dir/stats.cc.o" "gcc" "src/mining/CMakeFiles/bivoc_mining.dir/stats.cc.o.d"
  "/root/repo/src/mining/trend.cc" "src/mining/CMakeFiles/bivoc_mining.dir/trend.cc.o" "gcc" "src/mining/CMakeFiles/bivoc_mining.dir/trend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bivoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
