# Empty dependencies file for bivoc_mining.
# This may be replaced when dependencies are built.
