file(REMOVE_RECURSE
  "CMakeFiles/bivoc_mining.dir/association.cc.o"
  "CMakeFiles/bivoc_mining.dir/association.cc.o.d"
  "CMakeFiles/bivoc_mining.dir/concept_index.cc.o"
  "CMakeFiles/bivoc_mining.dir/concept_index.cc.o.d"
  "CMakeFiles/bivoc_mining.dir/relative_frequency.cc.o"
  "CMakeFiles/bivoc_mining.dir/relative_frequency.cc.o.d"
  "CMakeFiles/bivoc_mining.dir/report.cc.o"
  "CMakeFiles/bivoc_mining.dir/report.cc.o.d"
  "CMakeFiles/bivoc_mining.dir/stats.cc.o"
  "CMakeFiles/bivoc_mining.dir/stats.cc.o.d"
  "CMakeFiles/bivoc_mining.dir/trend.cc.o"
  "CMakeFiles/bivoc_mining.dir/trend.cc.o.d"
  "libbivoc_mining.a"
  "libbivoc_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivoc_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
