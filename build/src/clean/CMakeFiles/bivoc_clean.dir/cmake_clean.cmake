file(REMOVE_RECURSE
  "CMakeFiles/bivoc_clean.dir/email_cleaner.cc.o"
  "CMakeFiles/bivoc_clean.dir/email_cleaner.cc.o.d"
  "CMakeFiles/bivoc_clean.dir/language_filter.cc.o"
  "CMakeFiles/bivoc_clean.dir/language_filter.cc.o.d"
  "CMakeFiles/bivoc_clean.dir/segmenter.cc.o"
  "CMakeFiles/bivoc_clean.dir/segmenter.cc.o.d"
  "CMakeFiles/bivoc_clean.dir/sms_normalizer.cc.o"
  "CMakeFiles/bivoc_clean.dir/sms_normalizer.cc.o.d"
  "CMakeFiles/bivoc_clean.dir/spam_filter.cc.o"
  "CMakeFiles/bivoc_clean.dir/spam_filter.cc.o.d"
  "libbivoc_clean.a"
  "libbivoc_clean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivoc_clean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
