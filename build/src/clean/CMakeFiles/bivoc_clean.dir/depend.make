# Empty dependencies file for bivoc_clean.
# This may be replaced when dependencies are built.
