
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clean/email_cleaner.cc" "src/clean/CMakeFiles/bivoc_clean.dir/email_cleaner.cc.o" "gcc" "src/clean/CMakeFiles/bivoc_clean.dir/email_cleaner.cc.o.d"
  "/root/repo/src/clean/language_filter.cc" "src/clean/CMakeFiles/bivoc_clean.dir/language_filter.cc.o" "gcc" "src/clean/CMakeFiles/bivoc_clean.dir/language_filter.cc.o.d"
  "/root/repo/src/clean/segmenter.cc" "src/clean/CMakeFiles/bivoc_clean.dir/segmenter.cc.o" "gcc" "src/clean/CMakeFiles/bivoc_clean.dir/segmenter.cc.o.d"
  "/root/repo/src/clean/sms_normalizer.cc" "src/clean/CMakeFiles/bivoc_clean.dir/sms_normalizer.cc.o" "gcc" "src/clean/CMakeFiles/bivoc_clean.dir/sms_normalizer.cc.o.d"
  "/root/repo/src/clean/spam_filter.cc" "src/clean/CMakeFiles/bivoc_clean.dir/spam_filter.cc.o" "gcc" "src/clean/CMakeFiles/bivoc_clean.dir/spam_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bivoc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bivoc_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
