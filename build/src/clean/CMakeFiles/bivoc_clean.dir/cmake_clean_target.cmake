file(REMOVE_RECURSE
  "libbivoc_clean.a"
)
