file(REMOVE_RECURSE
  "CMakeFiles/bivoc_db.dir/database.cc.o"
  "CMakeFiles/bivoc_db.dir/database.cc.o.d"
  "CMakeFiles/bivoc_db.dir/index.cc.o"
  "CMakeFiles/bivoc_db.dir/index.cc.o.d"
  "CMakeFiles/bivoc_db.dir/query.cc.o"
  "CMakeFiles/bivoc_db.dir/query.cc.o.d"
  "CMakeFiles/bivoc_db.dir/schema.cc.o"
  "CMakeFiles/bivoc_db.dir/schema.cc.o.d"
  "CMakeFiles/bivoc_db.dir/table.cc.o"
  "CMakeFiles/bivoc_db.dir/table.cc.o.d"
  "CMakeFiles/bivoc_db.dir/value.cc.o"
  "CMakeFiles/bivoc_db.dir/value.cc.o.d"
  "libbivoc_db.a"
  "libbivoc_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivoc_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
