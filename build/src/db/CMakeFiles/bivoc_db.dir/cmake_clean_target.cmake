file(REMOVE_RECURSE
  "libbivoc_db.a"
)
