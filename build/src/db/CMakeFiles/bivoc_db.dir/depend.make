# Empty dependencies file for bivoc_db.
# This may be replaced when dependencies are built.
