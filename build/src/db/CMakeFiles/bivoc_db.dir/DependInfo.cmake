
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/bivoc_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/bivoc_db.dir/database.cc.o.d"
  "/root/repo/src/db/index.cc" "src/db/CMakeFiles/bivoc_db.dir/index.cc.o" "gcc" "src/db/CMakeFiles/bivoc_db.dir/index.cc.o.d"
  "/root/repo/src/db/query.cc" "src/db/CMakeFiles/bivoc_db.dir/query.cc.o" "gcc" "src/db/CMakeFiles/bivoc_db.dir/query.cc.o.d"
  "/root/repo/src/db/schema.cc" "src/db/CMakeFiles/bivoc_db.dir/schema.cc.o" "gcc" "src/db/CMakeFiles/bivoc_db.dir/schema.cc.o.d"
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/bivoc_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/bivoc_db.dir/table.cc.o.d"
  "/root/repo/src/db/value.cc" "src/db/CMakeFiles/bivoc_db.dir/value.cc.o" "gcc" "src/db/CMakeFiles/bivoc_db.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bivoc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bivoc_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
