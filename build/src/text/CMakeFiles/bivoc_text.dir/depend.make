# Empty dependencies file for bivoc_text.
# This may be replaced when dependencies are built.
