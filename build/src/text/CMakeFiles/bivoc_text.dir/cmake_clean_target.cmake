file(REMOVE_RECURSE
  "libbivoc_text.a"
)
