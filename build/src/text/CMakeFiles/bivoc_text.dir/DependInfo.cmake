
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/edit_distance.cc" "src/text/CMakeFiles/bivoc_text.dir/edit_distance.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/edit_distance.cc.o.d"
  "/root/repo/src/text/jaro_winkler.cc" "src/text/CMakeFiles/bivoc_text.dir/jaro_winkler.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/jaro_winkler.cc.o.d"
  "/root/repo/src/text/logistic.cc" "src/text/CMakeFiles/bivoc_text.dir/logistic.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/logistic.cc.o.d"
  "/root/repo/src/text/naive_bayes.cc" "src/text/CMakeFiles/bivoc_text.dir/naive_bayes.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/naive_bayes.cc.o.d"
  "/root/repo/src/text/ngram_model.cc" "src/text/CMakeFiles/bivoc_text.dir/ngram_model.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/ngram_model.cc.o.d"
  "/root/repo/src/text/phonetic.cc" "src/text/CMakeFiles/bivoc_text.dir/phonetic.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/phonetic.cc.o.d"
  "/root/repo/src/text/pos_tagger.cc" "src/text/CMakeFiles/bivoc_text.dir/pos_tagger.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/pos_tagger.cc.o.d"
  "/root/repo/src/text/spell.cc" "src/text/CMakeFiles/bivoc_text.dir/spell.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/spell.cc.o.d"
  "/root/repo/src/text/stemmer.cc" "src/text/CMakeFiles/bivoc_text.dir/stemmer.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/stemmer.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/bivoc_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/text/CMakeFiles/bivoc_text.dir/vocabulary.cc.o" "gcc" "src/text/CMakeFiles/bivoc_text.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bivoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
