file(REMOVE_RECURSE
  "CMakeFiles/bivoc_text.dir/edit_distance.cc.o"
  "CMakeFiles/bivoc_text.dir/edit_distance.cc.o.d"
  "CMakeFiles/bivoc_text.dir/jaro_winkler.cc.o"
  "CMakeFiles/bivoc_text.dir/jaro_winkler.cc.o.d"
  "CMakeFiles/bivoc_text.dir/logistic.cc.o"
  "CMakeFiles/bivoc_text.dir/logistic.cc.o.d"
  "CMakeFiles/bivoc_text.dir/naive_bayes.cc.o"
  "CMakeFiles/bivoc_text.dir/naive_bayes.cc.o.d"
  "CMakeFiles/bivoc_text.dir/ngram_model.cc.o"
  "CMakeFiles/bivoc_text.dir/ngram_model.cc.o.d"
  "CMakeFiles/bivoc_text.dir/phonetic.cc.o"
  "CMakeFiles/bivoc_text.dir/phonetic.cc.o.d"
  "CMakeFiles/bivoc_text.dir/pos_tagger.cc.o"
  "CMakeFiles/bivoc_text.dir/pos_tagger.cc.o.d"
  "CMakeFiles/bivoc_text.dir/spell.cc.o"
  "CMakeFiles/bivoc_text.dir/spell.cc.o.d"
  "CMakeFiles/bivoc_text.dir/stemmer.cc.o"
  "CMakeFiles/bivoc_text.dir/stemmer.cc.o.d"
  "CMakeFiles/bivoc_text.dir/tokenizer.cc.o"
  "CMakeFiles/bivoc_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/bivoc_text.dir/vocabulary.cc.o"
  "CMakeFiles/bivoc_text.dir/vocabulary.cc.o.d"
  "libbivoc_text.a"
  "libbivoc_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivoc_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
