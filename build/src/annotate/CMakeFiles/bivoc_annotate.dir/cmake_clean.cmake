file(REMOVE_RECURSE
  "CMakeFiles/bivoc_annotate.dir/concept_extractor.cc.o"
  "CMakeFiles/bivoc_annotate.dir/concept_extractor.cc.o.d"
  "CMakeFiles/bivoc_annotate.dir/dictionary.cc.o"
  "CMakeFiles/bivoc_annotate.dir/dictionary.cc.o.d"
  "CMakeFiles/bivoc_annotate.dir/pattern.cc.o"
  "CMakeFiles/bivoc_annotate.dir/pattern.cc.o.d"
  "libbivoc_annotate.a"
  "libbivoc_annotate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivoc_annotate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
