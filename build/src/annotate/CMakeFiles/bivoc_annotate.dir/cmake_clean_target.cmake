file(REMOVE_RECURSE
  "libbivoc_annotate.a"
)
