# Empty compiler generated dependencies file for bivoc_annotate.
# This may be replaced when dependencies are built.
