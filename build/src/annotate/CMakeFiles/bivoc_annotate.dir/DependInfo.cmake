
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/annotate/concept_extractor.cc" "src/annotate/CMakeFiles/bivoc_annotate.dir/concept_extractor.cc.o" "gcc" "src/annotate/CMakeFiles/bivoc_annotate.dir/concept_extractor.cc.o.d"
  "/root/repo/src/annotate/dictionary.cc" "src/annotate/CMakeFiles/bivoc_annotate.dir/dictionary.cc.o" "gcc" "src/annotate/CMakeFiles/bivoc_annotate.dir/dictionary.cc.o.d"
  "/root/repo/src/annotate/pattern.cc" "src/annotate/CMakeFiles/bivoc_annotate.dir/pattern.cc.o" "gcc" "src/annotate/CMakeFiles/bivoc_annotate.dir/pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bivoc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bivoc_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
