file(REMOVE_RECURSE
  "libbivoc_linking.a"
)
