
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linking/annotator.cc" "src/linking/CMakeFiles/bivoc_linking.dir/annotator.cc.o" "gcc" "src/linking/CMakeFiles/bivoc_linking.dir/annotator.cc.o.d"
  "/root/repo/src/linking/fagin.cc" "src/linking/CMakeFiles/bivoc_linking.dir/fagin.cc.o" "gcc" "src/linking/CMakeFiles/bivoc_linking.dir/fagin.cc.o.d"
  "/root/repo/src/linking/linker.cc" "src/linking/CMakeFiles/bivoc_linking.dir/linker.cc.o" "gcc" "src/linking/CMakeFiles/bivoc_linking.dir/linker.cc.o.d"
  "/root/repo/src/linking/multitype.cc" "src/linking/CMakeFiles/bivoc_linking.dir/multitype.cc.o" "gcc" "src/linking/CMakeFiles/bivoc_linking.dir/multitype.cc.o.d"
  "/root/repo/src/linking/similarity.cc" "src/linking/CMakeFiles/bivoc_linking.dir/similarity.cc.o" "gcc" "src/linking/CMakeFiles/bivoc_linking.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bivoc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bivoc_text.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/bivoc_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
