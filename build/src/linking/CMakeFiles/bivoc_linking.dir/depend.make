# Empty dependencies file for bivoc_linking.
# This may be replaced when dependencies are built.
