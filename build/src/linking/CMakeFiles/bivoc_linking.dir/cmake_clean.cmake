file(REMOVE_RECURSE
  "CMakeFiles/bivoc_linking.dir/annotator.cc.o"
  "CMakeFiles/bivoc_linking.dir/annotator.cc.o.d"
  "CMakeFiles/bivoc_linking.dir/fagin.cc.o"
  "CMakeFiles/bivoc_linking.dir/fagin.cc.o.d"
  "CMakeFiles/bivoc_linking.dir/linker.cc.o"
  "CMakeFiles/bivoc_linking.dir/linker.cc.o.d"
  "CMakeFiles/bivoc_linking.dir/multitype.cc.o"
  "CMakeFiles/bivoc_linking.dir/multitype.cc.o.d"
  "CMakeFiles/bivoc_linking.dir/similarity.cc.o"
  "CMakeFiles/bivoc_linking.dir/similarity.cc.o.d"
  "libbivoc_linking.a"
  "libbivoc_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivoc_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
