
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asr/acoustic_channel.cc" "src/asr/CMakeFiles/bivoc_asr.dir/acoustic_channel.cc.o" "gcc" "src/asr/CMakeFiles/bivoc_asr.dir/acoustic_channel.cc.o.d"
  "/root/repo/src/asr/decoder.cc" "src/asr/CMakeFiles/bivoc_asr.dir/decoder.cc.o" "gcc" "src/asr/CMakeFiles/bivoc_asr.dir/decoder.cc.o.d"
  "/root/repo/src/asr/keyword_spotter.cc" "src/asr/CMakeFiles/bivoc_asr.dir/keyword_spotter.cc.o" "gcc" "src/asr/CMakeFiles/bivoc_asr.dir/keyword_spotter.cc.o.d"
  "/root/repo/src/asr/lexicon.cc" "src/asr/CMakeFiles/bivoc_asr.dir/lexicon.cc.o" "gcc" "src/asr/CMakeFiles/bivoc_asr.dir/lexicon.cc.o.d"
  "/root/repo/src/asr/phoneme.cc" "src/asr/CMakeFiles/bivoc_asr.dir/phoneme.cc.o" "gcc" "src/asr/CMakeFiles/bivoc_asr.dir/phoneme.cc.o.d"
  "/root/repo/src/asr/transcriber.cc" "src/asr/CMakeFiles/bivoc_asr.dir/transcriber.cc.o" "gcc" "src/asr/CMakeFiles/bivoc_asr.dir/transcriber.cc.o.d"
  "/root/repo/src/asr/wer.cc" "src/asr/CMakeFiles/bivoc_asr.dir/wer.cc.o" "gcc" "src/asr/CMakeFiles/bivoc_asr.dir/wer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bivoc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bivoc_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
