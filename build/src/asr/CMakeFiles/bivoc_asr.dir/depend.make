# Empty dependencies file for bivoc_asr.
# This may be replaced when dependencies are built.
