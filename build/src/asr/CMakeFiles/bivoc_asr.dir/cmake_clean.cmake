file(REMOVE_RECURSE
  "CMakeFiles/bivoc_asr.dir/acoustic_channel.cc.o"
  "CMakeFiles/bivoc_asr.dir/acoustic_channel.cc.o.d"
  "CMakeFiles/bivoc_asr.dir/decoder.cc.o"
  "CMakeFiles/bivoc_asr.dir/decoder.cc.o.d"
  "CMakeFiles/bivoc_asr.dir/keyword_spotter.cc.o"
  "CMakeFiles/bivoc_asr.dir/keyword_spotter.cc.o.d"
  "CMakeFiles/bivoc_asr.dir/lexicon.cc.o"
  "CMakeFiles/bivoc_asr.dir/lexicon.cc.o.d"
  "CMakeFiles/bivoc_asr.dir/phoneme.cc.o"
  "CMakeFiles/bivoc_asr.dir/phoneme.cc.o.d"
  "CMakeFiles/bivoc_asr.dir/transcriber.cc.o"
  "CMakeFiles/bivoc_asr.dir/transcriber.cc.o.d"
  "CMakeFiles/bivoc_asr.dir/wer.cc.o"
  "CMakeFiles/bivoc_asr.dir/wer.cc.o.d"
  "libbivoc_asr.a"
  "libbivoc_asr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivoc_asr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
