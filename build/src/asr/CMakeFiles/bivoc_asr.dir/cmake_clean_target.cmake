file(REMOVE_RECURSE
  "libbivoc_asr.a"
)
