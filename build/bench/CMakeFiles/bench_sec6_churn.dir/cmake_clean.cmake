file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_churn.dir/bench_sec6_churn.cpp.o"
  "CMakeFiles/bench_sec6_churn.dir/bench_sec6_churn.cpp.o.d"
  "bench_sec6_churn"
  "bench_sec6_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
