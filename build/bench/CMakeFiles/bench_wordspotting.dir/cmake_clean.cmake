file(REMOVE_RECURSE
  "CMakeFiles/bench_wordspotting.dir/bench_wordspotting.cpp.o"
  "CMakeFiles/bench_wordspotting.dir/bench_wordspotting.cpp.o.d"
  "bench_wordspotting"
  "bench_wordspotting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wordspotting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
