# Empty dependencies file for bench_wordspotting.
# This may be replaced when dependencies are built.
