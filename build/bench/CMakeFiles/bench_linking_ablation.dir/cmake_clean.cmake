file(REMOVE_RECURSE
  "CMakeFiles/bench_linking_ablation.dir/bench_linking_ablation.cpp.o"
  "CMakeFiles/bench_linking_ablation.dir/bench_linking_ablation.cpp.o.d"
  "bench_linking_ablation"
  "bench_linking_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linking_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
