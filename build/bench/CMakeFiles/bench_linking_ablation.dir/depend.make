# Empty dependencies file for bench_linking_ablation.
# This may be replaced when dependencies are built.
