file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_intent_outcome.dir/bench_table3_intent_outcome.cpp.o"
  "CMakeFiles/bench_table3_intent_outcome.dir/bench_table3_intent_outcome.cpp.o.d"
  "bench_table3_intent_outcome"
  "bench_table3_intent_outcome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_intent_outcome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
