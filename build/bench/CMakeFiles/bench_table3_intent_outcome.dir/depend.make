# Empty dependencies file for bench_table3_intent_outcome.
# This may be replaced when dependencies are built.
