# Empty compiler generated dependencies file for bench_sec5c_intervention.
# This may be replaced when dependencies are built.
