file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5c_intervention.dir/bench_sec5c_intervention.cpp.o"
  "CMakeFiles/bench_sec5c_intervention.dir/bench_sec5c_intervention.cpp.o.d"
  "bench_sec5c_intervention"
  "bench_sec5c_intervention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5c_intervention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
