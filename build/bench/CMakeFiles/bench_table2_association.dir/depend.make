# Empty dependencies file for bench_table2_association.
# This may be replaced when dependencies are built.
