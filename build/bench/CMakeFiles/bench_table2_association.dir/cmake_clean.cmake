file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_association.dir/bench_table2_association.cpp.o"
  "CMakeFiles/bench_table2_association.dir/bench_table2_association.cpp.o.d"
  "bench_table2_association"
  "bench_table2_association.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_association.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
