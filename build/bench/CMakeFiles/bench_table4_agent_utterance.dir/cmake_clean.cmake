file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_agent_utterance.dir/bench_table4_agent_utterance.cpp.o"
  "CMakeFiles/bench_table4_agent_utterance.dir/bench_table4_agent_utterance.cpp.o.d"
  "bench_table4_agent_utterance"
  "bench_table4_agent_utterance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_agent_utterance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
