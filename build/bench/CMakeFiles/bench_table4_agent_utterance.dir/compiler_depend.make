# Empty compiler generated dependencies file for bench_table4_agent_utterance.
# This may be replaced when dependencies are built.
