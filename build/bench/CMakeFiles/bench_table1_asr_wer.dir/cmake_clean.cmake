file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_asr_wer.dir/bench_table1_asr_wer.cpp.o"
  "CMakeFiles/bench_table1_asr_wer.dir/bench_table1_asr_wer.cpp.o.d"
  "bench_table1_asr_wer"
  "bench_table1_asr_wer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_asr_wer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
