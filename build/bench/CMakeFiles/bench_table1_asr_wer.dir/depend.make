# Empty dependencies file for bench_table1_asr_wer.
# This may be replaced when dependencies are built.
