# Empty dependencies file for voc_gallery.
# This may be replaced when dependencies are built.
