file(REMOVE_RECURSE
  "CMakeFiles/voc_gallery.dir/voc_gallery.cpp.o"
  "CMakeFiles/voc_gallery.dir/voc_gallery.cpp.o.d"
  "voc_gallery"
  "voc_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voc_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
