file(REMOVE_RECURSE
  "CMakeFiles/agent_productivity.dir/agent_productivity.cpp.o"
  "CMakeFiles/agent_productivity.dir/agent_productivity.cpp.o.d"
  "agent_productivity"
  "agent_productivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_productivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
