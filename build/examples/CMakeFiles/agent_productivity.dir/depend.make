# Empty dependencies file for agent_productivity.
# This may be replaced when dependencies are built.
