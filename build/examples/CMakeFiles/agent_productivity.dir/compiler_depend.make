# Empty compiler generated dependencies file for agent_productivity.
# This may be replaced when dependencies are built.
