file(REMOVE_RECURSE
  "CMakeFiles/churn_prediction.dir/churn_prediction.cpp.o"
  "CMakeFiles/churn_prediction.dir/churn_prediction.cpp.o.d"
  "churn_prediction"
  "churn_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
