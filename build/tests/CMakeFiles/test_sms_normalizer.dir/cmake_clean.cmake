file(REMOVE_RECURSE
  "CMakeFiles/test_sms_normalizer.dir/test_sms_normalizer.cpp.o"
  "CMakeFiles/test_sms_normalizer.dir/test_sms_normalizer.cpp.o.d"
  "test_sms_normalizer"
  "test_sms_normalizer.pdb"
  "test_sms_normalizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sms_normalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
