# Empty dependencies file for test_sms_normalizer.
# This may be replaced when dependencies are built.
