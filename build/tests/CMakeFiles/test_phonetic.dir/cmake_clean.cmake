file(REMOVE_RECURSE
  "CMakeFiles/test_phonetic.dir/test_phonetic.cpp.o"
  "CMakeFiles/test_phonetic.dir/test_phonetic.cpp.o.d"
  "test_phonetic"
  "test_phonetic.pdb"
  "test_phonetic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phonetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
