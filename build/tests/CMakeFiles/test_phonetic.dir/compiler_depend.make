# Empty compiler generated dependencies file for test_phonetic.
# This may be replaced when dependencies are built.
