
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fagin.cpp" "tests/CMakeFiles/test_fagin.dir/test_fagin.cpp.o" "gcc" "tests/CMakeFiles/test_fagin.dir/test_fagin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bivoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linking/CMakeFiles/bivoc_linking.dir/DependInfo.cmake"
  "/root/repo/build/src/annotate/CMakeFiles/bivoc_annotate.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/bivoc_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/bivoc_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/bivoc_db.dir/DependInfo.cmake"
  "/root/repo/build/src/asr/CMakeFiles/bivoc_asr.dir/DependInfo.cmake"
  "/root/repo/build/src/clean/CMakeFiles/bivoc_clean.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/bivoc_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bivoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
