# Empty compiler generated dependencies file for test_stemmer.
# This may be replaced when dependencies are built.
