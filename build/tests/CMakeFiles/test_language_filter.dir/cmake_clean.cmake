file(REMOVE_RECURSE
  "CMakeFiles/test_language_filter.dir/test_language_filter.cpp.o"
  "CMakeFiles/test_language_filter.dir/test_language_filter.cpp.o.d"
  "test_language_filter"
  "test_language_filter.pdb"
  "test_language_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_language_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
