# Empty compiler generated dependencies file for test_language_filter.
# This may be replaced when dependencies are built.
