file(REMOVE_RECURSE
  "CMakeFiles/test_transcriber.dir/test_transcriber.cpp.o"
  "CMakeFiles/test_transcriber.dir/test_transcriber.cpp.o.d"
  "test_transcriber"
  "test_transcriber.pdb"
  "test_transcriber[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transcriber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
