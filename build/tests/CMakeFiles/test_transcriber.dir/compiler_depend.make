# Empty compiler generated dependencies file for test_transcriber.
# This may be replaced when dependencies are built.
