# Empty compiler generated dependencies file for test_car_rental_world.
# This may be replaced when dependencies are built.
