file(REMOVE_RECURSE
  "CMakeFiles/test_car_rental_world.dir/test_car_rental_world.cpp.o"
  "CMakeFiles/test_car_rental_world.dir/test_car_rental_world.cpp.o.d"
  "test_car_rental_world"
  "test_car_rental_world.pdb"
  "test_car_rental_world[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_car_rental_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
