file(REMOVE_RECURSE
  "CMakeFiles/test_integration_car_rental.dir/test_integration_car_rental.cpp.o"
  "CMakeFiles/test_integration_car_rental.dir/test_integration_car_rental.cpp.o.d"
  "test_integration_car_rental"
  "test_integration_car_rental.pdb"
  "test_integration_car_rental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_car_rental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
