# Empty dependencies file for test_integration_car_rental.
# This may be replaced when dependencies are built.
