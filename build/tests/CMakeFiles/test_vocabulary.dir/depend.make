# Empty dependencies file for test_vocabulary.
# This may be replaced when dependencies are built.
