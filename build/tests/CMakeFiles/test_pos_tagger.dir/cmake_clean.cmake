file(REMOVE_RECURSE
  "CMakeFiles/test_pos_tagger.dir/test_pos_tagger.cpp.o"
  "CMakeFiles/test_pos_tagger.dir/test_pos_tagger.cpp.o.d"
  "test_pos_tagger"
  "test_pos_tagger.pdb"
  "test_pos_tagger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pos_tagger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
