file(REMOVE_RECURSE
  "CMakeFiles/test_concept_index.dir/test_concept_index.cpp.o"
  "CMakeFiles/test_concept_index.dir/test_concept_index.cpp.o.d"
  "test_concept_index"
  "test_concept_index.pdb"
  "test_concept_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concept_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
