# Empty dependencies file for test_logistic.
# This may be replaced when dependencies are built.
