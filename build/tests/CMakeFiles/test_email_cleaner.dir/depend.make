# Empty dependencies file for test_email_cleaner.
# This may be replaced when dependencies are built.
