file(REMOVE_RECURSE
  "CMakeFiles/test_email_cleaner.dir/test_email_cleaner.cpp.o"
  "CMakeFiles/test_email_cleaner.dir/test_email_cleaner.cpp.o.d"
  "test_email_cleaner"
  "test_email_cleaner.pdb"
  "test_email_cleaner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_email_cleaner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
