# Empty compiler generated dependencies file for test_wer.
# This may be replaced when dependencies are built.
