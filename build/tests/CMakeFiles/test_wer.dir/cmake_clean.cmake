file(REMOVE_RECURSE
  "CMakeFiles/test_wer.dir/test_wer.cpp.o"
  "CMakeFiles/test_wer.dir/test_wer.cpp.o.d"
  "test_wer"
  "test_wer.pdb"
  "test_wer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
