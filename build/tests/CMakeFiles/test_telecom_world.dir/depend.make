# Empty dependencies file for test_telecom_world.
# This may be replaced when dependencies are built.
