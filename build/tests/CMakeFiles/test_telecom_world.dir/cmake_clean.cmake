file(REMOVE_RECURSE
  "CMakeFiles/test_telecom_world.dir/test_telecom_world.cpp.o"
  "CMakeFiles/test_telecom_world.dir/test_telecom_world.cpp.o.d"
  "test_telecom_world"
  "test_telecom_world.pdb"
  "test_telecom_world[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telecom_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
