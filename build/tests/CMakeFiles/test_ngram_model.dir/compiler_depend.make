# Empty compiler generated dependencies file for test_ngram_model.
# This may be replaced when dependencies are built.
