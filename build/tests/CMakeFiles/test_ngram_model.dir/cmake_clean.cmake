file(REMOVE_RECURSE
  "CMakeFiles/test_ngram_model.dir/test_ngram_model.cpp.o"
  "CMakeFiles/test_ngram_model.dir/test_ngram_model.cpp.o.d"
  "test_ngram_model"
  "test_ngram_model.pdb"
  "test_ngram_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ngram_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
