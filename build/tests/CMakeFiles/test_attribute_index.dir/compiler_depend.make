# Empty compiler generated dependencies file for test_attribute_index.
# This may be replaced when dependencies are built.
