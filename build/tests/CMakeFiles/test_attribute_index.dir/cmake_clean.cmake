file(REMOVE_RECURSE
  "CMakeFiles/test_attribute_index.dir/test_attribute_index.cpp.o"
  "CMakeFiles/test_attribute_index.dir/test_attribute_index.cpp.o.d"
  "test_attribute_index"
  "test_attribute_index.pdb"
  "test_attribute_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attribute_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
