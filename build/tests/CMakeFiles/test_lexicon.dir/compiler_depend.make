# Empty compiler generated dependencies file for test_lexicon.
# This may be replaced when dependencies are built.
