file(REMOVE_RECURSE
  "CMakeFiles/test_lexicon.dir/test_lexicon.cpp.o"
  "CMakeFiles/test_lexicon.dir/test_lexicon.cpp.o.d"
  "test_lexicon"
  "test_lexicon.pdb"
  "test_lexicon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lexicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
