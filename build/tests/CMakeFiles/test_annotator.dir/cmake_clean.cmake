file(REMOVE_RECURSE
  "CMakeFiles/test_annotator.dir/test_annotator.cpp.o"
  "CMakeFiles/test_annotator.dir/test_annotator.cpp.o.d"
  "test_annotator"
  "test_annotator.pdb"
  "test_annotator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_annotator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
