# Empty compiler generated dependencies file for test_annotator.
# This may be replaced when dependencies are built.
