file(REMOVE_RECURSE
  "CMakeFiles/test_call_type.dir/test_call_type.cpp.o"
  "CMakeFiles/test_call_type.dir/test_call_type.cpp.o.d"
  "test_call_type"
  "test_call_type.pdb"
  "test_call_type[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_call_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
