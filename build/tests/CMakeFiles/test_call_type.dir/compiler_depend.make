# Empty compiler generated dependencies file for test_call_type.
# This may be replaced when dependencies are built.
