# Empty compiler generated dependencies file for test_agent_kpis.
# This may be replaced when dependencies are built.
