file(REMOVE_RECURSE
  "CMakeFiles/test_agent_kpis.dir/test_agent_kpis.cpp.o"
  "CMakeFiles/test_agent_kpis.dir/test_agent_kpis.cpp.o.d"
  "test_agent_kpis"
  "test_agent_kpis.pdb"
  "test_agent_kpis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agent_kpis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
