# Empty dependencies file for test_association.
# This may be replaced when dependencies are built.
