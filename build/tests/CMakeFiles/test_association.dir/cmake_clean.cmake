file(REMOVE_RECURSE
  "CMakeFiles/test_association.dir/test_association.cpp.o"
  "CMakeFiles/test_association.dir/test_association.cpp.o.d"
  "test_association"
  "test_association.pdb"
  "test_association[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_association.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
