file(REMOVE_RECURSE
  "CMakeFiles/test_spell.dir/test_spell.cpp.o"
  "CMakeFiles/test_spell.dir/test_spell.cpp.o.d"
  "test_spell"
  "test_spell.pdb"
  "test_spell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
