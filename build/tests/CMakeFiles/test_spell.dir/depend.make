# Empty dependencies file for test_spell.
# This may be replaced when dependencies are built.
