# Empty dependencies file for test_linker.
# This may be replaced when dependencies are built.
