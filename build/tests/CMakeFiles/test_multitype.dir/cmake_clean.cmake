file(REMOVE_RECURSE
  "CMakeFiles/test_multitype.dir/test_multitype.cpp.o"
  "CMakeFiles/test_multitype.dir/test_multitype.cpp.o.d"
  "test_multitype"
  "test_multitype.pdb"
  "test_multitype[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multitype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
