file(REMOVE_RECURSE
  "CMakeFiles/test_concept_extractor.dir/test_concept_extractor.cpp.o"
  "CMakeFiles/test_concept_extractor.dir/test_concept_extractor.cpp.o.d"
  "test_concept_extractor"
  "test_concept_extractor.pdb"
  "test_concept_extractor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concept_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
