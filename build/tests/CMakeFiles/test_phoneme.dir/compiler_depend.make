# Empty compiler generated dependencies file for test_phoneme.
# This may be replaced when dependencies are built.
