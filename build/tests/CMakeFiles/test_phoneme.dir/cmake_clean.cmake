file(REMOVE_RECURSE
  "CMakeFiles/test_phoneme.dir/test_phoneme.cpp.o"
  "CMakeFiles/test_phoneme.dir/test_phoneme.cpp.o.d"
  "test_phoneme"
  "test_phoneme.pdb"
  "test_phoneme[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phoneme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
