file(REMOVE_RECURSE
  "CMakeFiles/test_acoustic_channel.dir/test_acoustic_channel.cpp.o"
  "CMakeFiles/test_acoustic_channel.dir/test_acoustic_channel.cpp.o.d"
  "test_acoustic_channel"
  "test_acoustic_channel.pdb"
  "test_acoustic_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acoustic_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
