# Empty dependencies file for test_acoustic_channel.
# This may be replaced when dependencies are built.
