file(REMOVE_RECURSE
  "CMakeFiles/test_spam_filter.dir/test_spam_filter.cpp.o"
  "CMakeFiles/test_spam_filter.dir/test_spam_filter.cpp.o.d"
  "test_spam_filter"
  "test_spam_filter.pdb"
  "test_spam_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spam_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
