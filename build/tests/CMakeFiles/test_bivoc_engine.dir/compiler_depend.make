# Empty compiler generated dependencies file for test_bivoc_engine.
# This may be replaced when dependencies are built.
