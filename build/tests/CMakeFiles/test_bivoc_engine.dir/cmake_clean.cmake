file(REMOVE_RECURSE
  "CMakeFiles/test_bivoc_engine.dir/test_bivoc_engine.cpp.o"
  "CMakeFiles/test_bivoc_engine.dir/test_bivoc_engine.cpp.o.d"
  "test_bivoc_engine"
  "test_bivoc_engine.pdb"
  "test_bivoc_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bivoc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
