file(REMOVE_RECURSE
  "CMakeFiles/test_report_render.dir/test_report_render.cpp.o"
  "CMakeFiles/test_report_render.dir/test_report_render.cpp.o.d"
  "test_report_render"
  "test_report_render.pdb"
  "test_report_render[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
