file(REMOVE_RECURSE
  "CMakeFiles/test_keyword_spotter.dir/test_keyword_spotter.cpp.o"
  "CMakeFiles/test_keyword_spotter.dir/test_keyword_spotter.cpp.o.d"
  "test_keyword_spotter"
  "test_keyword_spotter.pdb"
  "test_keyword_spotter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keyword_spotter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
