# Empty compiler generated dependencies file for test_keyword_spotter.
# This may be replaced when dependencies are built.
